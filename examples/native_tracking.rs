//! The real mechanism: dirty-page tracking on *this* machine via
//! `mmap` + `mprotect` + a `SIGSEGV` handler — the paper's
//! instrumentation library (§4.2) in miniature.
//!
//! ```text
//! cargo run --release --example native_tracking
//! ```

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use std::sync::Arc;
use std::time::Duration;

use ickpt::native::maps::{self, trackable_data_bytes};
use ickpt::native::{page_size, TimesliceSampler, TrackedRegion};

fn main() {
    println!("page size: {} bytes", page_size());

    // 1. What would a preload library see? Parse /proc/self/maps the
    //    way it discovers the data segments to protect (§4.1).
    let entries = maps::self_maps().expect("reading /proc/self/maps");
    let trackable = trackable_data_bytes(&entries);
    println!(
        "/proc/self/maps: {} mappings, {:.1} MB of trackable data segments",
        entries.len(),
        trackable as f64 / 1e6
    );

    // 2. Protect a 4 MB arena and write into it: the first write to
    //    each page takes a SIGSEGV, the handler records it and
    //    unprotects the page.
    let region = Arc::new(TrackedRegion::new(1024));
    println!("\nprotected a {} page arena; writing to 10 pages...", region.pages());
    for p in 0..10 {
        region.write_byte(p * 100, 0, 42);
    }
    println!("dirty pages now: {:?}", region.peek_dirty());

    // 3. The alarm: sample the IWS and re-protect everything.
    let s = region.sample();
    println!("sample: IWS = {} pages; set cleared and re-protected", s.iws_pages());
    region.write_byte(0, 0, 43);
    println!("after one more write, dirty = {:?} (re-faulted)", region.peek_dirty());
    region.sample();

    // 4. A background timeslice sampler watching a writer, the full
    //    §4.2 loop in real time.
    println!("\nrunning a writer under a 50 ms timeslice sampler for ~0.3 s...");
    let sampler = TimesliceSampler::start(region.clone(), Duration::from_millis(50));
    for step in 0..6 {
        for p in (step * 64)..(step * 64 + 64) {
            region.write_byte(p % region.pages(), 0, step as u8);
        }
        std::thread::sleep(Duration::from_millis(45));
    }
    let samples = sampler.stop();
    println!("timeslice | IWS (pages)");
    for s in &samples {
        println!("{:>8.0?} | {}", s.at, s.sample.iws_pages());
    }
    let total: usize = samples.iter().map(|s| s.sample.iws_pages()).sum();
    println!("total unique page-writes observed: {total}");
}
