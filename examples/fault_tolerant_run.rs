//! Fault tolerance end to end: run a small Sage on a simulated
//! cluster with coordinated incremental checkpoints, kill a rank
//! mid-run, roll everyone back, and verify the recovered execution is
//! byte-identical to a failure-free one.
//!
//! ```text
//! cargo run --release --example fault_tolerant_run
//! ```

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use std::sync::Arc;

use ickpt::apps::{AppModel, Workload};
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, RunOutcome, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime};
use ickpt::storage::MemStore;

const NRANKS: usize = 4;
const SCALE: f64 = 0.02; // ~1 MB Sage so page contents stay cheap

fn build(rank: usize) -> Box<dyn AppModel> {
    Box::new(Workload::Sage50.build(rank, NRANKS, SCALE, 7))
}

fn config(failures: Vec<FailureSpec>) -> FaultTolerantConfig {
    FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: 8, // Sage-50 iterations are 20 virtual seconds
        timeslice: SimDuration::from_secs(1),
        // Incremental checkpoints roughly every other iteration.
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(40), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures,
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
        max_attempts: 3,
    }
}

fn main() {
    let layout = Workload::Sage50.layout(SCALE);

    println!("reference run (no failures)...");
    let reference = run_fault_tolerant(&config(vec![]), layout, build).unwrap();
    assert_eq!(reference.outcome, RunOutcome::Completed);
    let r0 = &reference.ranks[0];
    println!(
        "  {} iterations, {} checkpoints, {} checkpoint bytes (rank 0), finished at {}",
        r0.iterations, r0.checkpoints, r0.checkpoint_bytes, r0.final_time
    );

    println!("failure run: rank 2 dies at t=100s...");
    let cfg = config(vec![FailureSpec::process(2, SimTime::from_secs(100))]);
    let recovered = run_fault_tolerant(&cfg, layout, build).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    println!("  survived with {} attempts (1 failure + rollback recovery)", recovered.attempts);

    // The proof: final memory images match the failure-free run
    // byte for byte, on every rank.
    for (a, b) in reference.ranks.iter().zip(&recovered.ranks) {
        assert_eq!(
            a.content_digest, b.content_digest,
            "rank {} memory image diverged after recovery",
            a.rank
        );
    }
    println!("recovered memory images are byte-identical to the failure-free run.");

    // Peek at stable storage: every generation has a commit manifest.
    let gens = cfg.store.list_manifests().unwrap();
    println!("stable storage holds {} committed generations: {:?}", gens.len(), gens);
}
