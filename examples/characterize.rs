//! Application characterization, the paper's §6.2 walk-through:
//! run a workload, plot its IWS series, detect processing bursts and
//! the main-iteration period at run time, and suggest checkpoint
//! placements.
//!
//! ```text
//! cargo run --release --example characterize [workload]
//! ```
//!
//! where `workload` is one of: sage1000 sage500 sage100 sage50 sweep3d
//! sp lu bt ft (default sage100).

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use ickpt::analysis::ascii_plot;
use ickpt::apps::Workload;
use ickpt::cluster::{characterize, CharacterizationConfig};
use ickpt::core::metrics::iws_series;
use ickpt::core::policy::{detect_bursts, detect_period, suggest_checkpoint_windows};
use ickpt::sim::SimDuration;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "sage100".into());
    let workload = Workload::from_name(&arg).unwrap_or_else(|| {
        eprintln!("unknown workload '{arg}'");
        std::process::exit(2);
    });
    let calib = workload.calib();

    // Sample fine enough to resolve the iteration, long enough for
    // several periods.
    let ts = (calib.period_s / 10.0).clamp(0.02, 1.0);
    let cfg = CharacterizationConfig {
        nranks: 8,
        run_for: SimDuration::from_secs_f64((8.0 * calib.period_s).max(250.0 * ts)),
        timeslice: SimDuration::from_secs_f64(ts),
        ..Default::default()
    };
    println!(
        "characterizing {} on {} ranks, timeslice {:.2}s, {:.0} virtual seconds",
        workload.name(),
        cfg.nranks,
        ts,
        cfg.run_for.as_secs_f64()
    );
    let report = characterize(workload, &cfg);
    let r0 = &report.ranks[0];

    println!("{}", ascii_plot("IWS size per timeslice (MB)", &iws_series(&r0.samples), 100, 14));

    // What the paper's instrumentation would conclude at run time:
    let skip = (3.0 * calib.period_s / ts).min(r0.samples.len() as f64 / 3.0) as usize;
    let series: Vec<u64> = r0.samples.iter().map(|s| s.iws_pages).collect();
    match detect_period(&series, cfg.timeslice, skip) {
        Some(p) => println!(
            "main iteration period: {:.2} s detected ({} s in the paper's Table 3)",
            p.as_secs_f64(),
            calib.period_s
        ),
        None => {
            println!("no period detectable at this timeslice (iteration shorter than the window)")
        }
    }
    let bursts = detect_bursts(&r0.samples, 0.5, skip);
    println!("processing bursts detected: {}", bursts.bursts.len());
    let suggestions = suggest_checkpoint_windows(&bursts);
    let times: Vec<String> =
        suggestions.iter().take(5).map(|&w| format!("{:.1}s", (w as f64 + 1.0) * ts)).collect();
    println!(
        "coordinated-checkpoint placements (right after each burst): {} ...",
        times.join(", ")
    );
    println!(
        "footprint: {:.1} MB, faults: {}, received: {:.1} MB",
        r0.footprint_pages as f64 * 4096.0 / 1e6,
        r0.total_faults,
        r0.bytes_received as f64 / 1e6
    );
}
