//! Quickstart: measure the incremental-checkpointing bandwidth
//! requirement of a workload and check feasibility, in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use ickpt::apps::Workload;
use ickpt::cluster::{characterize, CharacterizationConfig};
use ickpt::core::feasibility::FeasibilityReport;
use ickpt::core::metrics::IbStats;
use ickpt::sim::{SimDuration, SimTime};

fn main() {
    // Sage with a 1000 MB per-process footprint on 16 simulated ranks,
    // sampled at the paper's 1 s checkpoint timeslice.
    let workload = Workload::Sage1000;
    let cfg = CharacterizationConfig {
        nranks: 16,
        run_for: SimDuration::from_secs(600),
        timeslice: SimDuration::from_secs(1),
        ..Default::default()
    };
    println!("running {} on {} simulated ranks...", workload.name(), cfg.nranks);
    let report = characterize(workload, &cfg);

    // IB statistics, excluding the data-initialization burst like §6.3.
    let stats =
        IbStats::from_samples(&report.ranks[0].samples, cfg.timeslice, SimTime::from_secs(150));
    println!(
        "incremental bandwidth: avg {:.1} MB/s, max {:.1} MB/s over {} windows",
        stats.avg_mbps, stats.max_mbps, stats.windows
    );

    // The paper's question: does it fit under commodity devices?
    let feas = FeasibilityReport::against_paper_devices(stats);
    for v in &feas.verdicts {
        println!(
            "  vs {} ({:.0} MB/s): avg uses {:.0}%, max uses {:.0}% -> {}",
            v.device,
            v.device_mbps,
            v.avg_fraction * 100.0,
            v.max_fraction * 100.0,
            if v.feasible { "feasible" } else { "NOT feasible" }
        );
    }
    assert!(feas.feasible_everywhere(), "the paper's conclusion should hold");
    println!("conclusion: frequent, user-transparent incremental checkpointing is feasible.");
}
