//! Durable checkpoints on a real filesystem: run a job writing
//! checkpoints to a directory, simulate a full stop (drop every
//! in-memory structure), then restart *from the files alone* and
//! finish the job — the operational workflow of a production
//! checkpointing deployment.
//!
//! ```text
//! cargo run --release --example durable_restart [dir]
//! ```

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::AppModel;
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, RunOutcome, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::core::restore::latest_committed_generation;
use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime};
use ickpt::storage::{Chunk, ChunkKey, FileStore, StableStorage};

const NRANKS: usize = 4;
const TOTAL_ITERATIONS: u64 = 20;

fn build(rank: usize) -> Box<dyn AppModel> {
    Box::new(SyntheticApp::new(SyntheticConfig {
        footprint_pages: 1024,
        writes_per_iter: 256,
        exchange_bytes: 8192,
        rank,
        nranks: NRANKS,
        ..Default::default()
    }))
}

fn config(store: Arc<dyn StableStorage>, failures: Vec<FailureSpec>) -> FaultTolerantConfig {
    FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: TOTAL_ITERATIONS,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(4), 3),
        store,
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures,
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        max_attempts: 3,
        dedup: None,
        write_profile: Default::default(),
    }
}

fn layout() -> ickpt::mem::DataLayout {
    LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build()
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| std::env::temp_dir().join("ickpt_durable_demo").display().to_string());
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase 1: the job runs and is killed mid-way. ----
    println!("phase 1: running with checkpoints into {dir} ...");
    {
        let store = Arc::new(FileStore::open(&dir).unwrap());
        // An unrecoverable-within-the-process event at t=11s: with
        // max_attempts=1-style behavior we emulate a whole-job kill by
        // inspecting the outcome of a single attempt.
        let mut cfg = config(store, vec![FailureSpec::process(0, SimTime::from_secs(11))]);
        cfg.max_attempts = 1; // the "machine room loses power" case
        let report = run_fault_tolerant(&cfg, layout(), build).unwrap();
        assert!(matches!(report.outcome, RunOutcome::Failed { .. }));
        println!(
            "  job killed at ~11 virtual seconds after {} iterations of {}",
            report.ranks[0].iterations, TOTAL_ITERATIONS
        );
    } // everything in memory is gone

    // ---- Phase 2: inspect what survived on disk. ----
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let gen = latest_committed_generation(store.as_ref(), NRANKS as u32)
        .unwrap()
        .expect("committed generations exist on disk");
    let chunk = Chunk::decode(&store.get_chunk(ChunkKey::new(0, gen)).unwrap()).unwrap();
    println!(
        "phase 2: found committed generation {gen} on disk (captured at t={:.0}s, {} files)",
        chunk.capture_time_ns as f64 / 1e9,
        std::fs::read_dir(&dir).unwrap().count(),
    );

    // ---- Phase 3: a fresh "process" restarts purely from the files. ----
    println!("phase 3: restarting from the files alone ...");
    let cfg = config(store, vec![]);
    // run_fault_tolerant notices there is no failure this time, but we
    // want it to *start* from disk: seed resume by reporting a failed
    // zero-length attempt is unnecessary — simply run with the same
    // store; the job restarts from scratch unless told otherwise, so
    // here we use the recovery path directly via a synthetic failure
    // at t=0 which forces an immediate rollback to generation `gen`.
    let cfg = FaultTolerantConfig {
        failures: vec![FailureSpec::process(0, SimTime::ZERO)],
        max_attempts: 2,
        ..cfg
    };
    let report = run_fault_tolerant(&cfg, layout(), build).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    println!(
        "  completed all {} iterations at t={} (attempt count {})",
        report.ranks[0].iterations, report.ranks[0].final_time, report.attempts
    );

    // Cross-check against an uninterrupted in-memory run.
    let clean = run_fault_tolerant(
        &config(Arc::new(ickpt::storage::MemStore::new()), vec![]),
        layout(),
        build,
    )
    .unwrap();
    for (a, b) in clean.ranks.iter().zip(&report.ranks) {
        assert_eq!(a.content_digest, b.content_digest, "rank {}", a.rank);
    }
    println!("final memory images match an uninterrupted run, byte for byte.");
    if std::env::var("ICKPT_KEEP").is_ok() {
        println!("keeping {dir} for inspection (ICKPT_KEEP set)");
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
