//! Offline shim for the subset of `libc` this workspace uses.
//!
//! `ickpt-native` needs exactly the Linux memory-protection and signal
//! surface of the paper's instrumentation library: `mmap`/`munmap`/
//! `mprotect`, `sigaction` for SIGSEGV/SIGBUS, and `sysconf` for the
//! page size. The declarations below match the x86_64/aarch64 Linux
//! glibc ABI (struct layouts and constants verified against the real
//! `libc` crate); anything else is intentionally absent.

#![allow(non_camel_case_types)]
#![cfg(target_os = "linux")]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type off_t = i64;
pub type pid_t = i32;
pub type uid_t = u32;
pub type sighandler_t = size_t;

// --- memory protection -------------------------------------------------

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const PROT_EXEC: c_int = 4;

pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_ANON: c_int = MAP_ANONYMOUS;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

// --- signals -----------------------------------------------------------

pub const SIGBUS: c_int = 7;
pub const SIGSEGV: c_int = 11;

pub const SA_SIGINFO: c_int = 0x0000_0004;
pub const SA_NODEFER: c_int = 0x4000_0000;
pub const SA_RESTART: c_int = 0x1000_0000;

pub const SIG_DFL: sighandler_t = 0;
pub const SIG_IGN: sighandler_t = 1;

pub const _SC_PAGESIZE: c_int = 30;
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// glibc `struct sigaction` (x86_64/aarch64 field order).
#[repr(C)]
pub struct sigaction {
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// glibc `siginfo_t`: 128 bytes; the fault-address union member
/// (`si_addr`) sits right after the three leading ints plus padding.
#[repr(C)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: c_int,
    _fields: [u64; 14],
}

impl siginfo_t {
    /// Faulting address for SIGSEGV/SIGBUS.
    pub fn si_addr(&self) -> *mut c_void {
        self._fields[0] as *mut c_void
    }
}

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn raise(sig: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_sizes_match_glibc() {
        // Layouts the signal handler depends on; a mismatch here would
        // corrupt the stack on the first fault.
        assert_eq!(std::mem::size_of::<sigset_t>(), 128);
        assert_eq!(std::mem::size_of::<siginfo_t>(), 128);
        assert_eq!(std::mem::size_of::<sigaction>(), 8 + 128 + 8 + 8);
    }

    #[test]
    fn sysconf_page_size_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps == 4096 || ps.is_positive() && (ps as u64).is_power_of_two());
    }

    #[test]
    fn mmap_mprotect_roundtrip() {
        unsafe {
            let len = 4096usize;
            let p = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(mprotect(p, len, PROT_READ), 0);
            assert_eq!(*(p as *const u8), 0xAB);
            assert_eq!(munmap(p, len), 0);
        }
    }
}
