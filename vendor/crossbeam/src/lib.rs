//! Offline shim for the subset of `crossbeam` this workspace uses.
//!
//! * [`channel`] — unbounded MPSC channels over `std::sync::mpsc` with
//!   crossbeam's method surface (`send`, `recv`, `recv_timeout`,
//!   `try_recv`, `try_iter`).
//! * [`thread`] — `scope`d threads over `std::thread::scope` (available
//!   since Rust 1.63), with crossbeam's `Result`-returning entry point.

pub mod channel {
    //! Unbounded channels with the `crossbeam_channel` calling
    //! convention. Std's receiver is single-consumer; every use in this
    //! workspace keeps one receiver per endpoint, so the restriction
    //! never bites.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Drain everything currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Blocking iterator until all senders hang up.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

pub mod thread {
    //! Scoped threads borrowing from the parent stack frame.

    /// Run `f` with a scope in which spawned threads may borrow local
    //  data; all threads are joined before `scope` returns.
    ///
    /// Matches crossbeam's signature shape (`Result`-wrapped) so callers
    /// written against crossbeam keep compiling; the std implementation
    /// propagates child panics on join, so the error arm is never taken.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_drain() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        let rest: Vec<i32> = rx.try_iter().collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }

    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let (front, back) = data.split_at(data.len() / 2);
            let a = s.spawn(|| front.iter().sum::<u64>());
            let b = s.spawn(|| back.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
