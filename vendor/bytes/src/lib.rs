//! Offline shim for the subset of `bytes` this workspace uses.
//!
//! Provides the [`Buf`] cursor trait over `&[u8]` and the [`BufMut`]
//! append trait over `Vec<u8>` — exactly the little-endian accessors
//! the chunk and manifest codecs rely on. Semantics match `bytes`:
//! reads past the end panic (the codecs bound-check with
//! [`Buf::remaining`] first).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append sink for encoded bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_slice(b"xyz");
        let mut b: &[u8] = &out;
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0102_0304_0506_0708);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut b: &[u8] = &data;
        b.advance(2);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b: &[u8] = &[1u8];
        let _ = b.get_u32_le();
    }
}
