//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors API-compatible stand-ins for its few external
//! dependencies (see `vendor/README.md`). This one wraps `std::sync`
//! primitives behind `parking_lot`'s poison-free interface: `lock()`,
//! `read()` and `write()` return guards directly, and a poisoned lock
//! (a panic while held) is treated as still-usable rather than
//! propagating `PoisonError`, matching `parking_lot` semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{self, TryLockError};

/// Mutual exclusion with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Block until notified. Unlike `std`, takes the guard by `&mut`
    /// (the `parking_lot` calling convention).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock and return the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire exclusive access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// Quiet the otherwise-unused import when no caller needs it.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Mutex<AtomicUsize>>();
    check::<RwLock<usize>>();
    check::<Condvar>();
    let _ = Ordering::SeqCst;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pair = pair.clone();
            handles.push(thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut g = m.lock();
                *g += 1;
                if *g == 4 {
                    cv.notify_all();
                } else {
                    while *g < 4 {
                        cv.wait(&mut g);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*pair.0.lock(), 4);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
