//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! A deliberately small statistical harness with criterion's calling
//! convention (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `Throughput`) that runs in seconds rather than
//! minutes. Each benchmark is auto-calibrated to ~15 ms batches, then
//! measured for a fixed budget; the reported figure is the median
//! batch, which is robust to scheduler noise on shared machines.
//!
//! Extras over upstream criterion, used by the repo's perf tooling:
//!
//! * `--save-json <path>` — write every result as machine-readable
//!   JSON (used to produce `BENCH_PR1.json` baselines).
//! * `--measure-ms <n>` / `ICKPT_BENCH_MEASURE_MS` — per-bench budget
//!   (default 300 ms).
//! * a positional argument filters benchmarks by substring, like
//!   criterion.

// A bench harness reports to the terminal by design.
#![allow(clippy::disallowed_macros)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported std intrinsic).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Median batch nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Fastest batch nanoseconds per iteration.
    pub best_ns_per_iter: f64,
    /// Iterations actually timed.
    pub iterations: u64,
    /// Declared per-iteration work.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Derived rate in units/second, if a throughput was declared.
    pub fn rate(&self) -> Option<(f64, &'static str)> {
        match self.throughput? {
            Throughput::Bytes(n) => Some((n as f64 / (self.ns_per_iter * 1e-9), "B/s")),
            Throughput::Elements(n) => Some((n as f64 / (self.ns_per_iter * 1e-9), "elem/s")),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    measure: Duration,
    samples: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measure `f` repeatedly; the routine's cost is the batch time
    /// divided by the batch iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it costs >= 1 ms, so timer
        // overhead is <0.1% of a sample.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                // Aim for ~15 ms batches.
                let scale = (15.0 / elapsed.as_secs_f64().max(1e-9) * 1e-3).clamp(1.0, 16384.0);
                batch = ((batch as f64) * scale).ceil() as u64;
                break;
            }
            batch *= 4;
        }
        // Measure batches until the budget runs out (at least 3).
        let deadline = Instant::now() + self.measure;
        while self.samples.len() < 3 || Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            self.iterations += batch;
            if self.samples.len() >= 512 {
                break;
            }
        }
    }
}

/// The benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    measure: Duration,
    json_path: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Build from the bench binary's command line.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut json_path = None;
        let mut measure_ms: u64 = std::env::var("ICKPT_BENCH_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--save-json" => json_path = args.next(),
                "--measure-ms" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        measure_ms = v;
                    }
                }
                // Flags cargo/criterion conventionally pass; ignore.
                "--bench" | "--quick" | "--noplot" => {}
                s if s.starts_with('-') => {
                    // Unknown option (possibly with a value): skip it.
                    if matches!(s, "--save-baseline" | "--baseline" | "--sample-size") {
                        let _ = args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        Self { filter, measure: Duration::from_millis(measure_ms), json_path, results: Vec::new() }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.wants(&id) {
            return;
        }
        let mut b = Bencher { measure: self.measure, samples: Vec::new(), iterations: 0 };
        f(&mut b);
        if b.samples.is_empty() {
            eprintln!("{id}: closure never called Bencher::iter");
            return;
        }
        b.samples.sort_by(|a, z| a.total_cmp(z));
        let median = b.samples[b.samples.len() / 2];
        let best = b.samples[0];
        let result = BenchResult {
            id,
            ns_per_iter: median,
            best_ns_per_iter: best,
            iterations: b.iterations,
            throughput,
        };
        let mut line = format!("{:<48} {:>14} ns/iter", result.id, format_sig(result.ns_per_iter));
        if let Some((rate, unit)) = result.rate() {
            let _ = write!(line, "   {:>12}{}", format_rate(rate), unit);
        }
        println!("{line}");
        self.results.push(result);
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string(), throughput: None }
    }

    /// Results measured so far (for programmatic consumers).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Flush JSON output if requested. Called by `criterion_main!`.
    pub fn final_summary(&mut self) {
        if let Some(path) = self.json_path.clone() {
            let json = results_to_json(&self.results);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("failed to write {path}: {e}");
            } else {
                eprintln!("wrote {} results to {path}", self.results.len());
            }
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_args()
    }
}

/// A named group; benchmarks inherit its throughput declaration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion compatibility; sampling here is
    /// time-budgeted, so the count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let t = self.throughput;
        self.c.run_one(full, t, f);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Serialize results as a stable, dependency-free JSON document.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (rate, unit) = r.rate().unwrap_or((0.0, ""));
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"best_ns_per_iter\": {:.1}, \
             \"iterations\": {}, \"rate\": {:.1}, \"rate_unit\": \"{}\"}}{}",
            r.id.replace('"', "'"),
            r.ns_per_iter,
            r.best_ns_per_iter,
            r.iterations,
            rate,
            unit,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn format_sig(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point: run every group, then emit the summary/JSON.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_fast() {
        let mut b =
            Bencher { measure: Duration::from_millis(10), samples: Vec::new(), iterations: 0 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.iterations > 0);
    }

    #[test]
    fn json_shape() {
        let r = BenchResult {
            id: "g/f".into(),
            ns_per_iter: 12.5,
            best_ns_per_iter: 11.0,
            iterations: 1000,
            throughput: Some(Throughput::Bytes(1024)),
        };
        let json = results_to_json(&[r]);
        assert!(json.contains("\"id\": \"g/f\""));
        assert!(json.contains("\"rate_unit\": \"B/s\""));
    }
}
