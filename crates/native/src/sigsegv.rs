//! The process-global SIGSEGV dispatcher.
//!
//! A fixed-capacity, lock-free registry maps fault addresses to tracked
//! regions. The handler is installed once (idempotently) and must stay
//! async-signal-safe: it touches only atomics and issues the
//! `mprotect` syscall. Unknown faults re-raise with the default
//! disposition so real bugs still produce a crash.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Once;

/// Maximum simultaneously registered regions.
pub const MAX_REGIONS: usize = 64;

/// One registry slot. `bitmap` points at the owning region's
/// `[AtomicU64]` dirty words; the region keeps that allocation alive
/// until it unregisters.
struct Slot {
    active: AtomicBool,
    start: AtomicUsize,
    len: AtomicUsize,
    bitmap: AtomicUsize,
    page_size: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    active: AtomicBool::new(false),
    start: AtomicUsize::new(0),
    len: AtomicUsize::new(0),
    bitmap: AtomicUsize::new(0),
    page_size: AtomicUsize::new(0),
};

static SLOTS: [Slot; MAX_REGIONS] = [EMPTY_SLOT; MAX_REGIONS];

/// Total page faults taken by the handler (across all regions).
pub static FAULT_COUNT: AtomicU64 = AtomicU64::new(0);

static INSTALL: Once = Once::new();

/// Install the SIGSEGV handler (idempotent).
pub fn ensure_handler() {
    // SAFETY: sigaction with a zeroed struct and a handler whose
    // signature matches SA_SIGINFO; both calls are checked for failure
    // and Once guarantees single installation.
    INSTALL.call_once(|| unsafe {
        let mut action: libc::sigaction = std::mem::zeroed();
        action.sa_sigaction = handler
            as unsafe extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void)
            as usize;
        action.sa_flags = libc::SA_SIGINFO | libc::SA_NODEFER;
        libc::sigemptyset(&mut action.sa_mask);
        let rc = libc::sigaction(libc::SIGSEGV, &action, std::ptr::null_mut());
        assert_eq!(rc, 0, "sigaction(SIGSEGV) failed");
        // The paper's Quadrics NIC writes arrive as bus errors on some
        // platforms; track SIGBUS the same way for mmap'ed files.
        let rc = libc::sigaction(libc::SIGBUS, &action, std::ptr::null_mut());
        assert_eq!(rc, 0, "sigaction(SIGBUS) failed");
    });
}

/// Register a region; returns its slot index.
///
/// # Safety
/// `bitmap` must point at `len.div_ceil(64 * page_size)`... i.e. enough
/// `AtomicU64` words for `len / page_size` pages, and must outlive the
/// registration.
pub unsafe fn register(
    start: usize,
    len: usize,
    bitmap: *const AtomicU64,
    page_size: usize,
) -> usize {
    ensure_handler();
    for (i, slot) in SLOTS.iter().enumerate() {
        if slot.active.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            slot.start.store(start, Ordering::Release);
            slot.len.store(len, Ordering::Release);
            slot.bitmap.store(bitmap as usize, Ordering::Release);
            slot.page_size.store(page_size, Ordering::Release);
            return i;
        }
    }
    panic!("sigsegv registry full ({MAX_REGIONS} regions)");
}

/// Unregister a slot previously returned by [`register`].
pub fn unregister(slot: usize) {
    let s = &SLOTS[slot];
    s.start.store(0, Ordering::Release);
    s.len.store(0, Ordering::Release);
    s.bitmap.store(0, Ordering::Release);
    s.active.store(false, Ordering::Release);
}

/// The async-signal-safe fault handler.
///
/// # Safety
/// Invoked by the kernel with valid pointers.
unsafe extern "C" fn handler(
    _sig: libc::c_int,
    info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    let addr = if info.is_null() { 0 } else { (*info).si_addr() as usize };
    if addr != 0 {
        for slot in &SLOTS {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            let start = slot.start.load(Ordering::Acquire);
            let len = slot.len.load(Ordering::Acquire);
            if addr >= start && addr < start + len {
                let page_size = slot.page_size.load(Ordering::Acquire);
                let page = (addr - start) / page_size;
                // Unprotect exactly the faulting page so later writes
                // in this timeslice are free (§4.2).
                let page_base = start + page * page_size;
                libc::mprotect(
                    page_base as *mut libc::c_void,
                    page_size,
                    libc::PROT_READ | libc::PROT_WRITE,
                );
                let bitmap = slot.bitmap.load(Ordering::Acquire) as *const AtomicU64;
                let word = &*bitmap.add(page / 64);
                word.fetch_or(1u64 << (page % 64), Ordering::AcqRel);
                FAULT_COUNT.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    // Not ours: restore the default disposition and re-raise so the
    // process crashes exactly as it would have without us.
    let mut dfl: libc::sigaction = std::mem::zeroed();
    dfl.sa_sigaction = libc::SIG_DFL;
    libc::sigaction(libc::SIGSEGV, &dfl, std::ptr::null_mut());
    libc::raise(libc::SIGSEGV);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_register_unregister_cycles() {
        let words: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let mut slots = Vec::new();
        for _ in 0..8 {
            // SAFETY: `words` holds 4 AtomicU64s — enough bitmap words
            // for one 4096-byte page — and outlives the registration.
            let s = unsafe { register(0x1000, 0x1000, words.as_ptr(), 4096) };
            slots.push(s);
        }
        let distinct: std::collections::BTreeSet<usize> = slots.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "distinct slots");
        for s in slots {
            unregister(s);
        }
        // Slots are reusable after unregistration.
        // SAFETY: as above — `words` covers the single page registered.
        let s = unsafe { register(0x2000, 0x1000, words.as_ptr(), 4096) };
        unregister(s);
    }

    #[test]
    fn handler_installation_is_idempotent() {
        ensure_handler();
        ensure_handler();
    }
}
