//! Real intrusiveness measurement (§6.5).
//!
//! The paper reports < 10 % slowdown at a 1 s timeslice, attributing
//! the cost to the page-fault handler and noting it shrinks as the
//! timeslice grows (fewer re-protections → more data reuse per fault).
//! [`measure`] reproduces that experiment on this machine: run a
//! write-sweep kernel over a tracked region with a given sampling
//! period, against an untracked baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::region::TrackedRegion;
use crate::sampler::TimesliceSampler;

/// Result of one intrusiveness measurement.
#[derive(Debug, Clone, Copy)]
pub struct IntrusivenessResult {
    /// Wall time of the untracked baseline.
    pub baseline: Duration,
    /// Wall time with tracking + sampling enabled.
    pub tracked: Duration,
    /// Page faults taken during the tracked run.
    pub faults: u64,
}

impl IntrusivenessResult {
    /// Slowdown factor (tracked / baseline).
    pub fn slowdown(&self) -> f64 {
        self.tracked.as_secs_f64() / self.baseline.as_secs_f64().max(1e-9)
    }
}

/// Sweep every page of `region` `passes` times, writing one byte per
/// cache line (realistic store traffic without being a pure memset).
fn sweep(region: &TrackedRegion, passes: usize) {
    for pass in 0..passes {
        for page in 0..region.pages() {
            for line in (0..4096).step_by(64) {
                region.write_byte(page, line, (pass ^ page ^ line) as u8);
            }
        }
    }
}

/// Measure tracked-vs-untracked wall time for a `pages`-page region
/// swept `passes` times, sampling every `timeslice`.
pub fn measure(pages: usize, passes: usize, timeslice: Duration) -> IntrusivenessResult {
    use std::sync::atomic::Ordering;

    // Baseline: identical work on an untracked (plain RW) region.
    let base_region = TrackedRegion::new(pages);
    base_region.untrack();
    let t0 = Instant::now();
    sweep(&base_region, passes);
    let baseline = t0.elapsed();
    drop(base_region);

    // Tracked: protection + handler + periodic re-protection.
    let region = Arc::new(TrackedRegion::new(pages));
    let fault_before = crate::sigsegv::FAULT_COUNT.load(Ordering::Relaxed);
    let sampler = TimesliceSampler::start(region.clone(), timeslice);
    let t0 = Instant::now();
    sweep(&region, passes);
    let tracked = t0.elapsed();
    let _ = sampler.stop();
    let faults = crate::sigsegv::FAULT_COUNT.load(Ordering::Relaxed) - fault_before;
    IntrusivenessResult { baseline, tracked, faults }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_run_takes_faults_and_finishes() {
        let r = measure(64, 4, Duration::from_millis(50));
        assert!(r.faults >= 64, "at least one fault per page, got {}", r.faults);
        assert!(r.tracked >= r.baseline / 4, "sanity: tracked time not absurdly small");
        assert!(r.slowdown() > 0.0);
    }

    #[test]
    fn reprotection_forces_refaults() {
        // Deterministic version of "shorter timeslices fault more":
        // drive the alarm by hand between sweeps.
        use std::sync::atomic::Ordering;
        let region = TrackedRegion::new(32);
        let before = crate::sigsegv::FAULT_COUNT.load(Ordering::Relaxed);
        sweep(&region, 2); // 32 faults (second pass free)
        let mid = crate::sigsegv::FAULT_COUNT.load(Ordering::Relaxed);
        let _ = region.sample(); // the alarm re-protects
        sweep(&region, 2); // 32 fresh faults
        let after = crate::sigsegv::FAULT_COUNT.load(Ordering::Relaxed);
        assert_eq!(mid - before, 32);
        assert_eq!(after - mid, 32, "re-protection must re-fault every page");
    }
}
