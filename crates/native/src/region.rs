//! A write-tracked memory region over real `mmap`/`mprotect`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::page_size;
use crate::sigsegv;

/// Result of one timeslice sample on a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeSample {
    /// Dirty pages found in this timeslice.
    pub dirty_pages: Vec<usize>,
    /// Total pages in the region.
    pub total_pages: usize,
}

impl NativeSample {
    /// The IWS size of this slice, in pages.
    pub fn iws_pages(&self) -> usize {
        self.dirty_pages.len()
    }
}

/// An anonymous `mmap`'d arena whose writes are observed through page
/// faults — the paper's instrumentation applied to one region.
pub struct TrackedRegion {
    base: *mut u8,
    pages: usize,
    page_size: usize,
    bitmap: Box<[AtomicU64]>,
    slot: usize,
}

// SAFETY: the region is an owned mapping; all shared mutation happens
// through atomics (the bitmap) or the kernel (protections).
unsafe impl Send for TrackedRegion {}
// SAFETY: as for Send — shared access mutates only through the atomic
// bitmap or kernel-mediated page protections.
unsafe impl Sync for TrackedRegion {}

impl TrackedRegion {
    /// Map and protect a fresh region of `pages` pages.
    pub fn new(pages: usize) -> TrackedRegion {
        assert!(pages > 0, "empty region");
        let ps = page_size();
        let len = pages * ps;
        // SAFETY: anonymous private mapping; checked for MAP_FAILED.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(base != libc::MAP_FAILED, "mmap failed");
        let words = pages.div_ceil(64);
        let bitmap: Box<[AtomicU64]> = (0..words).map(|_| AtomicU64::new(0)).collect();
        // SAFETY: bitmap outlives the registration (dropped after
        // unregister in Drop), and has one bit per page.
        let slot = unsafe { sigsegv::register(base as usize, len, bitmap.as_ptr(), ps) };
        let region = TrackedRegion { base: base as *mut u8, pages, page_size: ps, bitmap, slot };
        region.protect_all();
        region
    }

    /// Number of pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.pages * self.page_size
    }

    /// Whether the region is empty (never: construction requires ≥1
    /// page).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Write-protect every page and clear the dirty set (the alarm
    /// handler's re-protect step).
    pub fn protect_all(&self) {
        // SAFETY: protecting our own mapping.
        let rc =
            unsafe { libc::mprotect(self.base as *mut libc::c_void, self.len(), libc::PROT_READ) };
        assert_eq!(rc, 0, "mprotect(PROT_READ) failed");
        for w in self.bitmap.iter() {
            w.store(0, Ordering::Release);
        }
    }

    /// Write one byte into a page (taking a fault if it is protected).
    pub fn write_byte(&self, page: usize, offset: usize, value: u8) {
        assert!(page < self.pages && offset < self.page_size);
        // SAFETY: in-bounds write into our mapping; volatile so the
        // store cannot be elided.
        unsafe {
            let p = self.base.add(page * self.page_size + offset);
            std::ptr::write_volatile(p, value);
        }
    }

    /// Read one byte (never faults: pages stay readable).
    pub fn read_byte(&self, page: usize, offset: usize) -> u8 {
        assert!(page < self.pages && offset < self.page_size);
        // SAFETY: in-bounds read of our mapping.
        unsafe { std::ptr::read_volatile(self.base.add(page * self.page_size + offset)) }
    }

    /// Fill every byte of a page (one fault, then free writes).
    pub fn fill_page(&self, page: usize, value: u8) {
        assert!(page < self.pages);
        // SAFETY: in-bounds; the first store faults and unprotects.
        unsafe {
            let p = self.base.add(page * self.page_size);
            std::ptr::write_bytes(p, value, self.page_size);
        }
    }

    /// Pages currently marked dirty, without resetting anything.
    pub fn peek_dirty(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, w) in self.bitmap.iter().enumerate() {
            let mut bits = w.load(Ordering::Acquire);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let page = wi * 64 + b;
                if page < self.pages {
                    out.push(page);
                }
            }
        }
        out
    }

    /// The alarm: capture the dirty set, clear it, and re-protect all
    /// pages. Concurrent writers simply fault into the next timeslice.
    pub fn sample(&self) -> NativeSample {
        let mut dirty = Vec::new();
        for (wi, w) in self.bitmap.iter().enumerate() {
            let mut bits = w.swap(0, Ordering::AcqRel);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let page = wi * 64 + b;
                if page < self.pages {
                    dirty.push(page);
                }
            }
        }
        // SAFETY: protecting our own mapping.
        let rc =
            unsafe { libc::mprotect(self.base as *mut libc::c_void, self.len(), libc::PROT_READ) };
        assert_eq!(rc, 0, "mprotect(PROT_READ) failed");
        dirty.sort_unstable();
        NativeSample { dirty_pages: dirty, total_pages: self.pages }
    }

    /// Disable tracking: make the whole region plainly writable (used
    /// by the intrusiveness baseline).
    pub fn untrack(&self) {
        // SAFETY: protecting our own mapping.
        let rc = unsafe {
            libc::mprotect(
                self.base as *mut libc::c_void,
                self.len(),
                libc::PROT_READ | libc::PROT_WRITE,
            )
        };
        assert_eq!(rc, 0, "mprotect(RW) failed");
    }
}

impl Drop for TrackedRegion {
    fn drop(&mut self) {
        sigsegv::unregister(self.slot);
        // SAFETY: unmapping our own mapping; the registry no longer
        // references it.
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_faults_and_marks_dirty() {
        let r = TrackedRegion::new(16);
        assert!(r.peek_dirty().is_empty());
        r.write_byte(3, 10, 42);
        assert_eq!(r.read_byte(3, 10), 42);
        assert_eq!(r.peek_dirty(), vec![3]);
        // Second write to the same page: no new fault, still one dirty.
        r.write_byte(3, 11, 43);
        assert_eq!(r.peek_dirty(), vec![3]);
    }

    #[test]
    fn sample_resets_and_reprotects() {
        let r = TrackedRegion::new(8);
        r.write_byte(0, 0, 1);
        r.write_byte(5, 0, 1);
        let s = r.sample();
        assert_eq!(s.dirty_pages, vec![0, 5]);
        assert_eq!(s.iws_pages(), 2);
        assert!(r.peek_dirty().is_empty(), "sample clears the set");
        // Pages are protected again: the next write re-faults.
        r.write_byte(5, 1, 2);
        assert_eq!(r.peek_dirty(), vec![5]);
    }

    #[test]
    fn reads_do_not_dirty() {
        let r = TrackedRegion::new(4);
        for p in 0..4 {
            let _ = r.read_byte(p, 0);
        }
        assert!(r.peek_dirty().is_empty());
    }

    #[test]
    fn fill_page_is_one_fault() {
        let r = TrackedRegion::new(4);
        let before = sigsegv::FAULT_COUNT.load(std::sync::atomic::Ordering::Relaxed);
        r.fill_page(2, 0xAB);
        let after = sigsegv::FAULT_COUNT.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(r.read_byte(2, 4095), 0xAB);
        // Other tests may fault concurrently; we can only assert at
        // least one fault happened and page 2 is dirty.
        assert!(after > before);
        assert!(r.peek_dirty().contains(&2));
    }

    #[test]
    fn many_regions_coexist() {
        let regions: Vec<TrackedRegion> = (0..8).map(|_| TrackedRegion::new(4)).collect();
        for (i, r) in regions.iter().enumerate() {
            r.write_byte(i % 4, 0, i as u8);
        }
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.peek_dirty(), vec![i % 4]);
        }
    }

    #[test]
    fn untracked_region_collects_nothing() {
        let r = TrackedRegion::new(4);
        r.untrack();
        r.write_byte(1, 0, 9);
        assert!(r.peek_dirty().is_empty(), "untracked writes are invisible");
    }

    #[test]
    fn concurrent_writers_from_threads() {
        let r = std::sync::Arc::new(TrackedRegion::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for p in (t..64).step_by(4) {
                    r.write_byte(p, 0, t as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.sample().iws_pages(), 64);
    }
}
