//! `/proc/self/maps` parsing.
//!
//! The paper's library, preloaded via `LD_PRELOAD`, had to discover the
//! process's data segments (initialized data, BSS, heap, mmap areas) in
//! order to protect them (§4.1). On Linux that discovery reads
//! `/proc/self/maps`; this module is that parser.

use std::fs;

/// One mapping of the process address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntry {
    /// Start address.
    pub start: usize,
    /// End address (exclusive).
    pub end: usize,
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
    /// Private (copy-on-write) vs shared.
    pub private: bool,
    /// Backing path, `[heap]`, `[stack]`, or empty for anonymous.
    pub path: String,
}

impl MapEntry {
    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the mapping is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether this is the kind of segment the paper's library tracks:
    /// writable, private, non-stack data (the stack cannot be
    /// protected, §4.2).
    pub fn is_trackable_data(&self) -> bool {
        self.write && self.private && self.path != "[stack]" && !self.exec
    }
}

/// Parse one line of `/proc/pid/maps` format.
pub fn parse_line(line: &str) -> Option<MapEntry> {
    let mut parts = line.split_whitespace();
    let range = parts.next()?;
    let perms = parts.next()?;
    let _offset = parts.next()?;
    let _dev = parts.next()?;
    let _inode = parts.next()?;
    let path = parts.collect::<Vec<_>>().join(" ");
    let (start_s, end_s) = range.split_once('-')?;
    let start = usize::from_str_radix(start_s, 16).ok()?;
    let end = usize::from_str_radix(end_s, 16).ok()?;
    let perms: Vec<char> = perms.chars().collect();
    if perms.len() < 4 {
        return None;
    }
    Some(MapEntry {
        start,
        end,
        read: perms[0] == 'r',
        write: perms[1] == 'w',
        exec: perms[2] == 'x',
        private: perms[3] == 'p',
        path,
    })
}

/// Read and parse this process's memory map.
pub fn self_maps() -> std::io::Result<Vec<MapEntry>> {
    let text = fs::read_to_string("/proc/self/maps")?;
    Ok(text.lines().filter_map(parse_line).collect())
}

/// The total size of trackable data segments — what the paper's Table 2
/// "memory footprint" corresponds to for a live process.
pub fn trackable_data_bytes(entries: &[MapEntry]) -> usize {
    entries.iter().filter(|e| e.is_trackable_data()).map(|e| e.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_lines() {
        let heap = parse_line("55a8c5800000-55a8c5a00000 rw-p 00000000 00:00 0   [heap]").unwrap();
        assert_eq!(heap.path, "[heap]");
        assert!(heap.read && heap.write && !heap.exec && heap.private);
        assert_eq!(heap.len(), 0x200000);
        assert!(heap.is_trackable_data());

        let text =
            parse_line("7f1c8a000000-7f1c8a200000 r-xp 00000000 08:01 131 /usr/lib/libc.so.6")
                .unwrap();
        assert!(text.exec && !text.write);
        assert!(!text.is_trackable_data());
        assert_eq!(text.path, "/usr/lib/libc.so.6");

        let stack = parse_line("7ffc0000000-7ffc0021000 rw-p 00000000 00:00 0 [stack]").unwrap();
        assert!(!stack.is_trackable_data(), "the stack cannot be protected");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not a mapping").is_none());
        assert!(parse_line("zzzz-yyyy rw-p 0 0 0").is_none());
    }

    #[test]
    fn reads_own_maps() {
        let maps = self_maps().unwrap();
        assert!(!maps.is_empty());
        // A Rust test binary always has heap and writable data.
        assert!(maps.iter().any(|e| e.path == "[heap]" || e.is_trackable_data()));
        assert!(trackable_data_bytes(&maps) > 0);
        // Our own mmap'd tracked regions appear as anonymous mappings.
        let r = crate::region::TrackedRegion::new(16);
        let maps = self_maps().unwrap();
        assert!(maps.iter().any(|e| e.path.is_empty() && e.len() >= 16 * 4096));
        drop(r);
    }
}
