//! # ickpt-native — the real dirty-page tracking mechanism
//!
//! Everything else in this workspace runs on a simulated MMU; this
//! crate demonstrates the *actual* mechanism the paper's
//! instrumentation library used (§4.2), on this machine, from Rust:
//!
//! 1. [`region::TrackedRegion`] `mmap`s an anonymous arena and
//!    write-protects it (`mprotect(PROT_READ)`).
//! 2. The first write to any page raises `SIGSEGV`; the process-global
//!    handler installed by [`sigsegv`] finds the owning region, marks
//!    the page dirty in an atomic bitmap, and re-enables writes on that
//!    one page (`mprotect(PROT_READ|PROT_WRITE)`). Subsequent writes in
//!    the same timeslice are free — exactly the paper's handler.
//! 3. [`sampler::TimesliceSampler`] (or a manual
//!    [`region::TrackedRegion::sample`]) plays the alarm: it records
//!    the dirty set (the IWS), clears it, and re-protects all pages.
//!
//! [`maps`] parses `/proc/self/maps`, which is how a preload library
//! discovers the data segments it must protect (§4.1).
//!
//! The signal handler is strictly async-signal-safe: it performs only
//! address arithmetic, atomic loads/stores and the `mprotect` syscall.
//! Faults at addresses outside every tracked region are re-raised with
//! the default disposition, so genuine crashes still crash.
//!
//! Dependency note: `libc` is required for `mmap`/`mprotect`/
//! `sigaction`; the repro notes for this paper call out exactly this
//! route ("nix/libc crates expose mprotect and SIGSEGV handling").

pub mod intrusiveness;
pub mod maps;
pub mod region;
pub mod sampler;
pub mod sigsegv;

pub use region::TrackedRegion;
pub use sampler::TimesliceSampler;

/// Native page size used by this crate (queried from the OS).
pub fn page_size() -> usize {
    // SAFETY: sysconf is always safe to call.
    let ps = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    assert!(ps > 0, "sysconf(_SC_PAGESIZE) failed");
    ps as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn page_size_is_sane() {
        let ps = super::page_size();
        assert!(ps >= 4096 && ps.is_power_of_two());
    }
}
