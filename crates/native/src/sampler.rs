//! The timeslice alarm: a background sampling thread.
//!
//! The paper's library used `setitimer`/`SIGALRM`; in-process Rust is
//! better served by a dedicated thread that wakes every timeslice,
//! records the IWS and re-protects the region. The observable behaviour
//! is identical: writers fault once per page per timeslice.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver};

use crate::region::{NativeSample, TrackedRegion};

/// A periodic sampler over one region.
pub struct TimesliceSampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    samples: Receiver<TimedSample>,
}

/// One alarm tick's output.
#[derive(Debug, Clone)]
pub struct TimedSample {
    /// Wall-clock offset of the tick from sampler start.
    pub at: Duration,
    /// The dirty set captured at the tick.
    pub sample: NativeSample,
}

impl TimesliceSampler {
    /// Start sampling `region` every `timeslice` (wall clock).
    pub fn start(region: Arc<TrackedRegion>, timeslice: Duration) -> Self {
        assert!(!timeslice.is_zero());
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let mut next = start + timeslice;
            while !stop2.load(Ordering::Acquire) {
                let now = Instant::now();
                if now < next {
                    std::thread::sleep(next - now);
                }
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let sample = region.sample();
                let _ = tx.send(TimedSample { at: start.elapsed(), sample });
                next += timeslice;
            }
        });
        Self { stop, handle: Some(handle), samples: rx }
    }

    /// Stop the sampler and return everything it recorded, in tick
    /// order.
    pub fn stop(mut self) -> Vec<TimedSample> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.samples.try_iter().collect()
    }
}

impl Drop for TimesliceSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_observes_per_timeslice_dirty_sets() {
        let region = Arc::new(TrackedRegion::new(32));
        let sampler = TimesliceSampler::start(region.clone(), Duration::from_millis(30));
        // Write 4 pages, wait past a tick, write 4 different pages.
        for p in 0..4 {
            region.write_byte(p, 0, 1);
        }
        std::thread::sleep(Duration::from_millis(50));
        for p in 8..12 {
            region.write_byte(p, 0, 1);
        }
        std::thread::sleep(Duration::from_millis(50));
        let samples = sampler.stop();
        assert!(samples.len() >= 2, "at least two ticks, got {}", samples.len());
        let total: usize = samples.iter().map(|s| s.sample.iws_pages()).sum();
        assert_eq!(total, 8, "every dirtied page observed exactly once");
        // Ticks are ordered in time.
        for w in samples.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn stop_is_idempotent_through_drop() {
        let region = Arc::new(TrackedRegion::new(4));
        let sampler = TimesliceSampler::start(region, Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(25));
        drop(sampler); // must not hang or double-join
    }
}
