//! Aligned text tables.
//!
//! The table regenerators print in the same row/column structure as
//! the paper's tables, so a reader can diff them side by side.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), header: Vec::new(), rows: Vec::new() }
    }

    /// Set the header row.
    pub fn header(mut self, cells: &[&str]) -> Self {
        self.header = cells.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a data row (must match the header width if one is set).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        if !self.header.is_empty() {
            assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column (names), right-align data.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            line
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Table X").header(&["Application", "Max", "Avg"]);
        t.row(vec!["Sage-1000MB".into(), "274.9".into(), "78.8".into()]);
        t.row(vec!["LU".into(), "12.5".into(), "12.5".into()]);
        let s = t.render();
        assert!(s.contains("Table X"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title + header + rule + 2 rows");
        // All data lines are the same width (alignment).
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(lines[3].starts_with("Sage-1000MB"));
        assert!(lines[4].starts_with("LU "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("t").header(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn headerless_table() {
        let mut t = TextTable::new("");
        t.row(vec!["a".into(), "1".into()]);
        assert_eq!(t.render(), "a  1\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(78.8123, 1), "78.8");
        assert_eq!(fnum(0.5, 0), "0");
    }
}
