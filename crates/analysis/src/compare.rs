//! Paper-vs-measured comparison rows.
//!
//! Every experiment regenerator ends by printing these rows, and the
//! `repro` binary collects them into `EXPERIMENTS.md`. The point is
//! honesty: the substrate is a calibrated simulator, so we report
//! *shape agreement* (who wins, how curves move) and the per-cell
//! relative deltas, not a claim of matching a 2004 cluster's absolute
//! numbers.

use crate::stats::relative_error;
use crate::table::{fnum, TextTable};

/// One measured quantity against its paper value.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Experiment id (e.g. "Table 4 / Sage-1000MB avg IB").
    pub label: String,
    /// Value from the paper.
    pub paper: f64,
    /// Value we measured.
    pub measured: f64,
    /// Unit string.
    pub unit: &'static str,
}

impl Comparison {
    /// Build a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Self { label: label.into(), paper, measured, unit }
    }

    /// Signed relative delta (measured vs paper).
    pub fn delta(&self) -> f64 {
        relative_error(self.measured, self.paper)
    }

    /// Whether the measurement is within `tol` relative tolerance.
    pub fn within(&self, tol: f64) -> bool {
        self.delta().abs() <= tol
    }
}

/// Render comparisons as an aligned table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let mut t = TextTable::new(title).header(&["experiment", "paper", "measured", "delta", "unit"]);
    for c in rows {
        t.row(vec![
            c.label.clone(),
            fnum(c.paper, 1),
            fnum(c.measured, 1),
            format!("{:+.0}%", c.delta() * 100.0),
            c.unit.to_string(),
        ]);
    }
    t.render()
}

/// Render comparisons as Markdown table rows (for EXPERIMENTS.md).
pub fn comparison_markdown(rows: &[Comparison]) -> String {
    let mut out = String::from("| experiment | paper | measured | delta |\n|---|---:|---:|---:|\n");
    for c in rows {
        out.push_str(&format!(
            "| {} | {} {} | {} {} | {:+.0}% |\n",
            c.label,
            fnum(c.paper, 1),
            c.unit,
            fnum(c.measured, 1),
            c.unit,
            c.delta() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_tolerance() {
        let c = Comparison::new("avg IB", 78.8, 82.0, "MB/s");
        assert!(c.delta() > 0.0 && c.delta() < 0.05);
        assert!(c.within(0.05));
        assert!(!c.within(0.01));
    }

    #[test]
    fn table_rendering() {
        let rows =
            vec![Comparison::new("x", 100.0, 90.0, "MB/s"), Comparison::new("y", 10.0, 10.0, "s")];
        let s = comparison_table("T", &rows);
        assert!(s.contains("-10%"));
        assert!(s.contains("+0%"));
        let md = comparison_markdown(&rows);
        assert!(md.starts_with("| experiment"));
        assert!(md.contains("| x | 100.0 MB/s | 90.0 MB/s | -10% |"));
    }
}
