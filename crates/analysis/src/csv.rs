//! Minimal CSV export (RFC-4180 quoting) for external plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A CSV document under construction.
#[derive(Debug, Default, Clone)]
pub struct Csv {
    buf: String,
    columns: usize,
}

impl Csv {
    /// Start with a header row.
    pub fn with_header(cells: &[&str]) -> Self {
        let mut csv = Self { buf: String::new(), columns: cells.len() };
        csv.push_row(cells.iter().map(|s| s.to_string()));
        csv
    }

    fn quote(cell: &str) -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    fn push_row(&mut self, cells: impl Iterator<Item = String>) {
        let cells: Vec<String> = cells.map(|c| Self::quote(&c)).collect();
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        writeln!(self.buf, "{}", cells.join(",")).expect("string write");
    }

    /// Append a row of string cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.push_row(cells.iter().cloned());
        self
    }

    /// Append a row of (label, numbers).
    pub fn row_num(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v}")));
        self.push_row(cells.into_iter());
        self
    }

    /// The document text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Write to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_rows() {
        let mut csv = Csv::with_header(&["t", "iws_mb"]);
        csv.row_num("1", &[4.5]);
        csv.row(&["2".into(), "5.5".into()]);
        assert_eq!(csv.as_str(), "t,iws_mb\n1,4.5\n2,5.5\n");
    }

    #[test]
    fn quotes_special_cells() {
        let mut csv = Csv::with_header(&["name", "v"]);
        csv.row(&["a,b".into(), "say \"hi\"".into()]);
        assert_eq!(csv.as_str(), "name,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut csv = Csv::with_header(&["a", "b"]);
        csv.row(&["x".into()]);
    }

    #[test]
    fn writes_file() {
        let path = std::env::temp_dir().join(format!("ickpt_csv_{}.csv", std::process::id()));
        let mut csv = Csv::with_header(&["a"]);
        csv.row(&["1".into()]);
        csv.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        std::fs::remove_file(path).unwrap();
    }
}
