//! Rendered experiment output.
//!
//! Experiments render into an [`ExperimentReport`] instead of printing,
//! so the parallel scheduler can run them on worker threads and emit
//! their output strictly in input order — stdout is byte-identical at
//! any `ICKPT_BENCH_THREADS`.

use crate::Comparison;

/// Pre-rendered flight-recorder exports attached to an experiment when
/// trace capture was requested (`repro --trace-out`). The strings are
/// final file contents — the harness writes them verbatim, so they are
/// byte-deterministic wherever the recorder itself is.
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// One JSON object per event, one per line.
    pub jsonl: String,
    /// Rendered aggregate summary (utilization, stalls, recovery paths).
    pub summary: String,
    /// Prometheus-style metrics text snapshot, when `ICKPT_METRICS`
    /// attached a metrics plane to the run.
    pub metrics: Option<String>,
}

/// Everything an experiment produces: the rendered table/figure text
/// and the paper-vs-measured rows for EXPERIMENTS.md.
pub struct ExperimentReport {
    /// The fully rendered output (printed verbatim, trailing newline
    /// included).
    pub body: String,
    /// Paper-vs-measured comparison rows.
    pub comparisons: Vec<Comparison>,
    /// Flight-recorder exports, when tracing was enabled.
    pub trace: Option<TraceArtifacts>,
}

impl ExperimentReport {
    /// A report with no trace attachment.
    pub fn new(body: String, comparisons: Vec<Comparison>) -> Self {
        Self { body, comparisons, trace: None }
    }

    /// Attach trace artifacts (`None` leaves the report unchanged, so
    /// callers can pass a builder's output through unconditionally).
    pub fn with_trace(mut self, trace: Option<TraceArtifacts>) -> Self {
        self.trace = trace;
        self
    }

    /// Print the body and hand back the comparison rows.
    // The sanctioned stdout path for bench targets: the body is the
    // deliverable, and callers invoke this only from terminal-facing
    // binaries.
    #[allow(clippy::disallowed_macros)]
    pub fn print(self) -> Vec<Comparison> {
        print!("{}", self.body);
        self.comparisons
    }
}
