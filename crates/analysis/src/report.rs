//! Rendered experiment output.
//!
//! Experiments render into an [`ExperimentReport`] instead of printing,
//! so the parallel scheduler can run them on worker threads and emit
//! their output strictly in input order — stdout is byte-identical at
//! any `ICKPT_BENCH_THREADS`.

use crate::Comparison;

/// Everything an experiment produces: the rendered table/figure text
/// and the paper-vs-measured rows for EXPERIMENTS.md.
pub struct ExperimentReport {
    /// The fully rendered output (printed verbatim, trailing newline
    /// included).
    pub body: String,
    /// Paper-vs-measured comparison rows.
    pub comparisons: Vec<Comparison>,
}

impl ExperimentReport {
    /// Print the body and hand back the comparison rows.
    pub fn print(self) -> Vec<Comparison> {
        print!("{}", self.body);
        self.comparisons
    }
}
