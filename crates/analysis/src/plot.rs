//! ASCII line plots for the figure regenerators.
//!
//! The figure benches print each series both as machine-readable rows
//! and as a terminal plot, so the *shape* claims (burst periodicity,
//! IB decay, scaling flatness) are visible in `cargo bench` output
//! without external tooling.

/// Render `series` (x, y) as an ASCII scatter/line plot of the given
/// character dimensions, with axis labels.
pub fn ascii_plot(title: &str, series: &[(f64, f64)], width: usize, height: usize) -> String {
    ascii_multi_plot(title, &[("", series)], width, height)
}

/// Render multiple named series in one frame; each series gets its own
/// glyph (`*`, `o`, `+`, `x`, ...).
pub fn ascii_multi_plot(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 8 && height >= 2, "plot area too small");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    if all.is_empty() {
        out.push_str("(empty series)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s.iter() {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>9.1} |")
        } else if i == height - 1 {
            format!("{ymin:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>9}  {}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>11}{:<.1}{}{:>.1}\n",
        "",
        xmin,
        " ".repeat(width.saturating_sub(8)),
        xmax
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| !name.is_empty())
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    if !legend.is_empty() {
        out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_have_expected_frame() {
        let series: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i as f64).sin() + 1.0)).collect();
        let s = ascii_plot("sine", &series, 40, 10);
        assert!(s.starts_with("sine\n"));
        let lines: Vec<&str> = s.lines().collect();
        // title + 10 rows + rule + x labels.
        assert_eq!(lines.len(), 13);
        assert!(s.contains('*'));
    }

    #[test]
    fn multi_series_legend_and_glyphs() {
        let a: Vec<(f64, f64)> = vec![(0.0, 0.0), (1.0, 1.0)];
        let b: Vec<(f64, f64)> = vec![(0.0, 1.0), (1.0, 0.0)];
        let s = ascii_multi_plot("two", &[("up", &a), ("down", &b)], 20, 5);
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
        assert!(s.contains('o'));
    }

    #[test]
    fn empty_series_is_graceful() {
        let s = ascii_plot("nothing", &[], 20, 5);
        assert!(s.contains("(empty series)"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let series = vec![(0.0, 5.0), (1.0, 5.0)];
        let s = ascii_plot("flat", &series, 20, 5);
        assert!(s.contains('*'));
    }
}
