//! # ickpt-analysis — statistics, tables and plots for experiments
//!
//! The benchmark harness regenerates every table and figure of the
//! paper; this crate is its presentation layer:
//!
//! * [`stats`] — summary statistics over series.
//! * [`table`] — aligned text tables (the Table 2/3/4 regenerators).
//! * [`plot`] — ASCII line plots (the Figure 1–5 regenerators print
//!   their series both as plots and as machine-readable rows).
//! * [`csv`] — CSV export for external plotting.
//! * [`compare`] — paper-vs-measured rows for EXPERIMENTS.md.

pub mod compare;
pub mod csv;
pub mod plot;
pub mod report;
pub mod stats;
pub mod table;

pub use compare::Comparison;
pub use plot::{ascii_multi_plot, ascii_plot};
pub use report::{ExperimentReport, TraceArtifacts};
pub use table::TextTable;
