//! Summary statistics over f64 series.

/// Mean of a series (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum of a series (0 for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Minimum of a series (0 for empty input).
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Relative difference `(measured - reference) / reference`, as a
/// signed fraction; 0 when the reference is 0.
pub fn relative_error(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (measured - reference) / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(max(&xs), 4.0);
        assert_eq!(min(&xs), 1.0);
        assert!((stddev(&xs) - 1.118).abs() < 1e-3);
    }

    #[test]
    fn empty_series_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 50.0), 51.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 100.0), 3.0);
    }

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) + 0.1).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 0.0), 0.0);
    }
}
