//! Property-based tests for the memory substrate.

use ickpt_mem::{AddressSpace, DirtyBitmap, LayoutBuilder, MmapArea, PageRange, SparseSpace, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A naive reference implementation of a page-set, for checking the
/// word-packed bitmap against.
#[derive(Default)]
struct RefSet(BTreeSet<u64>);

#[derive(Debug, Clone)]
enum BitmapOp {
    Set(u64),
    Clear(u64),
    SetRange(u64, u64),
    ClearRange(u64, u64),
    ClearAll,
}

fn bitmap_ops(pages: u64) -> impl Strategy<Value = Vec<BitmapOp>> {
    let op = prop_oneof![
        (0..pages).prop_map(BitmapOp::Set),
        (0..pages).prop_map(BitmapOp::Clear),
        (0..pages, 1..pages).prop_map(move |(s, l)| BitmapOp::SetRange(s, l.min(pages - s).max(1))),
        (0..pages, 1..pages)
            .prop_map(move |(s, l)| BitmapOp::ClearRange(s, l.min(pages - s).max(1))),
        Just(BitmapOp::ClearAll),
    ];
    prop::collection::vec(op, 1..120)
}

proptest! {
    /// The packed bitmap agrees with a BTreeSet under arbitrary op
    /// sequences: same count, same membership, same iteration order.
    #[test]
    fn bitmap_matches_reference(ops in bitmap_ops(700)) {
        let pages = 700u64;
        let mut bm = DirtyBitmap::new(pages);
        let mut rf = RefSet::default();
        for op in ops {
            match op {
                BitmapOp::Set(p) => {
                    let newly = bm.set(p);
                    prop_assert_eq!(newly, rf.0.insert(p));
                }
                BitmapOp::Clear(p) => {
                    let was = bm.clear(p);
                    prop_assert_eq!(was, rf.0.remove(&p));
                }
                BitmapOp::SetRange(s, l) => {
                    let n = bm.set_range(PageRange::new(s, l));
                    let mut newly = 0;
                    for p in s..s + l {
                        newly += rf.0.insert(p) as u64;
                    }
                    prop_assert_eq!(n, newly);
                }
                BitmapOp::ClearRange(s, l) => {
                    let n = bm.clear_range(PageRange::new(s, l));
                    let mut dropped = 0;
                    for p in s..s + l {
                        dropped += rf.0.remove(&p) as u64;
                    }
                    prop_assert_eq!(n, dropped);
                }
                BitmapOp::ClearAll => {
                    bm.clear_all();
                    rf.0.clear();
                }
            }
            prop_assert_eq!(bm.count(), rf.0.len() as u64);
        }
        let got: Vec<u64> = bm.iter_set().collect();
        let want: Vec<u64> = rf.0.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// dirty_ranges() is a lossless run-length encoding of the set bits.
    #[test]
    fn dirty_ranges_reconstruct_set(ops in bitmap_ops(500)) {
        let mut bm = DirtyBitmap::new(500);
        for op in ops {
            match op {
                BitmapOp::Set(p) => { bm.set(p); }
                BitmapOp::Clear(p) => { bm.clear(p); }
                BitmapOp::SetRange(s, l) => { bm.set_range(PageRange::new(s, l)); }
                BitmapOp::ClearRange(s, l) => { bm.clear_range(PageRange::new(s, l)); }
                BitmapOp::ClearAll => bm.clear_all(),
            }
        }
        let mut rebuilt = DirtyBitmap::new(500);
        let ranges = bm.dirty_ranges();
        // Ranges are sorted, non-empty, non-adjacent (maximal runs).
        for w in ranges.windows(2) {
            prop_assert!(w[0].end() < w[1].start, "runs must be maximal and ordered");
        }
        for r in &ranges {
            prop_assert!(r.len > 0);
            rebuilt.set_range(*r);
        }
        prop_assert_eq!(rebuilt, bm);
    }

    /// count_range never disagrees with filtering the iterator.
    #[test]
    fn count_range_consistent(ops in bitmap_ops(300), start in 0u64..300, len in 0u64..300) {
        let mut bm = DirtyBitmap::new(300);
        for op in ops {
            match op {
                BitmapOp::Set(p) => { bm.set(p); }
                BitmapOp::SetRange(s, l) => { bm.set_range(PageRange::new(s, l)); }
                BitmapOp::Clear(p) => { bm.clear(p); }
                BitmapOp::ClearRange(s, l) => { bm.clear_range(PageRange::new(s, l)); }
                BitmapOp::ClearAll => bm.clear_all(),
            }
        }
        let len = len.min(300 - start);
        let r = PageRange::new(start, len);
        let by_iter = bm.iter_set().filter(|p| r.contains(*p)).count() as u64;
        prop_assert_eq!(bm.count_range(r), by_iter);
    }
}

#[derive(Debug, Clone)]
enum ArenaOp {
    Map(u64),
    /// Unmap the i-th live mapping (mod live count).
    Unmap(usize),
}

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    let op = prop_oneof![
        (1u64..40).prop_map(ArenaOp::Map),
        (0usize..64).prop_map(ArenaOp::Unmap),
    ];
    prop::collection::vec(op, 1..200)
}

proptest! {
    /// The mmap arena never hands out overlapping mappings, never leaks
    /// pages, and coalescing keeps the free list consistent with the
    /// mapped total.
    #[test]
    fn mmap_arena_invariants(ops in arena_ops()) {
        let region = PageRange::new(10, 256);
        let mut arena = MmapArea::new(region);
        let mut live: Vec<PageRange> = Vec::new();
        for op in ops {
            match op {
                ArenaOp::Map(pages) => {
                    if let Ok(m) = arena.map(pages) {
                        prop_assert_eq!(m.len, pages);
                        prop_assert!(m.start >= region.start && m.end() <= region.end());
                        for l in &live {
                            prop_assert!(!m.overlaps(l), "new mapping overlaps live one");
                        }
                        live.push(m);
                    } else {
                        // Exhaustion is only legal if no hole fits, which
                        // in particular requires free < requested OR
                        // fragmentation; we at least check free-page
                        // accounting below.
                    }
                }
                ArenaOp::Unmap(i) => {
                    if !live.is_empty() {
                        let m = live.remove(i % live.len());
                        prop_assert!(arena.unmap(m).is_ok());
                    }
                }
            }
            let live_total: u64 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(arena.mapped_pages(), live_total);
            prop_assert_eq!(arena.free_pages(), region.len - live_total);
            prop_assert_eq!(arena.live_count(), live.len());
        }
        // Draining everything must coalesce back to one free block.
        for m in live.drain(..) {
            arena.unmap(m).unwrap();
        }
        prop_assert_eq!(arena.mapped_pages(), 0);
        prop_assert!(arena.free_block_count() <= 1);
        prop_assert!(arena.map(region.len).is_ok(), "fully drained arena serves a max request");
    }

    /// Footprint accounting on a sparse space equals the sum of mapped
    /// ranges under arbitrary heap/mmap churn.
    #[test]
    fn sparse_space_footprint_consistent(ops in arena_ops()) {
        let layout = LayoutBuilder::new()
            .static_bytes(8 * PAGE_SIZE)
            .heap_capacity_bytes(64 * PAGE_SIZE)
            .mmap_capacity_bytes(256 * PAGE_SIZE)
            .build();
        let mut s = SparseSpace::new(layout);
        let mut live: Vec<PageRange> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                ArenaOp::Map(pages) => {
                    if i % 3 == 0 {
                        let _ = s.heap_grow(pages.min(8));
                    } else if let Ok(m) = s.mmap(pages) {
                        live.push(m);
                    }
                }
                ArenaOp::Unmap(i) => {
                    if !live.is_empty() {
                        let m = live.remove(i % live.len());
                        prop_assert!(s.munmap(m).is_ok());
                    } else {
                        let _ = s.heap_shrink(1);
                    }
                }
            }
            let ranges = s.mapped_ranges();
            let total: u64 = ranges.iter().map(|r| r.len).sum();
            prop_assert_eq!(total, s.mapped_pages());
            for w in ranges.windows(2) {
                prop_assert!(!w[0].overlaps(&w[1]));
            }
            for r in &ranges {
                prop_assert!(s.is_mapped(r.start) && s.is_mapped(r.end() - 1));
            }
        }
    }
}
