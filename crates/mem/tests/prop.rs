//! Property-based tests for the memory substrate.
//!
//! The harness is a self-contained seeded generator (SplitMix64): each
//! property runs many randomized op sequences, and a failure prints the
//! case seed so it can be replayed deterministically. No external
//! dependency is needed, which keeps the workspace building offline.

use ickpt_mem::{
    AddressSpace, DirtyBitmap, FlatDirtyBitmap, LayoutBuilder, MmapArea, PageRange, SparseSpace,
    PAGE_SIZE,
};
use std::collections::BTreeSet;

/// Deterministic generator for property cases.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

const CASES: u64 = 48;
const BASE_SEED: u64 = 0x1DC4_2004;

/// A naive reference implementation of a page-set, for checking the
/// word-packed bitmap against.
#[derive(Default)]
struct RefSet(BTreeSet<u64>);

#[derive(Debug, Clone)]
enum BitmapOp {
    Set(u64),
    Clear(u64),
    SetRange(u64, u64),
    ClearRange(u64, u64),
    ClearAll,
    /// Union with a sparse second bitmap (pages listed).
    Union(Vec<u64>),
}

fn bitmap_ops(rng: &mut Rng, pages: u64, n: usize) -> Vec<BitmapOp> {
    (0..n)
        .map(|_| match rng.below(8) {
            0 | 1 => BitmapOp::Set(rng.below(pages)),
            2 => BitmapOp::Clear(rng.below(pages)),
            3 | 4 => {
                let s = rng.below(pages);
                let l = rng.range(1, pages).min(pages - s).max(1);
                BitmapOp::SetRange(s, l)
            }
            5 => {
                let s = rng.below(pages);
                let l = rng.range(1, pages).min(pages - s).max(1);
                BitmapOp::ClearRange(s, l)
            }
            6 => BitmapOp::ClearAll,
            _ => {
                let count = rng.below(12);
                BitmapOp::Union((0..count).map(|_| rng.below(pages)).collect())
            }
        })
        .collect()
}

/// The packed hierarchical bitmap agrees with a BTreeSet under
/// arbitrary op sequences: same count, same membership, same iteration
/// order, same range counts.
#[test]
fn bitmap_matches_reference() {
    let pages = 700u64;
    for case in 0..CASES {
        let mut rng = Rng::new(BASE_SEED ^ case);
        let ops = bitmap_ops(&mut rng, pages, 120);
        let mut bm = DirtyBitmap::new(pages);
        let mut rf = RefSet::default();
        for op in &ops {
            match op {
                BitmapOp::Set(p) => {
                    assert_eq!(bm.set(*p), rf.0.insert(*p), "seed {case} op {op:?}");
                }
                BitmapOp::Clear(p) => {
                    assert_eq!(bm.clear(*p), rf.0.remove(p), "seed {case} op {op:?}");
                }
                BitmapOp::SetRange(s, l) => {
                    let n = bm.set_range(PageRange::new(*s, *l));
                    let newly = (*s..s + l).map(|p| rf.0.insert(p) as u64).sum::<u64>();
                    assert_eq!(n, newly, "seed {case} op {op:?}");
                }
                BitmapOp::ClearRange(s, l) => {
                    let n = bm.clear_range(PageRange::new(*s, *l));
                    let dropped = (*s..s + l).map(|p| rf.0.remove(&p) as u64).sum::<u64>();
                    assert_eq!(n, dropped, "seed {case} op {op:?}");
                }
                BitmapOp::ClearAll => {
                    bm.clear_all();
                    rf.0.clear();
                }
                BitmapOp::Union(list) => {
                    let mut other = DirtyBitmap::new(pages);
                    for p in list {
                        other.set(*p);
                    }
                    bm.union_with(&other);
                    rf.0.extend(list.iter().copied());
                }
            }
            assert_eq!(bm.count(), rf.0.len() as u64, "seed {case}");
        }
        let got: Vec<u64> = bm.iter_set().collect();
        let want: Vec<u64> = rf.0.iter().copied().collect();
        assert_eq!(got, want, "seed {case}");
    }
}

/// The two-level bitmap is observationally equivalent to the flat
/// single-level [`FlatDirtyBitmap`] it replaced: identical return
/// values and identical observable state after every operation. This is
/// the contract that let the hierarchical version slot in without
/// touching any caller.
#[test]
fn hierarchical_equals_flat_reference() {
    // Sizes straddling summary-word boundaries (one summary word covers
    // 4096 pages).
    for pages in [63u64, 64, 700, 4096, 4100, 9000] {
        for case in 0..CASES {
            let mut rng = Rng::new(BASE_SEED ^ (pages << 8) ^ case);
            let ops = bitmap_ops(&mut rng, pages, 90);
            let mut hier = DirtyBitmap::new(pages);
            let mut flat = FlatDirtyBitmap::new(pages);
            for op in &ops {
                match op {
                    BitmapOp::Set(p) => {
                        assert_eq!(hier.set(*p), flat.set(*p), "pages {pages} seed {case}");
                    }
                    BitmapOp::Clear(p) => {
                        assert_eq!(hier.clear(*p), flat.clear(*p), "pages {pages} seed {case}");
                    }
                    BitmapOp::SetRange(s, l) => {
                        let r = PageRange::new(*s, *l);
                        assert_eq!(
                            hier.set_range(r),
                            flat.set_range(r),
                            "pages {pages} seed {case}"
                        );
                    }
                    BitmapOp::ClearRange(s, l) => {
                        let r = PageRange::new(*s, *l);
                        assert_eq!(
                            hier.clear_range(r),
                            flat.clear_range(r),
                            "pages {pages} seed {case}"
                        );
                    }
                    BitmapOp::ClearAll => {
                        hier.clear_all();
                        flat.clear_all();
                    }
                    BitmapOp::Union(list) => {
                        let mut ho = DirtyBitmap::new(pages);
                        let mut fo = FlatDirtyBitmap::new(pages);
                        for p in list {
                            ho.set(*p);
                            fo.set(*p);
                        }
                        hier.union_with(&ho);
                        flat.union_with(&fo);
                    }
                }
                // Observable state must agree at every step.
                assert_eq!(hier.count(), flat.count(), "pages {pages} seed {case}");
                let probe = rng.below(pages);
                assert_eq!(hier.get(probe), flat.get(probe), "pages {pages} seed {case}");
                let s = rng.below(pages);
                let l = rng.below(pages - s + 1);
                let r = PageRange::new(s, l);
                assert_eq!(
                    hier.count_range(r),
                    flat.count_range(r),
                    "pages {pages} seed {case} range {r:?}"
                );
            }
            let hi: Vec<u64> = hier.iter_set().collect();
            let fi: Vec<u64> = flat.iter_set().collect();
            assert_eq!(hi, fi, "pages {pages} seed {case}: iteration order");
            assert_eq!(
                hier.dirty_ranges(),
                flat.dirty_ranges(),
                "pages {pages} seed {case}: run-length encoding"
            );
        }
    }
}

/// dirty_ranges() is a lossless run-length encoding of the set bits.
#[test]
fn dirty_ranges_reconstruct_set() {
    for case in 0..CASES {
        let mut rng = Rng::new(BASE_SEED.wrapping_mul(3) ^ case);
        let mut bm = DirtyBitmap::new(500);
        for op in bitmap_ops(&mut rng, 500, 120) {
            match op {
                BitmapOp::Set(p) => {
                    bm.set(p);
                }
                BitmapOp::Clear(p) => {
                    bm.clear(p);
                }
                BitmapOp::SetRange(s, l) => {
                    bm.set_range(PageRange::new(s, l));
                }
                BitmapOp::ClearRange(s, l) => {
                    bm.clear_range(PageRange::new(s, l));
                }
                BitmapOp::ClearAll => bm.clear_all(),
                BitmapOp::Union(list) => {
                    let mut other = DirtyBitmap::new(500);
                    for p in list {
                        other.set(p);
                    }
                    bm.union_with(&other);
                }
            }
        }
        let mut rebuilt = DirtyBitmap::new(500);
        let ranges = bm.dirty_ranges();
        // Ranges are sorted, non-empty, non-adjacent (maximal runs).
        for w in ranges.windows(2) {
            assert!(w[0].end() < w[1].start, "seed {case}: runs must be maximal and ordered");
        }
        for r in &ranges {
            assert!(r.len > 0, "seed {case}");
            rebuilt.set_range(*r);
        }
        assert_eq!(rebuilt, bm, "seed {case}");
    }
}

/// count_range never disagrees with filtering the iterator.
#[test]
fn count_range_consistent() {
    for case in 0..CASES {
        let mut rng = Rng::new(BASE_SEED.wrapping_mul(5) ^ case);
        let mut bm = DirtyBitmap::new(300);
        for op in bitmap_ops(&mut rng, 300, 90) {
            match op {
                BitmapOp::Set(p) => {
                    bm.set(p);
                }
                BitmapOp::SetRange(s, l) => {
                    bm.set_range(PageRange::new(s, l));
                }
                BitmapOp::Clear(p) => {
                    bm.clear(p);
                }
                BitmapOp::ClearRange(s, l) => {
                    bm.clear_range(PageRange::new(s, l));
                }
                BitmapOp::ClearAll => bm.clear_all(),
                BitmapOp::Union(list) => {
                    let mut other = DirtyBitmap::new(300);
                    for p in list {
                        other.set(p);
                    }
                    bm.union_with(&other);
                }
            }
        }
        let start = rng.below(300);
        let len = rng.below(300 - start + 1);
        let r = PageRange::new(start, len);
        let by_iter = bm.iter_set().filter(|p| r.contains(*p)).count() as u64;
        assert_eq!(bm.count_range(r), by_iter, "seed {case} range {r:?}");
    }
}

#[derive(Debug, Clone)]
enum ArenaOp {
    Map(u64),
    /// Unmap the i-th live mapping (mod live count).
    Unmap(usize),
}

fn arena_ops(rng: &mut Rng, n: usize) -> Vec<ArenaOp> {
    (0..n)
        .map(|_| {
            if rng.below(2) == 0 {
                ArenaOp::Map(rng.range(1, 40))
            } else {
                ArenaOp::Unmap(rng.below(64) as usize)
            }
        })
        .collect()
}

/// The mmap arena never hands out overlapping mappings, never leaks
/// pages, and coalescing keeps the free list consistent with the
/// mapped total.
#[test]
fn mmap_arena_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(BASE_SEED.wrapping_mul(7) ^ case);
        let ops = arena_ops(&mut rng, 200);
        let region = PageRange::new(10, 256);
        let mut arena = MmapArea::new(region);
        let mut live: Vec<PageRange> = Vec::new();
        for op in ops {
            match op {
                ArenaOp::Map(pages) => {
                    if let Ok(m) = arena.map(pages) {
                        assert_eq!(m.len, pages, "seed {case}");
                        assert!(m.start >= region.start && m.end() <= region.end());
                        for l in &live {
                            assert!(!m.overlaps(l), "seed {case}: new mapping overlaps live one");
                        }
                        live.push(m);
                    }
                    // Exhaustion is legal under fragmentation; the
                    // accounting checks below still apply.
                }
                ArenaOp::Unmap(i) => {
                    if !live.is_empty() {
                        let m = live.remove(i % live.len());
                        assert!(arena.unmap(m).is_ok(), "seed {case}");
                    }
                }
            }
            let live_total: u64 = live.iter().map(|r| r.len).sum();
            assert_eq!(arena.mapped_pages(), live_total, "seed {case}");
            assert_eq!(arena.free_pages(), region.len - live_total, "seed {case}");
            assert_eq!(arena.live_count(), live.len(), "seed {case}");
        }
        // Draining everything must coalesce back to one free block.
        for m in live.drain(..) {
            arena.unmap(m).unwrap();
        }
        assert_eq!(arena.mapped_pages(), 0, "seed {case}");
        assert!(arena.free_block_count() <= 1, "seed {case}");
        assert!(
            arena.map(region.len).is_ok(),
            "seed {case}: fully drained arena serves a max request"
        );
    }
}

/// Footprint accounting on a sparse space equals the sum of mapped
/// ranges under arbitrary heap/mmap churn.
#[test]
fn sparse_space_footprint_consistent() {
    for case in 0..CASES {
        let mut rng = Rng::new(BASE_SEED.wrapping_mul(11) ^ case);
        let ops = arena_ops(&mut rng, 200);
        let layout = LayoutBuilder::new()
            .static_bytes(8 * PAGE_SIZE)
            .heap_capacity_bytes(64 * PAGE_SIZE)
            .mmap_capacity_bytes(256 * PAGE_SIZE)
            .build();
        let mut s = SparseSpace::new(layout);
        let mut live: Vec<PageRange> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                ArenaOp::Map(pages) => {
                    if i % 3 == 0 {
                        let _ = s.heap_grow(pages.min(8));
                    } else if let Ok(m) = s.mmap(pages) {
                        live.push(m);
                    }
                }
                ArenaOp::Unmap(i) => {
                    if !live.is_empty() {
                        let m = live.remove(i % live.len());
                        assert!(s.munmap(m).is_ok(), "seed {case}");
                    } else {
                        let _ = s.heap_shrink(1);
                    }
                }
            }
            let ranges = s.mapped_ranges();
            let total: u64 = ranges.iter().map(|r| r.len).sum();
            assert_eq!(total, s.mapped_pages(), "seed {case}");
            for w in ranges.windows(2) {
                assert!(!w[0].overlaps(&w[1]), "seed {case}");
            }
            for r in &ranges {
                assert!(s.is_mapped(r.start) && s.is_mapped(r.end() - 1), "seed {case}");
            }
        }
    }
}
