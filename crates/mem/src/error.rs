//! Error type for address-space operations.

use std::fmt;

/// Errors produced by the simulated memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A `brk`-style request would move the break outside the heap
    /// capacity reserved by the layout.
    HeapExhausted { requested_pages: u64, capacity_pages: u64 },
    /// The mmap arena has no free block large enough.
    MmapExhausted { requested_pages: u64, free_pages: u64 },
    /// `munmap` of a range that is not exactly a previously mapped block
    /// (the model, like the paper's interception layer, tracks whole
    /// mappings).
    BadUnmap { range_start: u64 },
    /// An access referenced a page outside every mapped region.
    Unmapped { page: u64 },
    /// An access referenced a page beyond the layout capacity.
    OutOfBounds { page: u64, capacity: u64 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::HeapExhausted { requested_pages, capacity_pages } => write!(
                f,
                "heap exhausted: requested {requested_pages} pages, capacity {capacity_pages}"
            ),
            MemError::MmapExhausted { requested_pages, free_pages } => write!(
                f,
                "mmap arena exhausted: requested {requested_pages} pages, {free_pages} free"
            ),
            MemError::BadUnmap { range_start } => {
                write!(f, "munmap of unknown mapping at page {range_start}")
            }
            MemError::Unmapped { page } => write!(f, "access to unmapped page {page}"),
            MemError::OutOfBounds { page, capacity } => {
                write!(f, "page {page} beyond address-space capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::Unmapped { page: 7 };
        assert!(e.to_string().contains("unmapped page 7"));
        let e = MemError::HeapExhausted { requested_pages: 10, capacity_pages: 4 };
        assert!(e.to_string().contains("heap exhausted"));
    }
}
