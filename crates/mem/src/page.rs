//! Pages and page-range arithmetic.
//!
//! Everything in the tracker operates at page granularity, exactly like
//! the paper's instrumentation library: the virtual memory system can
//! only write-protect (and therefore detect writes to) whole pages.
//! We fix the page size at 4 KiB; the paper's Itanium-II cluster ran
//! Linux with 4 KiB base pages as well.

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Number of pages needed to hold `bytes` bytes (rounding up).
#[inline]
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// A half-open range of pages `[start, start + len)` within an address
/// space, expressed in page indices (not bytes).
///
/// Page indices are offsets into the tracked data segment of a process,
/// so page 0 is the first page of initialized data (see
/// [`crate::layout::DataLayout`]). Using segment-relative indices keeps
/// dirty bitmaps dense and makes checkpoint records compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page index of the range.
    pub start: u64,
    /// Number of pages in the range.
    pub len: u64,
}

impl PageRange {
    /// Create a range from a start page and a page count.
    #[inline]
    pub const fn new(start: u64, len: u64) -> Self {
        Self { start, len }
    }

    /// Create a range covering `bytes` bytes starting at page `start`.
    #[inline]
    pub const fn from_bytes(start: u64, bytes: u64) -> Self {
        Self { start, len: pages_for_bytes(bytes) }
    }

    /// An empty range at page 0.
    #[inline]
    pub const fn empty() -> Self {
        Self { start: 0, len: 0 }
    }

    /// One past the last page of the range.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether the range contains no pages.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the range in bytes.
    #[inline]
    pub const fn bytes(&self) -> u64 {
        self.len * PAGE_SIZE
    }

    /// Whether `page` falls inside the range.
    #[inline]
    pub const fn contains(&self, page: u64) -> bool {
        page >= self.start && page < self.end()
    }

    /// Whether the two ranges share at least one page.
    #[inline]
    pub const fn overlaps(&self, other: &PageRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// The intersection of two ranges (empty if disjoint).
    #[inline]
    pub fn intersect(&self, other: &PageRange) -> PageRange {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        if end > start {
            PageRange::new(start, end - start)
        } else {
            PageRange::empty()
        }
    }

    /// Whether `other` immediately follows or precedes this range
    /// (used by the mmap arena to coalesce free blocks).
    #[inline]
    pub const fn adjacent(&self, other: &PageRange) -> bool {
        self.end() == other.start || other.end() == self.start
    }

    /// Iterate over the page indices of the range.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end()
    }

    /// Split the range into chunks of at most `chunk` pages, preserving
    /// order. Used by access-pattern generators to emit bounded touch
    /// batches.
    pub fn chunks(&self, chunk: u64) -> impl Iterator<Item = PageRange> + '_ {
        assert!(chunk > 0, "chunk size must be positive");
        let start = self.start;
        let end = self.end();
        (0..self.len.div_ceil(chunk)).map(move |i| {
            let s = start + i * chunk;
            PageRange::new(s, chunk.min(end - s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for_bytes(10 * PAGE_SIZE), 10);
    }

    #[test]
    fn range_basics() {
        let r = PageRange::new(10, 5);
        assert_eq!(r.end(), 15);
        assert_eq!(r.bytes(), 5 * PAGE_SIZE);
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
        assert!(!r.contains(9));
        assert!(!r.is_empty());
        assert!(PageRange::empty().is_empty());
    }

    #[test]
    fn range_from_bytes() {
        let r = PageRange::from_bytes(4, 3 * PAGE_SIZE + 1);
        assert_eq!(r.start, 4);
        assert_eq!(r.len, 4);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = PageRange::new(0, 10);
        let b = PageRange::new(5, 10);
        let c = PageRange::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), PageRange::new(5, 5));
        assert!(a.intersect(&c).is_empty());
        // Intersection is symmetric.
        assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn adjacency() {
        let a = PageRange::new(0, 10);
        let b = PageRange::new(10, 5);
        let c = PageRange::new(16, 2);
        assert!(a.adjacent(&b));
        assert!(b.adjacent(&a));
        assert!(!a.adjacent(&c));
    }

    #[test]
    fn chunk_iteration_covers_range_exactly() {
        let r = PageRange::new(3, 10);
        let chunks: Vec<_> = r.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], PageRange::new(3, 4));
        assert_eq!(chunks[1], PageRange::new(7, 4));
        assert_eq!(chunks[2], PageRange::new(11, 2));
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, r.len);
    }

    #[test]
    fn chunks_of_empty_range() {
        assert_eq!(PageRange::empty().chunks(8).count(), 0);
    }

    #[test]
    fn iter_yields_every_page() {
        let pages: Vec<u64> = PageRange::new(2, 3).iter().collect();
        assert_eq!(pages, vec![2, 3, 4]);
    }
}
