//! Word-packed dirty-page bitmaps with a hierarchical summary level.
//!
//! This is the hot data structure of the write tracker. The paper's
//! instrumentation library records, for each timeslice, the set of pages
//! written ("dirty pages", §4.2). We model page protection and dirty
//! state with one bit per page: bit clear = page is write-protected, bit
//! set = page has faulted once in the current timeslice and is now
//! writable. Resetting the bitmap is the paper's alarm-handler action of
//! re-protecting all data pages.
//!
//! The implementation follows the HPC guidance of keeping the hot path
//! branch-light and allocation-free: all operations work on `u64` words
//! (64 pages at a time) with `count_ones`/`trailing_zeros`.
//!
//! ## Two levels
//!
//! [`DirtyBitmap`] additionally keeps a **summary bitmap** with one bit
//! per 64-page word (so one summary *word* covers 4096 pages = 16 MB).
//! The invariant is strict: a summary bit is set iff its word is
//! nonzero. Iteration ([`DirtyBitmap::iter_set`]), run extraction
//! ([`DirtyBitmap::dirty_ranges`]) and range counting walk the summary
//! and touch only nonzero words, so the sparse bitmaps that dominate
//! small checkpoint timeslices (IWS of a few hundred pages spread over
//! a gigabyte footprint) cost O(set words), not O(footprint). The
//! paper's own data motivates this: Table 3's IWS per timeslice is 1–3
//! orders of magnitude below the footprint.
//!
//! [`FlatDirtyBitmap`] preserves the previous single-level
//! implementation as an executable reference: the property tests prove
//! the two observationally equivalent, and the micro-benches report the
//! hierarchical speedup against it.

use crate::page::PageRange;

const WORD_BITS: u64 = 64;

/// A fixed-capacity hierarchical bitmap with one bit per page.
///
/// ```
/// use ickpt_mem::{DirtyBitmap, PageRange};
///
/// let mut bm = DirtyBitmap::new(256);
/// assert_eq!(bm.set_range(PageRange::new(10, 20)), 20); // 20 faults
/// assert_eq!(bm.set_range(PageRange::new(15, 20)), 5);  // 15 reused
/// assert_eq!(bm.count(), 25);
/// assert_eq!(bm.dirty_ranges(), vec![PageRange::new(10, 25)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBitmap {
    words: Vec<u64>,
    /// One bit per entry of `words`; set iff the word is nonzero.
    summary: Vec<u64>,
    pages: u64,
    /// Cached population count, maintained incrementally so that the
    /// per-timeslice IWS sample is O(1).
    set_count: u64,
}

#[inline]
const fn summary_len(nwords: usize) -> usize {
    nwords.div_ceil(WORD_BITS as usize)
}

impl DirtyBitmap {
    /// Create a bitmap covering `pages` pages, all clear (protected).
    pub fn new(pages: u64) -> Self {
        let nwords = pages.div_ceil(WORD_BITS) as usize;
        Self { words: vec![0; nwords], summary: vec![0; summary_len(nwords)], pages, set_count: 0 }
    }

    /// Number of pages the bitmap covers.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.pages
    }

    /// Number of set (dirty) bits.
    #[inline]
    pub fn count(&self) -> u64 {
        self.set_count
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    #[inline]
    fn summarize(&mut self, w: usize) {
        let mask = 1u64 << (w as u64 % WORD_BITS);
        if self.words[w] != 0 {
            self.summary[w / WORD_BITS as usize] |= mask;
        } else {
            self.summary[w / WORD_BITS as usize] &= !mask;
        }
    }

    /// Test a single page.
    #[inline]
    pub fn get(&self, page: u64) -> bool {
        debug_assert!(page < self.pages, "page {page} out of range {}", self.pages);
        let w = (page / WORD_BITS) as usize;
        let b = page % WORD_BITS;
        (self.words[w] >> b) & 1 == 1
    }

    /// Set a single page; returns `true` if the bit was previously clear
    /// (i.e. this write would have taken a page fault).
    #[inline]
    pub fn set(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages, "page {page} out of range {}", self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        self.words[w] = old | mask;
        self.summary[w / WORD_BITS as usize] |= 1u64 << (w as u64 % WORD_BITS);
        let was_clear = old & mask == 0;
        self.set_count += was_clear as u64;
        was_clear
    }

    /// Clear a single page; returns `true` if the bit was previously set.
    #[inline]
    pub fn clear(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        let new = old & !mask;
        self.words[w] = new;
        if new == 0 {
            self.summary[w / WORD_BITS as usize] &= !(1u64 << (w as u64 % WORD_BITS));
        }
        let was_set = old & mask != 0;
        self.set_count -= was_set as u64;
        was_set
    }

    /// Set every page in `range`; returns the number of bits that were
    /// previously clear (the number of page faults this touch burst
    /// would have produced).
    pub fn set_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages, "range {range:?} out of bitmap capacity {}", self.pages);
        let mut newly = 0u64;
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            let mask = mask_between(first_b, last_b);
            newly += (mask & !self.words[first_w]).count_ones() as u64;
            self.words[first_w] |= mask;
        } else {
            let head = mask_from(first_b);
            newly += (head & !self.words[first_w]).count_ones() as u64;
            self.words[first_w] |= head;
            // Middle words become all-ones; count existing bits only in
            // the words the summary says are nonzero.
            let middle = (last_w - first_w - 1) as u64 * WORD_BITS;
            let mut already = 0u64;
            for w in self.nonzero_words_in(first_w + 1, last_w) {
                already += self.words[w].count_ones() as u64;
            }
            newly += middle - already;
            self.words[first_w + 1..last_w].fill(u64::MAX);
            let tail = mask_to(last_b);
            newly += (tail & !self.words[last_w]).count_ones() as u64;
            self.words[last_w] |= tail;
        }
        self.set_summary_range(first_w, last_w);
        self.set_count += newly;
        newly
    }

    /// Clear every page in `range`; returns the number of bits that were
    /// previously set.
    pub fn clear_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let mut dropped = 0u64;
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            let mask = mask_between(first_b, last_b);
            dropped += (mask & self.words[first_w]).count_ones() as u64;
            self.words[first_w] &= !mask;
            self.summarize(first_w);
        } else {
            let head = mask_from(first_b);
            dropped += (head & self.words[first_w]).count_ones() as u64;
            self.words[first_w] &= !head;
            self.summarize(first_w);
            // Middle words all become zero; only nonzero ones held bits.
            let nonzero: Vec<usize> = self.nonzero_words_in(first_w + 1, last_w).collect();
            for w in nonzero {
                dropped += self.words[w].count_ones() as u64;
                self.words[w] = 0;
            }
            self.clear_summary_range(first_w + 1, last_w);
            let tail = mask_to(last_b);
            dropped += (tail & self.words[last_w]).count_ones() as u64;
            self.words[last_w] &= !tail;
            self.summarize(last_w);
        }
        self.set_count -= dropped;
        dropped
    }

    /// Clear every bit (the alarm handler's "re-protect all pages").
    ///
    /// Walks the summary and zeroes only the words that hold bits, so
    /// re-protecting after a sparse timeslice is O(dirty words).
    pub fn clear_all(&mut self) {
        for j in 0..self.summary.len() {
            let mut bits = self.summary[j];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.words[j * WORD_BITS as usize + b] = 0;
            }
            self.summary[j] = 0;
        }
        self.set_count = 0;
    }

    /// Count the set bits inside `range` without modifying anything.
    pub fn count_range(&self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            return (self.words[first_w] & mask_between(first_b, last_b)).count_ones() as u64;
        }
        let mut n = (self.words[first_w] & mask_from(first_b)).count_ones() as u64;
        for w in self.nonzero_words_in(first_w + 1, last_w) {
            n += self.words[w].count_ones() as u64;
        }
        n + (self.words[last_w] & mask_to(last_b)).count_ones() as u64
    }

    /// OR another bitmap into this one (accumulating an iteration's
    /// working set from per-timeslice deltas). Both must have the same
    /// capacity.
    ///
    /// Touches only the words in which `other` has bits, so folding a
    /// sparse timeslice delta into a large accumulator is O(delta).
    pub fn union_with(&mut self, other: &DirtyBitmap) {
        assert_eq!(self.pages, other.pages, "bitmap capacity mismatch");
        for w in other.nonzero_words_in(0, other.words.len()) {
            let old = self.words[w];
            let new = old | other.words[w];
            self.words[w] = new;
            self.set_count += (new.count_ones() - old.count_ones()) as u64;
        }
        // A union only adds bits: nonzero words stay nonzero.
        for (s, o) in self.summary.iter_mut().zip(&other.summary) {
            *s |= o;
        }
    }

    /// Iterate over the indices of nonzero words in `[from, to)`, in
    /// ascending order, via the summary.
    fn nonzero_words_in(&self, from: usize, to: usize) -> NonzeroWords<'_> {
        NonzeroWords::new(&self.summary, from, to.min(self.words.len()))
    }

    /// Iterate over the indices of set pages in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            nonzero: NonzeroWords::new(&self.summary, 0, self.words.len()),
            word_base: 0,
            current: 0,
        }
    }

    /// Collect set pages into maximal contiguous [`PageRange`]s, in
    /// ascending order. This is what the incremental checkpointer saves.
    ///
    /// Runs are extracted a word at a time with `trailing_zeros`
    /// arithmetic — clean words are skipped entirely through the
    /// summary, and a fully dirty gigabyte costs one iteration per
    /// word, not per page.
    pub fn dirty_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::new();
        // Open run as (start, end-exclusive).
        let mut open: Option<(u64, u64)> = None;
        for w in self.nonzero_words_in(0, self.words.len()) {
            let base = w as u64 * WORD_BITS;
            let mut bits = self.words[w];
            while bits != 0 {
                let start_bit = bits.trailing_zeros() as u64;
                let shifted = bits >> start_bit;
                // Length of the run of consecutive ones at the bottom.
                let run_len = (!shifted).trailing_zeros() as u64;
                let run_start = base + start_bit;
                let run_end = run_start + run_len;
                match open {
                    Some((s, e)) if e == run_start => open = Some((s, run_end)),
                    Some((s, e)) => {
                        out.push(PageRange::new(s, e - s));
                        open = Some((run_start, run_end));
                    }
                    None => open = Some((run_start, run_end)),
                }
                if run_len + start_bit >= WORD_BITS {
                    break;
                }
                bits &= !(((1u64 << run_len) - 1) << start_bit);
            }
        }
        if let Some((s, e)) = open {
            out.push(PageRange::new(s, e - s));
        }
        out
    }

    /// Grow (or shrink) the bitmap to cover `pages` pages. New pages are
    /// clear; on shrink, truncated set bits are removed from the count.
    /// Needed because Sage's data segment grows and shrinks at run time.
    pub fn resize(&mut self, pages: u64) {
        let nwords = pages.div_ceil(WORD_BITS) as usize;
        if pages < self.pages {
            // Drop any set bits past the new end.
            let dropped = self.count_range(PageRange::new(pages, self.pages - pages));
            self.set_count -= dropped;
            self.words.truncate(nwords);
            if !pages.is_multiple_of(WORD_BITS) {
                if let Some(wlast) = self.words.last_mut() {
                    *wlast &= mask_to(pages % WORD_BITS - 1);
                }
            }
            self.summary.truncate(summary_len(nwords));
            // Re-derive the summary bits for the (possibly emptied)
            // trailing words of the last summary word.
            if let Some(last_s) = self.summary.len().checked_sub(1) {
                let from = last_s * WORD_BITS as usize;
                let mut sw = 0u64;
                for (i, w) in self.words[from..].iter().enumerate() {
                    sw |= ((*w != 0) as u64) << i;
                }
                self.summary[last_s] = sw;
            }
        } else {
            self.words.resize(nwords, 0);
            self.summary.resize(summary_len(nwords), 0);
        }
        self.pages = pages;
    }

    /// Total heap bytes used by the bitmap (for overhead accounting).
    pub fn memory_bytes(&self) -> usize {
        (self.words.capacity() + self.summary.capacity()) * std::mem::size_of::<u64>()
    }

    /// Set summary bits for words `first..=last`.
    fn set_summary_range(&mut self, first: usize, last: usize) {
        let (fs, fb) = (first / WORD_BITS as usize, first as u64 % WORD_BITS);
        let (ls, lb) = (last / WORD_BITS as usize, last as u64 % WORD_BITS);
        if fs == ls {
            self.summary[fs] |= mask_between(fb, lb);
        } else {
            self.summary[fs] |= mask_from(fb);
            self.summary[fs + 1..ls].fill(u64::MAX);
            self.summary[ls] |= mask_to(lb);
        }
    }

    /// Clear summary bits for words `from..to` (exclusive end).
    fn clear_summary_range(&mut self, from: usize, to: usize) {
        if from >= to {
            return;
        }
        let (first, last) = (from, to - 1);
        let (fs, fb) = (first / WORD_BITS as usize, first as u64 % WORD_BITS);
        let (ls, lb) = (last / WORD_BITS as usize, last as u64 % WORD_BITS);
        if fs == ls {
            self.summary[fs] &= !mask_between(fb, lb);
        } else {
            self.summary[fs] &= !mask_from(fb);
            self.summary[fs + 1..ls].fill(0);
            self.summary[ls] &= !mask_to(lb);
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut count = 0u64;
        for (w, &word) in self.words.iter().enumerate() {
            count += word.count_ones() as u64;
            let sbit = (self.summary[w / 64] >> (w % 64)) & 1 == 1;
            assert_eq!(sbit, word != 0, "summary bit for word {w} out of sync");
        }
        assert_eq!(count, self.set_count, "cached popcount out of sync");
    }
}

/// Iterator over the indices of nonzero words, driven by the summary.
struct NonzeroWords<'a> {
    summary: &'a [u64],
    /// Index of the summary word `bits` came from.
    sum_idx: usize,
    /// Remaining bits of the current summary word.
    bits: u64,
    /// Exclusive upper bound on word indices.
    to: usize,
}

impl<'a> NonzeroWords<'a> {
    fn new(summary: &'a [u64], from: usize, to: usize) -> Self {
        if from >= to {
            return Self { summary, sum_idx: 0, bits: 0, to: 0 };
        }
        let sum_idx = from / WORD_BITS as usize;
        // Mask off summary bits below `from`.
        let bits = summary.get(sum_idx).copied().unwrap_or(0) & mask_from(from as u64 % WORD_BITS);
        Self { summary, sum_idx, bits, to }
    }
}

impl Iterator for NonzeroWords<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                let w = self.sum_idx * WORD_BITS as usize + b;
                if w >= self.to {
                    self.bits = 0;
                    self.sum_idx = self.summary.len();
                    return None;
                }
                return Some(w);
            }
            self.sum_idx += 1;
            if self.sum_idx * WORD_BITS as usize >= self.to || self.sum_idx >= self.summary.len() {
                return None;
            }
            self.bits = self.summary[self.sum_idx];
        }
    }
}

/// Iterator over set bit indices.
pub struct SetBits<'a> {
    words: &'a [u64],
    nonzero: NonzeroWords<'a>,
    word_base: u64,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                return Some(self.word_base + bit);
            }
            let w = self.nonzero.next()?;
            self.word_base = w as u64 * WORD_BITS;
            self.current = self.words[w];
        }
    }
}

/// The previous single-level bitmap, kept as an executable reference.
///
/// Same observable behaviour as [`DirtyBitmap`] (the property tests in
/// `crates/mem/tests/prop.rs` drive both through arbitrary op sequences
/// and require identical answers); iteration and clearing walk every
/// word. Benchmarks use it as the baseline the hierarchical bitmap is
/// measured against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatDirtyBitmap {
    words: Vec<u64>,
    pages: u64,
    set_count: u64,
}

impl FlatDirtyBitmap {
    /// Create a flat bitmap covering `pages` pages, all clear.
    pub fn new(pages: u64) -> Self {
        let nwords = pages.div_ceil(WORD_BITS) as usize;
        Self { words: vec![0; nwords], pages, set_count: 0 }
    }

    /// Number of pages the bitmap covers.
    pub fn capacity(&self) -> u64 {
        self.pages
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.set_count
    }

    /// Test a single page.
    pub fn get(&self, page: u64) -> bool {
        let w = (page / WORD_BITS) as usize;
        (self.words[w] >> (page % WORD_BITS)) & 1 == 1
    }

    /// Set a single page; returns whether it was clear.
    pub fn set(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        self.words[w] = old | mask;
        let was_clear = old & mask == 0;
        self.set_count += was_clear as u64;
        was_clear
    }

    /// Clear a single page; returns whether it was set.
    pub fn clear(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        self.words[w] = old & !mask;
        let was_set = old & mask != 0;
        self.set_count -= was_set as u64;
        was_set
    }

    /// Set every page in `range`; returns the newly set count.
    pub fn set_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let mut newly = 0u64;
        for page in range.iter() {
            newly += self.set(page) as u64;
        }
        newly
    }

    /// Clear every page in `range`; returns the dropped count.
    pub fn clear_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let mut dropped = 0u64;
        for page in range.iter() {
            dropped += self.clear(page) as u64;
        }
        dropped
    }

    /// Clear every bit by rewriting all words.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.set_count = 0;
    }

    /// Count set bits in `range`.
    pub fn count_range(&self, range: PageRange) -> u64 {
        range.iter().filter(|&p| self.get(p)).count() as u64
    }

    /// OR `other` into `self`.
    pub fn union_with(&mut self, other: &FlatDirtyBitmap) {
        assert_eq!(self.pages, other.pages);
        let mut count = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += a.count_ones() as u64;
        }
        self.set_count = count;
    }

    /// Set pages in ascending order (walks every word).
    pub fn iter_set(&self) -> impl Iterator<Item = u64> + '_ {
        let pages = self.pages;
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    Some(w as u64 * WORD_BITS + b)
                })
            })
            .filter(move |&p| p < pages)
    }

    /// Maximal runs of set pages, in ascending order.
    pub fn dirty_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::new();
        let mut run_start: Option<u64> = None;
        let mut prev = 0u64;
        for page in self.iter_set() {
            match run_start {
                None => run_start = Some(page),
                Some(s) => {
                    if page != prev + 1 {
                        out.push(PageRange::new(s, prev - s + 1));
                        run_start = Some(page);
                    }
                }
            }
            prev = page;
        }
        if let Some(s) = run_start {
            out.push(PageRange::new(s, prev - s + 1));
        }
        out
    }
}

/// Bits `[from, 63]`.
#[inline]
const fn mask_from(from: u64) -> u64 {
    u64::MAX << from
}

/// Bits `[0, to]`.
#[inline]
const fn mask_to(to: u64) -> u64 {
    if to >= 63 {
        u64::MAX
    } else {
        (1u64 << (to + 1)) - 1
    }
}

/// Bits `[from, to]` within one word.
#[inline]
const fn mask_between(from: u64, to: u64) -> u64 {
    mask_from(from) & mask_to(to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut bm = DirtyBitmap::new(200);
        assert!(!bm.get(0));
        assert!(bm.set(0));
        assert!(!bm.set(0), "second set of same page reports no fault");
        assert!(bm.get(0));
        assert!(bm.set(199));
        assert_eq!(bm.count(), 2);
        bm.check_invariants();
    }

    #[test]
    fn clear_single() {
        let mut bm = DirtyBitmap::new(100);
        bm.set(42);
        assert!(bm.clear(42));
        assert!(!bm.clear(42));
        assert_eq!(bm.count(), 0);
        bm.check_invariants();
    }

    #[test]
    fn set_range_within_one_word() {
        let mut bm = DirtyBitmap::new(64);
        assert_eq!(bm.set_range(PageRange::new(3, 5)), 5);
        assert_eq!(bm.count(), 5);
        assert!(bm.get(3) && bm.get(7));
        assert!(!bm.get(2) && !bm.get(8));
        // Overlapping set reports only the newly dirtied pages.
        assert_eq!(bm.set_range(PageRange::new(5, 10)), 7);
        assert_eq!(bm.count(), 12);
        bm.check_invariants();
    }

    #[test]
    fn set_range_spanning_words() {
        let mut bm = DirtyBitmap::new(1000);
        assert_eq!(bm.set_range(PageRange::new(60, 200)), 200);
        assert_eq!(bm.count(), 200);
        assert!(!bm.get(59));
        assert!(bm.get(60));
        assert!(bm.get(259));
        assert!(!bm.get(260));
        bm.check_invariants();
    }

    #[test]
    fn clear_range_spanning_words() {
        let mut bm = DirtyBitmap::new(1000);
        bm.set_range(PageRange::new(0, 1000));
        assert_eq!(bm.clear_range(PageRange::new(100, 500)), 500);
        assert_eq!(bm.count(), 500);
        assert!(bm.get(99));
        assert!(!bm.get(100));
        assert!(!bm.get(599));
        assert!(bm.get(600));
        bm.check_invariants();
    }

    #[test]
    fn count_range_matches_iteration() {
        let mut bm = DirtyBitmap::new(500);
        for p in [0u64, 1, 63, 64, 65, 127, 128, 300, 499] {
            bm.set(p);
        }
        for (start, len) in [(0u64, 500u64), (1, 63), (64, 64), (129, 300), (499, 1)] {
            let r = PageRange::new(start, len);
            let by_iter = bm.iter_set().filter(|p| r.contains(*p)).count() as u64;
            assert_eq!(bm.count_range(r), by_iter, "range {r:?}");
        }
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = DirtyBitmap::new(300);
        bm.set_range(PageRange::new(10, 250));
        bm.clear_all();
        assert_eq!(bm.count(), 0);
        assert!(bm.iter_set().next().is_none());
        bm.check_invariants();
    }

    #[test]
    fn iter_set_ascending() {
        let mut bm = DirtyBitmap::new(200);
        let pages = [5u64, 6, 64, 130, 199];
        for p in pages {
            bm.set(p);
        }
        let got: Vec<u64> = bm.iter_set().collect();
        assert_eq!(got, pages.to_vec());
    }

    #[test]
    fn dirty_ranges_coalesce_runs() {
        let mut bm = DirtyBitmap::new(300);
        bm.set_range(PageRange::new(0, 3));
        bm.set(10);
        bm.set_range(PageRange::new(63, 66)); // crosses a word boundary
        let runs = bm.dirty_ranges();
        assert_eq!(runs, vec![PageRange::new(0, 3), PageRange::new(10, 1), PageRange::new(63, 66)]);
    }

    #[test]
    fn dirty_ranges_full_words_and_boundaries() {
        // Runs that span whole words, summary-word boundaries (4096
        // pages apart), and single trailing bits.
        let mut bm = DirtyBitmap::new(10_000);
        bm.set_range(PageRange::new(0, 64));
        bm.set_range(PageRange::new(64, 64)); // contiguous with previous
        bm.set_range(PageRange::new(4095, 2)); // crosses summary word
        bm.set(9999);
        assert_eq!(
            bm.dirty_ranges(),
            vec![PageRange::new(0, 128), PageRange::new(4095, 2), PageRange::new(9999, 1)]
        );
        bm.check_invariants();
    }

    #[test]
    fn union_accumulates() {
        let mut a = DirtyBitmap::new(128);
        let mut b = DirtyBitmap::new(128);
        a.set_range(PageRange::new(0, 10));
        b.set_range(PageRange::new(5, 10));
        a.union_with(&b);
        assert_eq!(a.count(), 15);
        a.check_invariants();
    }

    #[test]
    fn union_sparse_far_apart() {
        // Bits in different summary words on both sides.
        let mut a = DirtyBitmap::new(1 << 20);
        let mut b = DirtyBitmap::new(1 << 20);
        a.set(0);
        a.set(500_000);
        b.set(1_000_000);
        b.set(500_000);
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![0, 500_000, 1_000_000]);
        a.check_invariants();
    }

    #[test]
    fn resize_grow_preserves_and_shrink_drops() {
        let mut bm = DirtyBitmap::new(70);
        bm.set(0);
        bm.set(69);
        bm.resize(200);
        assert_eq!(bm.count(), 2);
        assert!(bm.get(69));
        bm.set(150);
        bm.resize(100);
        assert_eq!(bm.count(), 2, "bit 150 dropped by shrink");
        bm.resize(40);
        assert_eq!(bm.count(), 1, "bit 69 dropped");
        assert!(bm.get(0));
        bm.check_invariants();
    }

    #[test]
    fn resize_to_word_boundary() {
        let mut bm = DirtyBitmap::new(128);
        bm.set(127);
        bm.set(64);
        bm.resize(64);
        assert_eq!(bm.count(), 0);
        bm.resize(128);
        assert!(!bm.get(64), "regrown pages start clear");
        bm.check_invariants();
    }

    #[test]
    fn resize_across_summary_words() {
        // > 4096 pages so the summary itself has multiple words.
        let mut bm = DirtyBitmap::new(20_000);
        bm.set(19_999);
        bm.set(5000);
        bm.set(3);
        bm.resize(4097);
        assert_eq!(bm.count(), 1);
        bm.check_invariants();
        bm.resize(40_000);
        assert!(bm.get(3));
        assert!(!bm.get(5000));
        bm.set(39_999);
        assert_eq!(bm.count(), 2);
        bm.check_invariants();
    }

    #[test]
    fn full_word_masks() {
        let mut bm = DirtyBitmap::new(64);
        assert_eq!(bm.set_range(PageRange::new(0, 64)), 64);
        assert_eq!(bm.count(), 64);
        assert_eq!(bm.clear_range(PageRange::new(0, 64)), 64);
        assert_eq!(bm.count(), 0);
        bm.check_invariants();
    }

    #[test]
    fn large_sparse_iteration_touches_only_set_words() {
        // 1 GB footprint, 100 dirty pages: iteration must be exact.
        let pages = 262_144u64;
        let mut bm = DirtyBitmap::new(pages);
        let set: Vec<u64> = (0..100).map(|i| i * 2621 + 7).collect();
        for &p in &set {
            bm.set(p);
        }
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), set);
        assert_eq!(bm.dirty_ranges().len(), 100);
        bm.check_invariants();
    }
}
