//! Word-packed dirty-page bitmaps.
//!
//! This is the hot data structure of the write tracker. The paper's
//! instrumentation library records, for each timeslice, the set of pages
//! written ("dirty pages", §4.2). We model page protection and dirty
//! state with one bit per page: bit clear = page is write-protected, bit
//! set = page has faulted once in the current timeslice and is now
//! writable. Resetting the bitmap is the paper's alarm-handler action of
//! re-protecting all data pages.
//!
//! The implementation follows the HPC guidance of keeping the hot path
//! branch-light and allocation-free: all operations work on `u64` words
//! (64 pages at a time) with `count_ones`/`trailing_zeros`.

use crate::page::PageRange;

const WORD_BITS: u64 = 64;

/// A fixed-capacity bitmap with one bit per page.
///
/// ```
/// use ickpt_mem::{DirtyBitmap, PageRange};
///
/// let mut bm = DirtyBitmap::new(256);
/// assert_eq!(bm.set_range(PageRange::new(10, 20)), 20); // 20 faults
/// assert_eq!(bm.set_range(PageRange::new(15, 20)), 5);  // 15 reused
/// assert_eq!(bm.count(), 25);
/// assert_eq!(bm.dirty_ranges(), vec![PageRange::new(10, 25)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBitmap {
    words: Vec<u64>,
    pages: u64,
    /// Cached population count, maintained incrementally so that the
    /// per-timeslice IWS sample is O(1).
    set_count: u64,
}

impl DirtyBitmap {
    /// Create a bitmap covering `pages` pages, all clear (protected).
    pub fn new(pages: u64) -> Self {
        let nwords = pages.div_ceil(WORD_BITS) as usize;
        Self { words: vec![0; nwords], pages, set_count: 0 }
    }

    /// Number of pages the bitmap covers.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.pages
    }

    /// Number of set (dirty) bits.
    #[inline]
    pub fn count(&self) -> u64 {
        self.set_count
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// Test a single page.
    #[inline]
    pub fn get(&self, page: u64) -> bool {
        debug_assert!(page < self.pages, "page {page} out of range {}", self.pages);
        let w = (page / WORD_BITS) as usize;
        let b = page % WORD_BITS;
        (self.words[w] >> b) & 1 == 1
    }

    /// Set a single page; returns `true` if the bit was previously clear
    /// (i.e. this write would have taken a page fault).
    #[inline]
    pub fn set(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages, "page {page} out of range {}", self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        self.words[w] = old | mask;
        let was_clear = old & mask == 0;
        self.set_count += was_clear as u64;
        was_clear
    }

    /// Clear a single page; returns `true` if the bit was previously set.
    #[inline]
    pub fn clear(&mut self, page: u64) -> bool {
        debug_assert!(page < self.pages);
        let w = (page / WORD_BITS) as usize;
        let mask = 1u64 << (page % WORD_BITS);
        let old = self.words[w];
        self.words[w] = old & !mask;
        let was_set = old & mask != 0;
        self.set_count -= was_set as u64;
        was_set
    }

    /// Set every page in `range`; returns the number of bits that were
    /// previously clear (the number of page faults this touch burst
    /// would have produced).
    pub fn set_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages, "range {range:?} out of bitmap capacity {}", self.pages);
        let mut newly = 0u64;
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            let mask = mask_between(first_b, last_b);
            newly += (mask & !self.words[first_w]).count_ones() as u64;
            self.words[first_w] |= mask;
        } else {
            let head = mask_from(first_b);
            newly += (head & !self.words[first_w]).count_ones() as u64;
            self.words[first_w] |= head;
            for w in &mut self.words[first_w + 1..last_w] {
                newly += w.count_zeros() as u64;
                *w = u64::MAX;
            }
            let tail = mask_to(last_b);
            newly += (tail & !self.words[last_w]).count_ones() as u64;
            self.words[last_w] |= tail;
        }
        self.set_count += newly;
        newly
    }

    /// Clear every page in `range`; returns the number of bits that were
    /// previously set.
    pub fn clear_range(&mut self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let mut dropped = 0u64;
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            let mask = mask_between(first_b, last_b);
            dropped += (mask & self.words[first_w]).count_ones() as u64;
            self.words[first_w] &= !mask;
        } else {
            let head = mask_from(first_b);
            dropped += (head & self.words[first_w]).count_ones() as u64;
            self.words[first_w] &= !head;
            for w in &mut self.words[first_w + 1..last_w] {
                dropped += w.count_ones() as u64;
                *w = 0;
            }
            let tail = mask_to(last_b);
            dropped += (tail & self.words[last_w]).count_ones() as u64;
            self.words[last_w] &= !tail;
        }
        self.set_count -= dropped;
        dropped
    }

    /// Clear every bit (the alarm handler's "re-protect all pages").
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.set_count = 0;
    }

    /// Count the set bits inside `range` without modifying anything.
    pub fn count_range(&self, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        assert!(range.end() <= self.pages);
        let (first_w, first_b) = ((range.start / WORD_BITS) as usize, range.start % WORD_BITS);
        let last = range.end() - 1;
        let (last_w, last_b) = ((last / WORD_BITS) as usize, last % WORD_BITS);
        if first_w == last_w {
            return (self.words[first_w] & mask_between(first_b, last_b)).count_ones() as u64;
        }
        let mut n = (self.words[first_w] & mask_from(first_b)).count_ones() as u64;
        for w in &self.words[first_w + 1..last_w] {
            n += w.count_ones() as u64;
        }
        n + (self.words[last_w] & mask_to(last_b)).count_ones() as u64
    }

    /// OR another bitmap into this one (accumulating an iteration's
    /// working set from per-timeslice deltas). Both must have the same
    /// capacity.
    pub fn union_with(&mut self, other: &DirtyBitmap) {
        assert_eq!(self.pages, other.pages, "bitmap capacity mismatch");
        let mut count = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += a.count_ones() as u64;
        }
        self.set_count = count;
    }

    /// Iterate over the indices of set pages in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0), limit: self.pages }
    }

    /// Collect set pages into maximal contiguous [`PageRange`]s, in
    /// ascending order. This is what the incremental checkpointer saves.
    pub fn dirty_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::new();
        let mut run_start: Option<u64> = None;
        let mut prev = 0u64;
        for page in self.iter_set() {
            match run_start {
                None => run_start = Some(page),
                Some(s) => {
                    if page != prev + 1 {
                        out.push(PageRange::new(s, prev - s + 1));
                        run_start = Some(page);
                    }
                }
            }
            prev = page;
        }
        if let Some(s) = run_start {
            out.push(PageRange::new(s, prev - s + 1));
        }
        out
    }

    /// Grow (or shrink) the bitmap to cover `pages` pages. New pages are
    /// clear; on shrink, truncated set bits are removed from the count.
    /// Needed because Sage's data segment grows and shrinks at run time.
    pub fn resize(&mut self, pages: u64) {
        let nwords = pages.div_ceil(WORD_BITS) as usize;
        if pages < self.pages {
            // Drop any set bits past the new end.
            let dropped = self.count_range(PageRange::new(pages, self.pages - pages));
            self.set_count -= dropped;
            self.words.truncate(nwords);
            if !pages.is_multiple_of(WORD_BITS) {
                if let Some(wlast) = self.words.last_mut() {
                    *wlast &= mask_to(pages % WORD_BITS - 1);
                }
            }
        } else {
            self.words.resize(nwords, 0);
        }
        self.pages = pages;
    }

    /// Total heap bytes used by the bitmap (for overhead accounting).
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Iterator over set bit indices.
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    limit: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                let page = self.word_idx as u64 * WORD_BITS + bit;
                if page < self.limit {
                    return Some(page);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Bits `[from, 63]`.
#[inline]
const fn mask_from(from: u64) -> u64 {
    u64::MAX << from
}

/// Bits `[0, to]`.
#[inline]
const fn mask_to(to: u64) -> u64 {
    if to >= 63 {
        u64::MAX
    } else {
        (1u64 << (to + 1)) - 1
    }
}

/// Bits `[from, to]` within one word.
#[inline]
const fn mask_between(from: u64, to: u64) -> u64 {
    mask_from(from) & mask_to(to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut bm = DirtyBitmap::new(200);
        assert!(!bm.get(0));
        assert!(bm.set(0));
        assert!(!bm.set(0), "second set of same page reports no fault");
        assert!(bm.get(0));
        assert!(bm.set(199));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn clear_single() {
        let mut bm = DirtyBitmap::new(100);
        bm.set(42);
        assert!(bm.clear(42));
        assert!(!bm.clear(42));
        assert_eq!(bm.count(), 0);
    }

    #[test]
    fn set_range_within_one_word() {
        let mut bm = DirtyBitmap::new(64);
        assert_eq!(bm.set_range(PageRange::new(3, 5)), 5);
        assert_eq!(bm.count(), 5);
        assert!(bm.get(3) && bm.get(7));
        assert!(!bm.get(2) && !bm.get(8));
        // Overlapping set reports only the newly dirtied pages.
        assert_eq!(bm.set_range(PageRange::new(5, 10)), 7);
        assert_eq!(bm.count(), 12);
    }

    #[test]
    fn set_range_spanning_words() {
        let mut bm = DirtyBitmap::new(1000);
        assert_eq!(bm.set_range(PageRange::new(60, 200)), 200);
        assert_eq!(bm.count(), 200);
        assert!(!bm.get(59));
        assert!(bm.get(60));
        assert!(bm.get(259));
        assert!(!bm.get(260));
    }

    #[test]
    fn clear_range_spanning_words() {
        let mut bm = DirtyBitmap::new(1000);
        bm.set_range(PageRange::new(0, 1000));
        assert_eq!(bm.clear_range(PageRange::new(100, 500)), 500);
        assert_eq!(bm.count(), 500);
        assert!(bm.get(99));
        assert!(!bm.get(100));
        assert!(!bm.get(599));
        assert!(bm.get(600));
    }

    #[test]
    fn count_range_matches_iteration() {
        let mut bm = DirtyBitmap::new(500);
        for p in [0u64, 1, 63, 64, 65, 127, 128, 300, 499] {
            bm.set(p);
        }
        for (start, len) in [(0u64, 500u64), (1, 63), (64, 64), (129, 300), (499, 1)] {
            let r = PageRange::new(start, len);
            let by_iter = bm.iter_set().filter(|p| r.contains(*p)).count() as u64;
            assert_eq!(bm.count_range(r), by_iter, "range {r:?}");
        }
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = DirtyBitmap::new(300);
        bm.set_range(PageRange::new(10, 250));
        bm.clear_all();
        assert_eq!(bm.count(), 0);
        assert!(bm.iter_set().next().is_none());
    }

    #[test]
    fn iter_set_ascending() {
        let mut bm = DirtyBitmap::new(200);
        let pages = [5u64, 6, 64, 130, 199];
        for p in pages {
            bm.set(p);
        }
        let got: Vec<u64> = bm.iter_set().collect();
        assert_eq!(got, pages.to_vec());
    }

    #[test]
    fn dirty_ranges_coalesce_runs() {
        let mut bm = DirtyBitmap::new(300);
        bm.set_range(PageRange::new(0, 3));
        bm.set(10);
        bm.set_range(PageRange::new(63, 66)); // crosses a word boundary
        let runs = bm.dirty_ranges();
        assert_eq!(
            runs,
            vec![PageRange::new(0, 3), PageRange::new(10, 1), PageRange::new(63, 66)]
        );
    }

    #[test]
    fn union_accumulates() {
        let mut a = DirtyBitmap::new(128);
        let mut b = DirtyBitmap::new(128);
        a.set_range(PageRange::new(0, 10));
        b.set_range(PageRange::new(5, 10));
        a.union_with(&b);
        assert_eq!(a.count(), 15);
    }

    #[test]
    fn resize_grow_preserves_and_shrink_drops() {
        let mut bm = DirtyBitmap::new(70);
        bm.set(0);
        bm.set(69);
        bm.resize(200);
        assert_eq!(bm.count(), 2);
        assert!(bm.get(69));
        bm.set(150);
        bm.resize(100);
        assert_eq!(bm.count(), 2, "bit 150 dropped by shrink");
        bm.resize(40);
        assert_eq!(bm.count(), 1, "bit 69 dropped");
        assert!(bm.get(0));
    }

    #[test]
    fn resize_to_word_boundary() {
        let mut bm = DirtyBitmap::new(128);
        bm.set(127);
        bm.set(64);
        bm.resize(64);
        assert_eq!(bm.count(), 0);
        bm.resize(128);
        assert!(!bm.get(64), "regrown pages start clear");
    }

    #[test]
    fn full_word_masks() {
        let mut bm = DirtyBitmap::new(64);
        assert_eq!(bm.set_range(PageRange::new(0, 64)), 64);
        assert_eq!(bm.count(), 64);
        assert_eq!(bm.clear_range(PageRange::new(0, 64)), 64);
        assert_eq!(bm.count(), 0);
    }
}
