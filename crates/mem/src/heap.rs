//! `brk`/`sbrk` heap emulation.
//!
//! The Intel Fortran77 compiler used by the paper's workloads allocates
//! dynamic memory on the heap via `brk`/`sbrk`; Fortran90 (Sage) uses
//! both the heap and `mmap` (§4.1). The tracker needs to know the heap
//! break at each alarm so it reports only pages belonging to the
//! *current* memory size (§4.2) — pages above the break are excluded
//! from checkpoints (memory exclusion, [Plank et al. 1999]).

use crate::error::MemError;
use crate::page::PageRange;

/// A `brk`-style heap confined to the layout's heap region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heap {
    region: PageRange,
    /// Current break, in pages from `region.start` (0 = empty heap).
    brk_pages: u64,
    /// High-water mark, in pages.
    peak_pages: u64,
}

impl Heap {
    /// An empty heap within `region`.
    pub fn new(region: PageRange) -> Self {
        Self { region, brk_pages: 0, peak_pages: 0 }
    }

    /// The heap's maximum extent.
    #[inline]
    pub fn region(&self) -> PageRange {
        self.region
    }

    /// Currently mapped heap pages (from the region start to the break).
    #[inline]
    pub fn mapped(&self) -> PageRange {
        PageRange::new(self.region.start, self.brk_pages)
    }

    /// Current size in pages.
    #[inline]
    pub fn size_pages(&self) -> u64 {
        self.brk_pages
    }

    /// High-water mark in pages.
    #[inline]
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    /// Grow the heap by `pages` pages (`sbrk(+n)`); returns the newly
    /// mapped range.
    pub fn grow(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let new_brk = self.brk_pages + pages;
        if new_brk > self.region.len {
            return Err(MemError::HeapExhausted {
                requested_pages: new_brk,
                capacity_pages: self.region.len,
            });
        }
        let added = PageRange::new(self.region.start + self.brk_pages, pages);
        self.brk_pages = new_brk;
        self.peak_pages = self.peak_pages.max(new_brk);
        Ok(added)
    }

    /// Shrink the heap by `pages` pages (`sbrk(-n)`); returns the
    /// now-unmapped range. Shrinking below zero is clamped like a real
    /// `brk` call that would fail: it is reported as an error.
    pub fn shrink(&mut self, pages: u64) -> Result<PageRange, MemError> {
        if pages > self.brk_pages {
            return Err(MemError::HeapExhausted {
                requested_pages: pages,
                capacity_pages: self.brk_pages,
            });
        }
        self.brk_pages -= pages;
        Ok(PageRange::new(self.region.start + self.brk_pages, pages))
    }

    /// Set the break to an absolute size in pages (`brk`); returns the
    /// range that changed state (mapped on grow, unmapped on shrink)
    /// along with whether it grew.
    pub fn set_size(&mut self, pages: u64) -> Result<(PageRange, bool), MemError> {
        if pages > self.brk_pages {
            Ok((self.grow(pages - self.brk_pages)?, true))
        } else {
            Ok((self.shrink(self.brk_pages - pages)?, false))
        }
    }

    /// Whether `page` is currently mapped heap memory.
    #[inline]
    pub fn is_mapped(&self, page: u64) -> bool {
        self.mapped().contains(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(PageRange::new(100, 50))
    }

    #[test]
    fn grow_maps_pages_in_order() {
        let mut h = heap();
        let a = h.grow(10).unwrap();
        assert_eq!(a, PageRange::new(100, 10));
        let b = h.grow(5).unwrap();
        assert_eq!(b, PageRange::new(110, 5));
        assert_eq!(h.size_pages(), 15);
        assert!(h.is_mapped(114));
        assert!(!h.is_mapped(115));
    }

    #[test]
    fn grow_past_capacity_fails() {
        let mut h = heap();
        h.grow(50).unwrap();
        assert!(matches!(h.grow(1), Err(MemError::HeapExhausted { .. })));
        assert_eq!(h.size_pages(), 50, "failed grow leaves state unchanged");
    }

    #[test]
    fn shrink_unmaps_top() {
        let mut h = heap();
        h.grow(20).unwrap();
        let freed = h.shrink(5).unwrap();
        assert_eq!(freed, PageRange::new(115, 5));
        assert_eq!(h.size_pages(), 15);
        assert_eq!(h.peak_pages(), 20, "peak is a high-water mark");
    }

    #[test]
    fn shrink_below_zero_fails() {
        let mut h = heap();
        h.grow(3).unwrap();
        assert!(h.shrink(4).is_err());
        assert_eq!(h.size_pages(), 3);
    }

    #[test]
    fn set_size_both_directions() {
        let mut h = heap();
        let (r, grew) = h.set_size(30).unwrap();
        assert!(grew);
        assert_eq!(r.len, 30);
        let (r, grew) = h.set_size(12).unwrap();
        assert!(!grew);
        assert_eq!(r, PageRange::new(112, 18));
        assert_eq!(h.size_pages(), 12);
    }
}
