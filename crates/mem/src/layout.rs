//! Data-segment layout of a simulated process.
//!
//! §4.1 of the paper describes the Itanium-II / Linux layout: initialized
//! and uninitialized data follow the text segment, then the heap grows
//! toward higher addresses (its top is found with `sbrk`), `mmap`'ed
//! regions are allocated dynamically, and the stack starts at a fixed
//! address growing down. The instrumentation library tracks only the
//! *data* memory (data + BSS + heap + mmap) because it is the dominant
//! part of process state, and the stack cannot be protected anyway.
//!
//! We model the tracked data segment as a single dense page-index space:
//!
//! ```text
//!   page 0                                                   capacity
//!   |  static data + BSS | heap (brk area) | mmap arena      |
//! ```
//!
//! Dense indices keep the tracker's bitmaps compact regardless of where
//! a real kernel would scatter the mappings.

use crate::page::{pages_for_bytes, PageRange};

/// The fixed page-index layout of a process's tracked data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLayout {
    /// Static data + BSS: mapped for the whole process lifetime.
    pub static_data: PageRange,
    /// Maximum extent of the `brk` heap.
    pub heap: PageRange,
    /// Arena from which `mmap` blocks are carved.
    pub mmap: PageRange,
}

impl DataLayout {
    /// Total page capacity of the tracked segment.
    #[inline]
    pub fn capacity_pages(&self) -> u64 {
        self.static_data.len + self.heap.len + self.mmap.len
    }

    /// Total byte capacity of the tracked segment.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages() * crate::page::PAGE_SIZE
    }

    /// The region kind a given page belongs to, or `None` if the page is
    /// outside the layout.
    pub fn region_of(&self, page: u64) -> Option<crate::space::RegionKind> {
        use crate::space::RegionKind;
        if self.static_data.contains(page) {
            Some(RegionKind::StaticData)
        } else if self.heap.contains(page) {
            Some(RegionKind::Heap)
        } else if self.mmap.contains(page) {
            Some(RegionKind::Mmap)
        } else {
            None
        }
    }
}

/// Builder for [`DataLayout`], sized in bytes for convenience.
///
/// The defaults give each dynamic area headroom above the requested
/// size, mirroring how a real address space leaves room for the heap
/// and mmap areas to grow.
#[derive(Debug, Clone)]
pub struct LayoutBuilder {
    static_bytes: u64,
    heap_capacity_bytes: u64,
    mmap_capacity_bytes: u64,
}

impl Default for LayoutBuilder {
    fn default() -> Self {
        Self {
            static_bytes: 4 << 20,         // 4 MiB of static data
            heap_capacity_bytes: 64 << 20, // 64 MiB heap headroom
            mmap_capacity_bytes: 64 << 20, // 64 MiB mmap headroom
        }
    }
}

impl LayoutBuilder {
    /// Start from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size of the always-mapped static data + BSS area.
    pub fn static_bytes(mut self, bytes: u64) -> Self {
        self.static_bytes = bytes;
        self
    }

    /// Maximum size the `brk` heap may reach.
    pub fn heap_capacity_bytes(mut self, bytes: u64) -> Self {
        self.heap_capacity_bytes = bytes;
        self
    }

    /// Maximum total size of concurrently live `mmap` blocks.
    pub fn mmap_capacity_bytes(mut self, bytes: u64) -> Self {
        self.mmap_capacity_bytes = bytes;
        self
    }

    /// Finalize the layout.
    pub fn build(self) -> DataLayout {
        let static_pages = pages_for_bytes(self.static_bytes);
        let heap_pages = pages_for_bytes(self.heap_capacity_bytes);
        let mmap_pages = pages_for_bytes(self.mmap_capacity_bytes);
        DataLayout {
            static_data: PageRange::new(0, static_pages),
            heap: PageRange::new(static_pages, heap_pages),
            mmap: PageRange::new(static_pages + heap_pages, mmap_pages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::space::RegionKind;

    #[test]
    fn regions_are_contiguous_and_ordered() {
        let l = LayoutBuilder::new()
            .static_bytes(8 * PAGE_SIZE)
            .heap_capacity_bytes(16 * PAGE_SIZE)
            .mmap_capacity_bytes(32 * PAGE_SIZE)
            .build();
        assert_eq!(l.static_data, PageRange::new(0, 8));
        assert_eq!(l.heap, PageRange::new(8, 16));
        assert_eq!(l.mmap, PageRange::new(24, 32));
        assert_eq!(l.capacity_pages(), 56);
        assert_eq!(l.capacity_bytes(), 56 * PAGE_SIZE);
    }

    #[test]
    fn region_of_maps_every_page() {
        let l = LayoutBuilder::new()
            .static_bytes(PAGE_SIZE)
            .heap_capacity_bytes(PAGE_SIZE)
            .mmap_capacity_bytes(PAGE_SIZE)
            .build();
        assert_eq!(l.region_of(0), Some(RegionKind::StaticData));
        assert_eq!(l.region_of(1), Some(RegionKind::Heap));
        assert_eq!(l.region_of(2), Some(RegionKind::Mmap));
        assert_eq!(l.region_of(3), None);
    }

    #[test]
    fn byte_sizes_round_up_to_pages() {
        let l = LayoutBuilder::new()
            .static_bytes(PAGE_SIZE + 1)
            .heap_capacity_bytes(1)
            .mmap_capacity_bytes(0)
            .build();
        assert_eq!(l.static_data.len, 2);
        assert_eq!(l.heap.len, 1);
        assert_eq!(l.mmap.len, 0);
    }

    #[test]
    fn default_layout_is_nonempty() {
        let l = LayoutBuilder::new().build();
        assert!(l.capacity_pages() > 0);
        assert!(l.heap.len > 0 && l.mmap.len > 0);
    }
}
