//! Address spaces: mapping state plus (optionally) page contents.
//!
//! Two implementations share one mapping model:
//!
//! * [`SparseSpace`] records *which* pages are mapped but stores no
//!   contents. The paper's characterization experiments only need the
//!   mapping metadata and dirty bits, so a 64-rank Sage-1000MB run costs
//!   kilobytes per rank instead of gigabytes.
//! * [`BackedSpace`] additionally stores real page contents in a flat
//!   arena, which is what the checkpoint/restore machinery operates on
//!   in correctness tests and the fault-tolerance examples.

use crate::error::MemError;
use crate::heap::Heap;
use crate::layout::DataLayout;
use crate::mmap_area::MmapArea;
use crate::page::{PageRange, PAGE_SIZE};

/// Which area of the data segment a page belongs to (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Initialized data + BSS (always mapped).
    StaticData,
    /// `brk`/`sbrk` heap.
    Heap,
    /// `mmap`'ed blocks.
    Mmap,
}

/// Mapping state common to both space implementations.
#[derive(Debug, Clone)]
struct MappingState {
    layout: DataLayout,
    heap: Heap,
    mmap: MmapArea,
}

impl MappingState {
    fn new(layout: DataLayout) -> Self {
        Self { layout, heap: Heap::new(layout.heap), mmap: MmapArea::new(layout.mmap) }
    }

    fn is_mapped(&self, page: u64) -> bool {
        match self.layout.region_of(page) {
            Some(RegionKind::StaticData) => true,
            Some(RegionKind::Heap) => self.heap.is_mapped(page),
            Some(RegionKind::Mmap) => self.mmap.is_mapped(page),
            None => false,
        }
    }

    fn mapped_pages(&self) -> u64 {
        self.layout.static_data.len + self.heap.size_pages() + self.mmap.mapped_pages()
    }

    fn mapped_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::with_capacity(2 + self.mmap.live_count());
        if !self.layout.static_data.is_empty() {
            out.push(self.layout.static_data);
        }
        let heap = self.heap.mapped();
        if !heap.is_empty() {
            out.push(heap);
        }
        out.extend(self.mmap.live_mappings());
        out
    }
}

/// Common behaviour of simulated address spaces.
///
/// All page arguments are dense segment-relative indices (see
/// [`crate::layout`]).
pub trait AddressSpace {
    /// The fixed layout of the tracked segment.
    fn layout(&self) -> &DataLayout;

    /// Whether `page` is currently mapped.
    fn is_mapped(&self, page: u64) -> bool;

    /// Current footprint in pages (static + heap + live mmap).
    fn mapped_pages(&self) -> u64;

    /// Current footprint in bytes.
    fn footprint_bytes(&self) -> u64 {
        self.mapped_pages() * PAGE_SIZE
    }

    /// Live mapped ranges in address order.
    fn mapped_ranges(&self) -> Vec<PageRange>;

    /// Grow the heap (`sbrk(+n)`); returns the newly mapped range.
    fn heap_grow(&mut self, pages: u64) -> Result<PageRange, MemError>;

    /// Shrink the heap (`sbrk(-n)`); returns the unmapped range.
    fn heap_shrink(&mut self, pages: u64) -> Result<PageRange, MemError>;

    /// Current heap size in pages.
    fn heap_pages(&self) -> u64;

    /// Map an mmap block; returns the mapping.
    fn mmap(&mut self, pages: u64) -> Result<PageRange, MemError>;

    /// Unmap an mmap block previously returned by [`AddressSpace::mmap`].
    fn munmap(&mut self, range: PageRange) -> Result<(), MemError>;
}

/// Metadata-only address space for large-footprint characterization.
#[derive(Debug, Clone)]
pub struct SparseSpace {
    state: MappingState,
}

impl SparseSpace {
    /// Create a sparse space over `layout` with an empty heap and mmap
    /// area.
    pub fn new(layout: DataLayout) -> Self {
        Self { state: MappingState::new(layout) }
    }

    /// Peak footprint observed so far, in pages.
    pub fn peak_pages(&self) -> u64 {
        self.state.layout.static_data.len
            + self.state.heap.peak_pages()
            + self.state.mmap.peak_pages()
    }
}

impl AddressSpace for SparseSpace {
    fn layout(&self) -> &DataLayout {
        &self.state.layout
    }

    fn is_mapped(&self, page: u64) -> bool {
        self.state.is_mapped(page)
    }

    fn mapped_pages(&self) -> u64 {
        self.state.mapped_pages()
    }

    fn mapped_ranges(&self) -> Vec<PageRange> {
        self.state.mapped_ranges()
    }

    fn heap_grow(&mut self, pages: u64) -> Result<PageRange, MemError> {
        self.state.heap.grow(pages)
    }

    fn heap_shrink(&mut self, pages: u64) -> Result<PageRange, MemError> {
        self.state.heap.shrink(pages)
    }

    fn heap_pages(&self) -> u64 {
        self.state.heap.size_pages()
    }

    fn mmap(&mut self, pages: u64) -> Result<PageRange, MemError> {
        self.state.mmap.map(pages)
    }

    fn munmap(&mut self, range: PageRange) -> Result<(), MemError> {
        self.state.mmap.unmap(range)
    }
}

/// Read access to page contents (implemented by [`BackedSpace`]; the
/// checkpoint writer is generic over this).
pub trait PageSource {
    /// The page's 4 KiB of content, or `None` if unmapped.
    fn read_page(&self, page: u64) -> Option<&[u8]>;
}

/// Write access to page contents (used by restore).
pub trait PageSink {
    /// Overwrite the content of a mapped page.
    fn write_page_data(&mut self, page: u64, data: &[u8]) -> Result<(), MemError>;
}

/// SplitMix64 finalizer, the deterministic scrambler behind page
/// classing and versioned content streams.
#[inline(always)]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a versioned page touch materializes bytes — the content model
/// backed cluster runs write through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteProfile {
    /// Every touch rewrites the whole page with version-derived bytes:
    /// the dirty-page floor, where content-level dedup can never win.
    #[default]
    Uniform,
    /// Scientific-code mix: per page (classed by a hash of its
    /// address), 3/8 rewrite fully each version, 3/8 update only a few
    /// 256-byte blocks, and 2/8 store the same values back — the dirty
    /// bit fires but the bytes never change. Models the silent-store
    /// and partial-update behaviour that lets effective IB drop below
    /// the dirty-page floor.
    Scientific,
}

/// Address space with real page contents, for checkpoint/restore.
#[derive(Debug, Clone)]
pub struct BackedSpace {
    state: MappingState,
    /// Flat arena: `capacity_pages * PAGE_SIZE` bytes. Unmapped pages
    /// retain stale bytes but are never read (guarded by mapping state).
    arena: Vec<u8>,
    /// Content model for [`BackedSpace::write_versioned`].
    profile: WriteProfile,
}

impl BackedSpace {
    /// Create a backed space; allocates the whole arena up front, so use
    /// layouts sized to the experiment (correctness tests run at tens of
    /// megabytes, not the paper's full gigabyte).
    pub fn new(layout: DataLayout) -> Self {
        let bytes = layout.capacity_bytes() as usize;
        Self {
            state: MappingState::new(layout),
            arena: vec![0u8; bytes],
            profile: WriteProfile::default(),
        }
    }

    /// Select the content model for versioned touches.
    pub fn set_write_profile(&mut self, profile: WriteProfile) {
        self.profile = profile;
    }

    /// The active content model.
    pub fn write_profile(&self) -> WriteProfile {
        self.profile
    }

    /// Write `data` at `offset` bytes within a mapped page.
    pub fn write_bytes(&mut self, page: u64, offset: usize, data: &[u8]) -> Result<(), MemError> {
        if !self.state.is_mapped(page) {
            return Err(MemError::Unmapped { page });
        }
        assert!(offset + data.len() <= PAGE_SIZE as usize, "write crosses page boundary");
        let base = (page * PAGE_SIZE) as usize + offset;
        self.arena[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Fill an entire mapped page with deterministic content derived
    /// from `seed` (used by workload models to make runs replayable).
    ///
    /// Word `i` carries `mix(x0 + (i+1)·γ)` — a SplitMix64 stream,
    /// but since each word depends only on its index the four-lane
    /// unroll below computes the *identical* bytes while breaking the
    /// multiply dependency chain (this fill runs on every simulated
    /// page write, making it the hottest loop of the fault-tolerant
    /// experiments).
    pub fn fill_page(&mut self, page: u64, seed: u64) -> Result<(), MemError> {
        if !self.state.is_mapped(page) {
            return Err(MemError::Unmapped { page });
        }
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        #[inline(always)]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let base = (page * PAGE_SIZE) as usize;
        let x0 = seed ^ page.wrapping_mul(GAMMA);
        let mut x = x0.wrapping_add(GAMMA);
        for chunk in self.arena[base..base + PAGE_SIZE as usize].chunks_exact_mut(32) {
            let (z0, z1, z2, z3) = (
                mix(x),
                mix(x.wrapping_add(GAMMA)),
                mix(x.wrapping_add(GAMMA.wrapping_mul(2))),
                mix(x.wrapping_add(GAMMA.wrapping_mul(3))),
            );
            chunk[0..8].copy_from_slice(&z0.to_le_bytes());
            chunk[8..16].copy_from_slice(&z1.to_le_bytes());
            chunk[16..24].copy_from_slice(&z2.to_le_bytes());
            chunk[24..32].copy_from_slice(&z3.to_le_bytes());
            x = x.wrapping_add(GAMMA.wrapping_mul(4));
        }
        Ok(())
    }

    /// Write a mapped page at logical write `version`, materializing
    /// bytes per the active [`WriteProfile`].
    ///
    /// The resulting content is a pure function of `(page, version,
    /// profile)` — a recovered run replaying the same versions rewrites
    /// byte-identical data, which the rollback determinism tests rely
    /// on. Under [`WriteProfile::Scientific`] the page's class (full /
    /// partial / silent) and its changed-block positions depend only on
    /// the page address, so a given page behaves consistently across
    /// versions the way a fixed variable does in a real code.
    pub fn write_versioned(&mut self, page: u64, version: u64) -> Result<(), MemError> {
        /// Class salt: distinct from every fill seed in the tree.
        const SALT: u64 = 0x5C1E_17F1_C0DE_D00D;
        match self.profile {
            WriteProfile::Uniform => self.fill_page(page, version),
            WriteProfile::Scientific => match mix64(page ^ SALT) % 8 {
                0..=2 => self.fill_page(page, version),
                3..=5 => {
                    // Stable base plus a few version-dependent blocks:
                    // the sub-page delta case.
                    self.fill_page(page, SALT)?;
                    let blocks = 1 + mix64(page ^ SALT.rotate_left(17)) % 4;
                    for i in 0..blocks {
                        let b = (mix64(page.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i) % 16) as usize;
                        let base = (page * PAGE_SIZE) as usize + b * 256;
                        let mut x = mix64(page ^ version.wrapping_mul(SALT) ^ i);
                        for word in self.arena[base..base + 256].chunks_exact_mut(8) {
                            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                            word.copy_from_slice(&mix64(x).to_le_bytes());
                        }
                    }
                    Ok(())
                }
                // Silent store: same bytes every version.
                _ => self.fill_page(page, SALT),
            },
        }
    }

    /// A content digest of all mapped pages and the mapping structure,
    /// for end-to-end equality checks in recovery paths.
    ///
    /// Fault-tolerant runs compute this at every capture (the chunk's
    /// app-state blob carries it) and every restore (the self-check),
    /// so it must run at memory speed: every input here is a multiple
    /// of 8 bytes (4096-byte pages, 8-byte headers), so the digest
    /// mixes 64-bit words into four independent multiply-xor lanes —
    /// the lanes break the sequential multiply dependency chain that
    /// made the previous byte-at-a-time FNV-1a the dominant cost of
    /// the availability/ablation experiments. Digests are only ever
    /// compared against other digests from the same build, never
    /// persisted as golden values.
    pub fn content_digest(&self) -> u64 {
        const M: [u64; 4] = [
            0x9E37_79B9_7F4A_7C15,
            0xBF58_476D_1CE4_E5B9,
            0x94D0_49BB_1331_11EB,
            0x2545_F491_4F6C_DD1D,
        ];
        let mut lane: [u64; 4] = [
            0xcbf2_9ce4_8422_2325,
            0x8422_2325_cbf2_9ce4,
            0x6C62_272E_07BB_0142,
            0x07BB_0142_6C62_272E,
        ];
        let mut mix_words = |bytes: &[u8]| {
            debug_assert_eq!(bytes.len() % 8, 0, "digest inputs are word-aligned");
            let mut quads = bytes.chunks_exact(32);
            for quad in quads.by_ref() {
                for (i, w) in quad.chunks_exact(8).enumerate() {
                    let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
                    lane[i] = (lane[i] ^ w).wrapping_mul(M[i]);
                }
            }
            for (i, w) in quads.remainder().chunks_exact(8).enumerate() {
                let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
                lane[i] = (lane[i] ^ w).wrapping_mul(M[i]);
            }
        };
        for range in self.state.mapped_ranges() {
            mix_words(&range.start.to_le_bytes());
            mix_words(&range.len.to_le_bytes());
            let base = (range.start * PAGE_SIZE) as usize;
            let end = (range.end() * PAGE_SIZE) as usize;
            mix_words(&self.arena[base..end]);
        }
        // SplitMix-style finalization of the combined lanes.
        let mut z = lane[0]
            .wrapping_add(lane[1].rotate_left(16))
            .wrapping_add(lane[2].rotate_left(32))
            .wrapping_add(lane[3].rotate_left(48));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rebuild mapping state from a checkpoint manifest: heap size plus
    /// the exact set of live mmap blocks. Page contents are restored
    /// separately through [`PageSink`].
    pub fn restore_mapping_state(
        &mut self,
        heap_pages: u64,
        mmap_live: &[PageRange],
    ) -> Result<(), MemError> {
        let layout = self.state.layout;
        self.state = MappingState::new(layout);
        let heap = self.state.heap.grow(heap_pages)?;
        self.zero_range(heap);
        // Re-map every live block at its exact recorded position
        // (MAP_FIXED), reproducing the checkpointed layout holes and
        // all — Sage's churn leaves a fragmented arena.
        for want in mmap_live {
            self.state.mmap.map_fixed(*want)?;
            self.zero_range(*want);
        }
        Ok(())
    }

    /// Direct read-only view of the whole arena (benchmarks only).
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// A writer handle that several restore workers can share to fill
    /// disjoint page spans of the arena concurrently. The `&mut self`
    /// borrow keeps every safe API of the space frozen while workers
    /// hold the handle, so the only aliasing left to rule out is
    /// between the workers themselves — the caller's obligation (see
    /// [`ParallelPageWriter`]).
    pub fn parallel_page_writer(&mut self) -> ParallelPageWriter<'_> {
        ParallelPageWriter {
            base: self.arena.as_mut_ptr(),
            len: self.arena.len(),
            _borrow: std::marker::PhantomData,
        }
    }
}

/// Shared write access to a [`BackedSpace`] arena for plan-driven
/// parallel restore.
///
/// Restore plans partition the image into disjoint page spans, so each
/// worker thread writes memory no other worker touches; this type
/// encodes that hand-off. It deliberately bypasses the mapping-state
/// check of [`PageSink`]: the plan is built against the restored
/// mapping state, so every planned page is mapped by construction.
pub struct ParallelPageWriter<'a> {
    base: *mut u8,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut BackedSpace>,
}

// SAFETY: the raw pointer is only dereferenced inside the `unsafe`
// write methods, whose contract requires callers on different threads
// to target disjoint pages; the lifetime ties the handle to an
// exclusive borrow of the owning space.
unsafe impl Send for ParallelPageWriter<'_> {}
// SAFETY: as for Send — shared references only expose the unsafe write
// methods, whose disjoint-pages contract is the caller's obligation.
unsafe impl Sync for ParallelPageWriter<'_> {}

impl ParallelPageWriter<'_> {
    /// Copy whole pages of `data` into the arena starting at
    /// `start_page`.
    ///
    /// # Safety
    /// Concurrent callers must write disjoint pages (a restore plan's
    /// segments guarantee this); `data` must be a whole number of
    /// pages.
    pub unsafe fn write_pages(&self, start_page: u64, data: &[u8]) {
        assert_eq!(data.len() % PAGE_SIZE as usize, 0, "write_pages takes whole pages");
        let base = (start_page * PAGE_SIZE) as usize;
        assert!(base + data.len() <= self.len, "write beyond arena");
        // SAFETY: bounds asserted above; disjointness is the caller's
        // contract.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.base.add(base), data.len());
        }
    }

    /// Zero-fill `pages` pages starting at `start_page`.
    ///
    /// # Safety
    /// Concurrent callers must write disjoint pages.
    pub unsafe fn zero_pages(&self, start_page: u64, pages: u64) {
        let base = (start_page * PAGE_SIZE) as usize;
        let bytes = (pages * PAGE_SIZE) as usize;
        assert!(base + bytes <= self.len, "zero beyond arena");
        // SAFETY: bounds asserted above; disjointness is the caller's
        // contract.
        unsafe {
            std::ptr::write_bytes(self.base.add(base), 0, bytes);
        }
    }
}

impl BackedSpace {
    /// Zero the arena bytes of `range` — freshly mapped pages read as
    /// zeros, exactly like anonymous `mmap`/`brk` memory on Linux.
    /// This matters for recovery determinism: a page that is mapped
    /// but never written must have the same (zero) content in the
    /// original run and after a restore.
    fn zero_range(&mut self, range: PageRange) {
        let base = (range.start * PAGE_SIZE) as usize;
        let end = (range.end() * PAGE_SIZE) as usize;
        // Page-granular skip-if-already-zero through the dispatched
        // zero-scan kernel: a freshly grown arena (and any remapped
        // page that was never dirtied) already reads as zeros, so the
        // common case is a read-only SIMD sweep instead of a
        // guaranteed write sweep; a nonzero page bails on its first
        // nonzero word and is memset as before. Byte-identical
        // outcome either way.
        for page in self.arena[base..end].chunks_exact_mut(PAGE_SIZE as usize) {
            if !ickpt_storage::kernels::is_zero(page) {
                page.fill(0);
            }
        }
    }
}

impl AddressSpace for BackedSpace {
    fn layout(&self) -> &DataLayout {
        &self.state.layout
    }

    fn is_mapped(&self, page: u64) -> bool {
        self.state.is_mapped(page)
    }

    fn mapped_pages(&self) -> u64 {
        self.state.mapped_pages()
    }

    fn mapped_ranges(&self) -> Vec<PageRange> {
        self.state.mapped_ranges()
    }

    fn heap_grow(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let r = self.state.heap.grow(pages)?;
        self.zero_range(r);
        Ok(r)
    }

    fn heap_shrink(&mut self, pages: u64) -> Result<PageRange, MemError> {
        self.state.heap.shrink(pages)
    }

    fn heap_pages(&self) -> u64 {
        self.state.heap.size_pages()
    }

    fn mmap(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let r = self.state.mmap.map(pages)?;
        self.zero_range(r);
        Ok(r)
    }

    fn munmap(&mut self, range: PageRange) -> Result<(), MemError> {
        self.state.mmap.unmap(range)
    }
}

impl PageSource for BackedSpace {
    fn read_page(&self, page: u64) -> Option<&[u8]> {
        if !self.state.is_mapped(page) {
            return None;
        }
        let base = (page * PAGE_SIZE) as usize;
        Some(&self.arena[base..base + PAGE_SIZE as usize])
    }
}

impl PageSink for BackedSpace {
    fn write_page_data(&mut self, page: u64, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(data.len(), PAGE_SIZE as usize, "write_page_data takes whole pages");
        self.write_bytes(page, 0, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;

    fn small_layout() -> DataLayout {
        LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(16 * PAGE_SIZE)
            .mmap_capacity_bytes(16 * PAGE_SIZE)
            .build()
    }

    #[test]
    fn sparse_footprint_tracks_mappings() {
        let mut s = SparseSpace::new(small_layout());
        assert_eq!(s.mapped_pages(), 4, "static data always mapped");
        s.heap_grow(8).unwrap();
        let m = s.mmap(5).unwrap();
        assert_eq!(s.mapped_pages(), 17);
        s.munmap(m).unwrap();
        s.heap_shrink(3).unwrap();
        assert_eq!(s.mapped_pages(), 9);
        assert_eq!(s.peak_pages(), 17);
    }

    #[test]
    fn mapped_ranges_are_disjoint_and_cover_footprint() {
        let mut s = SparseSpace::new(small_layout());
        s.heap_grow(2).unwrap();
        s.mmap(3).unwrap();
        s.mmap(1).unwrap();
        let ranges = s.mapped_ranges();
        let total: u64 = ranges.iter().map(|r| r.len).sum();
        assert_eq!(total, s.mapped_pages());
        for w in ranges.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
    }

    #[test]
    fn backed_write_requires_mapping() {
        let mut b = BackedSpace::new(small_layout());
        // Page 4 is the first heap page: unmapped until the heap grows.
        assert!(b.write_bytes(4, 0, &[1, 2, 3]).is_err());
        b.heap_grow(1).unwrap();
        b.write_bytes(4, 0, &[1, 2, 3]).unwrap();
        assert_eq!(&b.read_page(4).unwrap()[..3], &[1, 2, 3]);
    }

    #[test]
    fn read_unmapped_is_none() {
        let b = BackedSpace::new(small_layout());
        assert!(b.read_page(4).is_none());
        assert!(b.read_page(0).is_some());
    }

    #[test]
    fn fill_page_matches_scalar_reference() {
        // The four-lane fill must reproduce the original sequential
        // SplitMix64 stream byte for byte.
        let mut b = BackedSpace::new(small_layout());
        b.fill_page(1, 0xABCD_1234).unwrap();
        let got = b.read_page(1).unwrap().to_vec();
        let mut x = 0xABCD_1234u64 ^ 1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (i, chunk) in got.chunks_exact(8).enumerate() {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            assert_eq!(chunk, z.to_le_bytes(), "word {i}");
        }
    }

    #[test]
    fn fill_page_is_deterministic() {
        let mut a = BackedSpace::new(small_layout());
        let mut b = BackedSpace::new(small_layout());
        a.fill_page(0, 42).unwrap();
        b.fill_page(0, 42).unwrap();
        assert_eq!(a.read_page(0), b.read_page(0));
        b.fill_page(0, 43).unwrap();
        assert_ne!(a.read_page(0), b.read_page(0));
    }

    #[test]
    fn scientific_profile_mixes_silent_partial_and_full_writes() {
        let mut s = BackedSpace::new(small_layout());
        s.set_write_profile(WriteProfile::Scientific);
        s.heap_grow(16).unwrap();
        let pages = s.mapped_pages();
        let (mut silent, mut partial, mut full) = (0u64, 0u64, 0u64);
        for p in 0..pages {
            s.write_versioned(p, 1).unwrap();
            let v1 = s.read_page(p).unwrap().to_vec();
            s.write_versioned(p, 2).unwrap();
            let v2 = s.read_page(p).unwrap().to_vec();
            let changed =
                v1.chunks_exact(256).zip(v2.chunks_exact(256)).filter(|(a, b)| a != b).count();
            match changed {
                0 => silent += 1,
                1..=4 => partial += 1,
                _ => full += 1,
            }
            // Replaying version 2 must reproduce version 2 exactly
            // (rollback determinism).
            s.write_versioned(p, 2).unwrap();
            assert_eq!(s.read_page(p).unwrap(), v2.as_slice(), "page {p} replay");
        }
        assert!(silent > 0, "no silent-store pages in {pages}");
        assert!(partial > 0, "no partial-update pages in {pages}");
        assert!(full > 0, "no full-rewrite pages in {pages}");
    }

    #[test]
    fn uniform_profile_is_fill_page() {
        let mut a = BackedSpace::new(small_layout());
        let mut b = BackedSpace::new(small_layout());
        a.write_versioned(0, 7).unwrap();
        b.fill_page(0, 7).unwrap();
        assert_eq!(a.read_page(0), b.read_page(0));
    }

    #[test]
    fn digest_reflects_content_and_mapping() {
        let mut a = BackedSpace::new(small_layout());
        let d0 = a.content_digest();
        a.fill_page(1, 7).unwrap();
        let d1 = a.content_digest();
        assert_ne!(d0, d1);
        a.heap_grow(1).unwrap();
        assert_ne!(d1, a.content_digest(), "mapping change alters digest");
    }

    #[test]
    fn restore_mapping_state_roundtrip() {
        let mut b = BackedSpace::new(small_layout());
        b.heap_grow(5).unwrap();
        let m1 = b.mmap(4).unwrap();
        let _m2 = b.mmap(2).unwrap();
        let ranges = b.mapped_ranges();
        let heap = b.heap_pages();
        let live: Vec<PageRange> =
            ranges.iter().copied().filter(|r| b.layout().mmap.contains(r.start)).collect();

        let mut fresh = BackedSpace::new(small_layout());
        fresh.restore_mapping_state(heap, &live).unwrap();
        assert_eq!(fresh.mapped_ranges(), b.mapped_ranges());
        assert!(fresh.is_mapped(m1.start));
    }

    #[test]
    fn write_page_data_roundtrip() {
        let mut b = BackedSpace::new(small_layout());
        let page = vec![0xAB; PAGE_SIZE as usize];
        b.write_page_data(0, &page).unwrap();
        assert_eq!(b.read_page(0).unwrap(), page.as_slice());
    }

    #[test]
    fn parallel_writer_fills_disjoint_spans_from_threads() {
        let mut b = BackedSpace::new(small_layout());
        b.heap_grow(8).unwrap();
        for p in 4..12 {
            b.fill_page(p, 99).unwrap(); // stale content to overwrite
        }
        let writer = b.parallel_page_writer();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let data = vec![0x11; 2 * PAGE_SIZE as usize];
                // SAFETY: pages 4..6, disjoint from the other worker.
                unsafe { writer.write_pages(4, &data) };
            });
            scope.spawn(|| {
                let data = vec![0x22; PAGE_SIZE as usize];
                // SAFETY: pages 6..7 and 7..12, disjoint from above.
                unsafe {
                    writer.write_pages(6, &data);
                    writer.zero_pages(7, 5);
                }
            });
        });
        assert!(b.read_page(4).unwrap().iter().all(|&x| x == 0x11));
        assert!(b.read_page(5).unwrap().iter().all(|&x| x == 0x11));
        assert!(b.read_page(6).unwrap().iter().all(|&x| x == 0x22));
        for p in 7..12 {
            assert!(b.read_page(p).unwrap().iter().all(|&x| x == 0));
        }
    }

    #[test]
    #[should_panic(expected = "write beyond arena")]
    fn parallel_writer_bounds_checked() {
        let mut b = BackedSpace::new(small_layout());
        let writer = b.parallel_page_writer();
        let data = vec![0u8; PAGE_SIZE as usize];
        // SAFETY: single-threaded; the call must panic on bounds.
        unsafe { writer.write_pages(1_000_000, &data) };
    }
}
