//! First-fit `mmap`/`munmap` arena with coalescing free list.
//!
//! The paper's instrumentation library intercepts `mmap` and `munmap` to
//! keep track of the boundaries and size of dynamically mapped memory
//! (§4.1); Sage allocates and deallocates a large share of its data this
//! way. We model the kernel's mmap area as a page arena with a first-fit
//! allocator: live mappings are remembered so the tracker can exclude
//! unmapped pages from checkpoints (§4.2, memory exclusion), and free
//! blocks coalesce so fragmentation stays bounded under Sage's
//! alloc/free churn.

use std::collections::BTreeMap;

use crate::error::MemError;
use crate::page::PageRange;

/// An mmap arena covering a fixed page range.
#[derive(Debug, Clone)]
pub struct MmapArea {
    region: PageRange,
    /// Free blocks keyed by start page (BTreeMap gives us neighbor
    /// lookups for coalescing).
    free: BTreeMap<u64, u64>,
    /// Live mappings keyed by start page.
    live: BTreeMap<u64, u64>,
    mapped_pages: u64,
    peak_pages: u64,
}

impl MmapArea {
    /// A fully free arena covering `region`.
    pub fn new(region: PageRange) -> Self {
        let mut free = BTreeMap::new();
        if !region.is_empty() {
            free.insert(region.start, region.len);
        }
        Self { region, free, live: BTreeMap::new(), mapped_pages: 0, peak_pages: 0 }
    }

    /// The arena's full extent.
    #[inline]
    pub fn region(&self) -> PageRange {
        self.region
    }

    /// Total pages currently mapped.
    #[inline]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// High-water mark of mapped pages.
    #[inline]
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    /// Total free pages (may be fragmented).
    #[inline]
    pub fn free_pages(&self) -> u64 {
        self.region.len - self.mapped_pages
    }

    /// Map `pages` pages (`mmap`), first-fit. Returns the new mapping.
    pub fn map(&mut self, pages: u64) -> Result<PageRange, MemError> {
        assert!(pages > 0, "mmap of zero pages");
        let found =
            self.free.iter().find(|(_, &len)| len >= pages).map(|(&start, &len)| (start, len));
        let (start, len) = found.ok_or(MemError::MmapExhausted {
            requested_pages: pages,
            free_pages: self.free_pages(),
        })?;
        self.free.remove(&start);
        if len > pages {
            self.free.insert(start + pages, len - pages);
        }
        self.live.insert(start, pages);
        self.mapped_pages += pages;
        self.peak_pages = self.peak_pages.max(self.mapped_pages);
        Ok(PageRange::new(start, pages))
    }

    /// Map the exact `range` (`mmap` with `MAP_FIXED`): used by restore
    /// to recreate a checkpointed layout, holes and all. Fails if any
    /// page of the range is not free.
    pub fn map_fixed(&mut self, range: PageRange) -> Result<(), MemError> {
        assert!(!range.is_empty(), "map_fixed of empty range");
        // Find the free block containing the range start.
        let (&fstart, &flen) =
            self.free.range(..=range.start).next_back().ok_or(MemError::MmapExhausted {
                requested_pages: range.len,
                free_pages: self.free_pages(),
            })?;
        let fblock = PageRange::new(fstart, flen);
        if !(fblock.contains(range.start) && range.end() <= fblock.end()) {
            return Err(MemError::MmapExhausted {
                requested_pages: range.len,
                free_pages: self.free_pages(),
            });
        }
        self.free.remove(&fstart);
        if range.start > fstart {
            self.free.insert(fstart, range.start - fstart);
        }
        if fblock.end() > range.end() {
            self.free.insert(range.end(), fblock.end() - range.end());
        }
        self.live.insert(range.start, range.len);
        self.mapped_pages += range.len;
        self.peak_pages = self.peak_pages.max(self.mapped_pages);
        Ok(())
    }

    /// Unmap a previously returned mapping (`munmap`). The range must
    /// match a live mapping exactly, as the interception layer tracks
    /// whole mappings.
    pub fn unmap(&mut self, range: PageRange) -> Result<(), MemError> {
        match self.live.get(&range.start) {
            Some(&len) if len == range.len => {}
            _ => return Err(MemError::BadUnmap { range_start: range.start }),
        }
        self.live.remove(&range.start);
        self.mapped_pages -= range.len;
        self.insert_free(range.start, range.len);
        Ok(())
    }

    /// Insert a free block, coalescing with adjacent free neighbors.
    fn insert_free(&mut self, mut start: u64, mut len: u64) {
        // Coalesce with the predecessor if it ends exactly at `start`.
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with the successor if it begins exactly at the end.
        if let Some((&nstart, &nlen)) = self.free.range(start + len..).next() {
            if start + len == nstart {
                self.free.remove(&nstart);
                len += nlen;
            }
        }
        self.free.insert(start, len);
    }

    /// Whether `page` belongs to a live mapping.
    pub fn is_mapped(&self, page: u64) -> bool {
        self.live.range(..=page).next_back().is_some_and(|(&start, &len)| page < start + len)
    }

    /// Iterate over live mappings in address order.
    pub fn live_mappings(&self) -> impl Iterator<Item = PageRange> + '_ {
        self.live.iter().map(|(&s, &l)| PageRange::new(s, l))
    }

    /// Number of live mappings.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of distinct free blocks (fragmentation measure).
    pub fn free_block_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> MmapArea {
        MmapArea::new(PageRange::new(1000, 100))
    }

    #[test]
    fn map_first_fit() {
        let mut a = arena();
        let m1 = a.map(10).unwrap();
        assert_eq!(m1, PageRange::new(1000, 10));
        let m2 = a.map(20).unwrap();
        assert_eq!(m2, PageRange::new(1010, 20));
        assert_eq!(a.mapped_pages(), 30);
        assert_eq!(a.free_pages(), 70);
    }

    #[test]
    fn unmap_and_reuse() {
        let mut a = arena();
        let m1 = a.map(10).unwrap();
        let _m2 = a.map(10).unwrap();
        a.unmap(m1).unwrap();
        // First-fit reuses the freed hole.
        let m3 = a.map(5).unwrap();
        assert_eq!(m3.start, 1000);
        assert_eq!(a.mapped_pages(), 15);
    }

    #[test]
    fn coalescing_merges_neighbors() {
        let mut a = arena();
        let m1 = a.map(10).unwrap();
        let m2 = a.map(10).unwrap();
        let m3 = a.map(10).unwrap();
        // Free the middle, then the first: blocks must merge so a large
        // request fits again.
        a.unmap(m2).unwrap();
        a.unmap(m1).unwrap();
        assert_eq!(a.free_block_count(), 2, "head hole + tail");
        a.unmap(m3).unwrap();
        assert_eq!(a.free_block_count(), 1, "everything coalesced");
        let big = a.map(100).unwrap();
        assert_eq!(big, PageRange::new(1000, 100));
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = arena();
        a.map(100).unwrap();
        assert!(matches!(a.map(1), Err(MemError::MmapExhausted { .. })));
    }

    #[test]
    fn fragmentation_can_block_large_requests() {
        let mut a = arena();
        let maps: Vec<_> = (0..10).map(|_| a.map(10).unwrap()).collect();
        // Free every other block: 50 pages free but max hole is 10.
        for m in maps.iter().step_by(2) {
            a.unmap(*m).unwrap();
        }
        assert_eq!(a.free_pages(), 50);
        assert!(a.map(20).is_err(), "no contiguous 20-page hole");
        assert!(a.map(10).is_ok());
    }

    #[test]
    fn bad_unmap_rejected() {
        let mut a = arena();
        let m = a.map(10).unwrap();
        assert!(a.unmap(PageRange::new(m.start + 1, 9)).is_err());
        assert!(a.unmap(PageRange::new(m.start, 5)).is_err());
        a.unmap(m).unwrap();
        assert!(a.unmap(m).is_err(), "double unmap rejected");
    }

    #[test]
    fn is_mapped_tracks_live_blocks() {
        let mut a = arena();
        let m = a.map(10).unwrap();
        assert!(a.is_mapped(m.start));
        assert!(a.is_mapped(m.end() - 1));
        assert!(!a.is_mapped(m.end()));
        a.unmap(m).unwrap();
        assert!(!a.is_mapped(m.start));
    }

    #[test]
    fn map_fixed_recreates_fragmented_layouts() {
        let mut a = arena();
        // A fragmented target: blocks at offsets 20 and 50.
        a.map_fixed(PageRange::new(1020, 10)).unwrap();
        a.map_fixed(PageRange::new(1050, 5)).unwrap();
        assert_eq!(a.mapped_pages(), 15);
        assert!(a.is_mapped(1020) && a.is_mapped(1054));
        assert!(!a.is_mapped(1030) && !a.is_mapped(1049));
        // The holes are still allocatable.
        let m = a.map(20).unwrap();
        assert_eq!(m, PageRange::new(1000, 20));
    }

    #[test]
    fn map_fixed_rejects_overlap() {
        let mut a = arena();
        a.map_fixed(PageRange::new(1010, 10)).unwrap();
        assert!(a.map_fixed(PageRange::new(1015, 10)).is_err(), "overlaps live block");
        assert!(a.map_fixed(PageRange::new(1005, 6)).is_err(), "tail overlaps");
        // Exact re-map after unmap works.
        a.unmap(PageRange::new(1010, 10)).unwrap();
        a.map_fixed(PageRange::new(1010, 10)).unwrap();
    }

    #[test]
    fn map_fixed_out_of_region_rejected() {
        let mut a = arena();
        assert!(a.map_fixed(PageRange::new(1095, 10)).is_err(), "crosses region end");
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = arena();
        let m1 = a.map(40).unwrap();
        a.unmap(m1).unwrap();
        a.map(10).unwrap();
        assert_eq!(a.peak_pages(), 40);
        assert_eq!(a.mapped_pages(), 10);
    }
}
