//! # ickpt-mem — simulated UNIX process address space
//!
//! This crate is the memory substrate for the `ickpt` incremental
//! checkpointing library (a reproduction of Sancho et al., *On the
//! Feasibility of Incremental Checkpointing for Scientific Computing*,
//! IPDPS 2004).
//!
//! The paper instruments the **data memory** of unmodified Fortran/MPI
//! processes: initialized data, uninitialized data (BSS), the heap
//! (grown with `brk`/`sbrk`) and `mmap`'ed memory (§4.1). The stack is
//! excluded because it cannot be write-protected while a signal handler
//! runs on it (§4.2), and it is negligible (< 42 KB in the paper's
//! measurements).
//!
//! We reproduce that structure here as an explicit model:
//!
//! * [`page`] — 4 KiB pages and page-range arithmetic.
//! * [`dirty`] — word-packed dirty bitmaps, the hot data structure of the
//!   write tracker.
//! * [`layout`] — an Itanium-II-like data-segment layout (§4.1: data and
//!   BSS follow the text segment, the heap grows upward, `mmap` regions
//!   live in their own arena, the stack grows down from a fixed address).
//! * [`heap`] — `brk`/`sbrk` emulation.
//! * [`mmap_area`] — a first-fit `mmap`/`munmap` arena allocator with
//!   coalescing, so dynamic codes such as Sage exercise mapping churn.
//! * [`space`] — two address-space implementations over one layout:
//!   [`space::SparseSpace`] tracks only *metadata* (mapping state), which
//!   lets characterization experiments run with multi-gigabyte footprints,
//!   and [`space::BackedSpace`] stores real page contents for
//!   checkpoint/restore correctness tests.

pub mod dirty;
pub mod error;
pub mod heap;
pub mod layout;
pub mod mmap_area;
pub mod page;
pub mod space;

pub use dirty::{DirtyBitmap, FlatDirtyBitmap};
pub use error::MemError;
pub use heap::Heap;
pub use layout::{DataLayout, LayoutBuilder};
pub use mmap_area::MmapArea;
pub use page::{pages_for_bytes, PageRange, PAGE_SHIFT, PAGE_SIZE};
pub use space::{
    AddressSpace, BackedSpace, PageSink, PageSource, ParallelPageWriter, RegionKind, SparseSpace,
    WriteProfile,
};
