//! # ickpt-svc — the checkpoint store as a shared multi-tenant service
//!
//! The paper sizes incremental-checkpoint bandwidth for *one* job that
//! owns the storage stack. A production checkpoint store (stdchk-style)
//! is shared: many jobs with different footprints and checkpoint
//! rhythms contend for one durable array. This crate models that
//! service on the deterministic event wheel:
//!
//! * [`tenant`] — tenant profiles derived from the paper's workload
//!   calibrations (request size = avg IB × period, request interval =
//!   the app's iteration period) plus per-tenant QoS weights.
//! * [`admission`] — a per-tenant token-bucket meter (weight-
//!   proportional refill, bounded burst, debt-based deferral so any
//!   request size stays live) under a global in-flight chunk cap.
//! * [`sched`] — the bandwidth partitioner: deficit-round-robin
//!   fair-share with weight-proportional quanta, plus FIFO and
//!   strict-priority baselines for interference ablations.
//! * [`service`] — the closed-loop simulation: tenants compute, issue
//!   checkpoint requests, pass admission, have their stripe chunks
//!   scheduled onto an M-device [`StripedArray`]
//!   (pipelined, one chunk per device at a time), and stall until
//!   their request is durable; drain back-pressure therefore feeds
//!   each job's stall time and efficiency directly.
//!
//! ## Determinism
//!
//! The whole service runs on one serial [`EventWheel`] —
//! admission decisions, scheduler picks and device charges happen in
//! virtual-time order with FIFO tie-break, so reports are
//! byte-identical at any `ICKPT_BENCH_THREADS` / `ICKPT_SIM_WORKERS`
//! setting. Per-tenant report aggregation goes through
//! [`ickpt_sim::tree_reduce`] with an associative merge, pinned
//! tree≡flat by the property suite.

pub mod admission;
pub mod sched;
pub mod service;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmissionVerdict, TokenBucket};
pub use sched::{ChunkJob, SchedPolicy, Scheduler};
pub use service::{
    percentile_ns, reduce_tenants, run_service, ServiceAggregate, ServiceConfig, ServiceReport,
    TenantReport,
};
pub use tenant::TenantProfile;

// Re-exported so service callers name the wheel type the loop runs on.
pub use ickpt_sim::{EventWheel, StripedArray};
