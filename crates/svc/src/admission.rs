//! Admission control: per-tenant token buckets + a global in-flight
//! cap.
//!
//! Each tenant owns a token bucket refilled in *virtual* time at a
//! rate proportional to its QoS weight, with a bounded burst
//! allowance. Admission uses the debt-carrying variant (a GCRA-style
//! meter): a request is granted whenever the bucket is non-negative
//! and then charged in full, possibly driving the balance below zero —
//! so a request larger than the burst capacity is still admitted
//! eventually (liveness for any request size) while long-run admitted
//! throughput can never exceed the refill rate. A request arriving
//! while the bucket is in debt is deferred with an exact retry
//! instant: the time the refill pays the debt off.
//!
//! The global in-flight cap is enforced by the service loop, not
//! here: it bounds how many stripe chunks occupy array devices at
//! once (the write-pipelining depth), which is a property of the
//! shared back-end rather than any one tenant.

use ickpt_sim::SimTime;

/// Admission parameters shared by every tenant (per-tenant numbers
/// scale with the tenant's weight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Token refill per weight unit, bytes per virtual second.
    pub refill_per_weight: u64,
    /// Bucket capacity per weight unit, bytes (the burst allowance).
    pub burst_per_weight: u64,
    /// Global cap on stripe chunks in flight across the array.
    pub max_in_flight: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        // One fair share of a 4 × 320 MB/s array split 16 ways, with a
        // 2-second burst, and a pipelining depth of 2 chunks per
        // device on a 4-device array.
        AdmissionConfig {
            refill_per_weight: 80_000_000,
            burst_per_weight: 160_000_000,
            max_in_flight: 8,
        }
    }
}

/// The outcome of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Request admitted; tokens were charged.
    Grant,
    /// Request deferred; retry at the contained instant (strictly
    /// after the attempt).
    Defer(SimTime),
}

/// One tenant's token meter. All arithmetic is integer (bytes and
/// nanoseconds), so decisions are byte-deterministic.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate, bytes per virtual second.
    rate: u64,
    /// Burst capacity, bytes.
    cap: u64,
    /// Current balance; negative = debt from an oversized grant.
    tokens: i128,
    /// Instant of the last refill.
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate: u64, cap: u64) -> Self {
        assert!(rate > 0, "refill rate must be positive");
        TokenBucket { rate, cap: cap.max(1), tokens: cap.max(1) as i128, last: SimTime::ZERO }
    }

    /// Bucket for a tenant of `weight` under `cfg`.
    pub fn for_weight(cfg: &AdmissionConfig, weight: u32) -> Self {
        let w = weight.max(1) as u64;
        TokenBucket::new(cfg.refill_per_weight.saturating_mul(w).max(1), cfg.burst_per_weight * w)
    }

    /// Advance the refill to `now`.
    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt = (now - self.last).0;
        self.last = now;
        let earned = dt as i128 * self.rate as i128 / 1_000_000_000;
        self.tokens = (self.tokens + earned).min(self.cap as i128);
    }

    /// Attempt to admit a `bytes`-sized request at `now`.
    pub fn admit(&mut self, now: SimTime, bytes: u64) -> AdmissionVerdict {
        self.refill(now);
        if self.tokens >= 0 {
            self.tokens -= bytes as i128;
            return AdmissionVerdict::Grant;
        }
        // Deferred: retry when the refill pays the debt off (round up,
        // and never at the same instant as the attempt).
        let debt = (-self.tokens) as u128;
        let wait_ns = ((debt * 1_000_000_000).div_ceil(self.rate as u128) as u64).max(1);
        AdmissionVerdict::Defer(SimTime(now.0 + wait_ns))
    }

    /// Current balance in bytes (negative while in debt).
    pub fn balance(&self) -> i128 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_debt_then_defers_with_exact_retry() {
        // 100 B/s, 1000 B burst.
        let mut b = TokenBucket::new(100, 1000);
        assert_eq!(b.admit(SimTime::ZERO, 600), AdmissionVerdict::Grant);
        // Balance 400: still non-negative, grant drives it to -800.
        assert_eq!(b.admit(SimTime::ZERO, 1200), AdmissionVerdict::Grant);
        // In debt: deferred until 800 B refill = 8 s.
        match b.admit(SimTime::ZERO, 10) {
            AdmissionVerdict::Defer(t) => assert_eq!(t, SimTime::from_secs(8)),
            v => panic!("expected deferral, got {v:?}"),
        }
        // At the retry instant the debt is exactly paid: grant.
        assert_eq!(b.admit(SimTime::from_secs(8), 10), AdmissionVerdict::Grant);
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let mut b = TokenBucket::new(1_000, 500);
        assert_eq!(b.admit(SimTime::ZERO, 500), AdmissionVerdict::Grant);
        // A long idle period cannot bank more than the burst.
        b.refill(SimTime::from_secs(3600));
        assert_eq!(b.balance(), 500);
    }

    #[test]
    fn oversized_requests_stay_live() {
        let mut b = TokenBucket::new(100, 50);
        // 10x the burst: granted (balance goes deeply negative) —
        // the *next* request waits the debt out.
        assert_eq!(b.admit(SimTime::ZERO, 500), AdmissionVerdict::Grant);
        let AdmissionVerdict::Defer(t) = b.admit(SimTime::ZERO, 1) else {
            panic!("expected deferral");
        };
        assert_eq!(t, SimTime::from_secs_f64(4.5));
        assert_eq!(b.admit(t, 1), AdmissionVerdict::Grant);
    }

    #[test]
    fn weight_scales_refill_linearly() {
        let cfg =
            AdmissionConfig { refill_per_weight: 100, burst_per_weight: 100, max_in_flight: 4 };
        let mut w1 = TokenBucket::for_weight(&cfg, 1);
        let mut w4 = TokenBucket::for_weight(&cfg, 4);
        assert_eq!(w1.admit(SimTime::ZERO, 1000), AdmissionVerdict::Grant);
        assert_eq!(w4.admit(SimTime::ZERO, 4000), AdmissionVerdict::Grant);
        let AdmissionVerdict::Defer(t1) = w1.admit(SimTime::ZERO, 1) else { panic!() };
        let AdmissionVerdict::Defer(t4) = w4.admit(SimTime::ZERO, 1) else { panic!() };
        // Same relative debt pays off at the same instant.
        assert_eq!(t1, t4);
    }

    #[test]
    fn deferral_is_strictly_in_the_future() {
        let mut b = TokenBucket::new(u64::MAX / 2, 1);
        b.admit(SimTime::ZERO, 10);
        if let AdmissionVerdict::Defer(t) = b.admit(SimTime::ZERO, 1) {
            assert!(t > SimTime::ZERO);
        }
    }
}
