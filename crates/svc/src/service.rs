//! The multi-tenant checkpoint service loop.
//!
//! N closed-loop tenant jobs run against one shared striped array:
//! a tenant computes for its workload's iteration period, issues a
//! checkpoint request (sized from its calibration, jittered by its
//! private stream), passes admission, has its stripe chunks
//! dispatched by the bandwidth scheduler onto the array devices
//! (pipelined up to the global in-flight cap), and is *blocked* from
//! the request instant until its last chunk is durable — so array
//! contention and drain back-pressure feed straight into stall time
//! and job efficiency, the quantities the report carries per tenant.
//!
//! Everything happens on one serial [`EventWheel`]: arrivals,
//! admission retries and chunk completions execute in virtual-time
//! order with FIFO tie-break, making the whole report a pure function
//! of the config — byte-identical at any host thread count.

use ickpt_obs::{DeviceKind, Event, Lane, Recorder};
use ickpt_sim::{tree_reduce, EventWheel, SimDuration, SimTime, SplitMix64, StripedArray};

use crate::admission::{AdmissionConfig, AdmissionVerdict, TokenBucket};
use crate::sched::{ChunkJob, SchedPolicy, Scheduler};
use crate::tenant::TenantProfile;

/// Service configuration: the tenant fleet plus the shared back-end.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The tenant fleet (ids are indices into this vec).
    pub tenants: Vec<TenantProfile>,
    /// Array devices the writes stripe across.
    pub devices: usize,
    /// Per-device bandwidth, bytes per virtual second.
    pub device_bw: u64,
    /// Per-device fixed latency.
    pub device_latency: SimDuration,
    /// Stripe-chunk size, bytes.
    pub stripe_chunk: u64,
    /// Bandwidth-partitioning policy.
    pub policy: SchedPolicy,
    /// Admission parameters.
    pub admission: AdmissionConfig,
    /// Arrivals stop once virtual time passes this horizon (requests
    /// already issued still complete).
    pub run_for: SimDuration,
    /// Seed for the tenants' jitter streams.
    pub seed: u64,
}

impl ServiceConfig {
    /// A service over `tenants` with the paper's array numbers:
    /// 4 × 320 MB/s SCSI-class devices, 4 ms latency, 4 MB stripe
    /// chunks, fair-share scheduling, default admission.
    pub fn new(tenants: Vec<TenantProfile>, run_for: SimDuration) -> Self {
        ServiceConfig {
            tenants,
            devices: 4,
            device_bw: 320_000_000,
            device_latency: SimDuration::from_millis(4),
            stripe_chunk: 4_000_000,
            policy: SchedPolicy::FairShare,
            admission: AdmissionConfig::default(),
            run_for,
            seed: 0x1DC4_2004,
        }
    }

    /// Admission refill sized so the fleet's weights share the
    /// array's aggregate bandwidth, with a `burst_secs`-second burst.
    pub fn with_fair_admission(mut self, burst_secs: u64) -> Self {
        let total_weight: u64 =
            self.tenants.iter().map(|t| t.weight.max(1) as u64).sum::<u64>().max(1);
        let aggregate = self.device_bw.saturating_mul(self.devices as u64);
        let refill = (aggregate / total_weight).max(1);
        self.admission.refill_per_weight = refill;
        self.admission.burst_per_weight = refill.saturating_mul(burst_secs.max(1));
        self
    }
}

/// One tenant's slice of the service report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant id (index in the fleet).
    pub id: u32,
    /// Workload name from the calibration table.
    pub workload: &'static str,
    /// QoS weight.
    pub weight: u32,
    /// Checkpoint requests that completed.
    pub checkpoints: u64,
    /// Admission deferrals.
    pub rejections: u64,
    /// Bytes admitted into the service.
    pub admitted_bytes: u64,
    /// Bytes landed on array devices for this tenant.
    pub drained_bytes: u64,
    /// Every completed request's blocked interval, ns, completion
    /// order (percentiles are derived from this).
    pub stalls_ns: Vec<u64>,
    /// Virtual ns spent computing (between requests).
    pub compute_ns: u64,
}

impl TenantReport {
    /// Total blocked time.
    pub fn stall_total(&self) -> SimDuration {
        SimDuration(self.stalls_ns.iter().sum())
    }

    /// Blocked-interval percentile (nearest-rank).
    pub fn stall_percentile(&self, pct: u64) -> SimDuration {
        SimDuration(percentile_ns(&self.stalls_ns, pct))
    }

    /// Fraction of the tenant's active time spent computing, in basis
    /// points (10000 = no stall at all).
    pub fn efficiency_bp(&self) -> u64 {
        let stall: u64 = self.stalls_ns.iter().sum();
        let total = self.compute_ns + stall;
        if total == 0 {
            10_000
        } else {
            (self.compute_ns as u128 * 10_000 / total as u128) as u64
        }
    }
}

/// Integer roll-up over tenants: every field is an associative fold,
/// so tree reduction at any arity matches the flat fold bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceAggregate {
    /// Tenants folded in.
    pub tenants: u64,
    /// Sum of completed checkpoints.
    pub checkpoints: u64,
    /// Sum of admission deferrals.
    pub rejections: u64,
    /// Sum of admitted bytes.
    pub admitted_bytes: u64,
    /// Sum of bytes landed on the array.
    pub drained_bytes: u64,
    /// Sum of blocked time, ns.
    pub stall_ns_total: u64,
    /// Largest single blocked interval, ns.
    pub stall_ns_max: u64,
}

impl ServiceAggregate {
    /// The aggregate of one tenant's report.
    pub fn from_tenant(t: &TenantReport) -> Self {
        ServiceAggregate {
            tenants: 1,
            checkpoints: t.checkpoints,
            rejections: t.rejections,
            admitted_bytes: t.admitted_bytes,
            drained_bytes: t.drained_bytes,
            stall_ns_total: t.stalls_ns.iter().sum(),
            stall_ns_max: t.stalls_ns.iter().copied().max().unwrap_or(0),
        }
    }

    /// Merge (associative and commutative).
    pub fn merge(&mut self, other: &ServiceAggregate) {
        self.tenants += other.tenants;
        self.checkpoints += other.checkpoints;
        self.rejections += other.rejections;
        self.admitted_bytes = self.admitted_bytes.saturating_add(other.admitted_bytes);
        self.drained_bytes = self.drained_bytes.saturating_add(other.drained_bytes);
        self.stall_ns_total = self.stall_ns_total.saturating_add(other.stall_ns_total);
        self.stall_ns_max = self.stall_ns_max.max(other.stall_ns_max);
    }
}

/// Reduce per-tenant reports through a fan-in tree of `arity`.
pub fn reduce_tenants(tenants: &[TenantReport], arity: usize) -> ServiceAggregate {
    tree_reduce(tenants.iter().map(ServiceAggregate::from_tenant).collect(), arity, |a, b| {
        a.merge(&b)
    })
    .unwrap_or_default()
}

/// The finished service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Per-tenant reports, tenant order.
    pub tenants: Vec<TenantReport>,
    /// Cluster-wide roll-up (tree-reduced).
    pub aggregate: ServiceAggregate,
    /// Latest event instant in the run.
    pub horizon: SimTime,
    /// Cumulative payload bytes per array device, device order.
    pub device_bytes: Vec<u64>,
    /// Array transfers serviced.
    pub transfers: u64,
}

impl ServiceReport {
    /// Aggregate array throughput over the run, MB/s (MB = 10^6).
    pub fn aggregate_throughput_mbps(&self) -> f64 {
        if self.horizon.0 == 0 {
            return 0.0;
        }
        self.aggregate.drained_bytes as f64 / 1e6 / self.horizon.as_secs_f64()
    }

    /// Percentile over *every* tenant's stall samples (nearest-rank).
    pub fn stall_percentile_all(&self, pct: u64) -> SimDuration {
        let mut all: Vec<u64> =
            self.tenants.iter().flat_map(|t| t.stalls_ns.iter().copied()).collect();
        all.sort_unstable();
        SimDuration(percentile_sorted(&all, pct))
    }
}

/// Nearest-rank percentile of unsorted ns samples (`pct` in 0..=100).
pub fn percentile_ns(samples: &[u64], pct: u64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    percentile_sorted(&sorted, pct)
}

fn percentile_sorted(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct.min(100) * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// Wheel events of the service loop.
enum Ev {
    /// Tenant finished computing; issues its next checkpoint request.
    Arrive(u32),
    /// Deferred admission retry.
    Retry(u32),
    /// One stripe chunk landed on a device.
    ChunkDone { tenant: u32, bytes: u64 },
}

struct TenantRun {
    rng: SplitMix64,
    reqs_issued: u64,
    /// In-flight request state (closed loop: at most one).
    req_start: SimTime,
    req_bytes: u64,
    pending_chunks: u64,
    /// Virtual instant the current compute phase started.
    compute_since: SimTime,
    report: TenantReport,
}

/// Run the service to completion; see the module docs. `obs` may be
/// [`Recorder::disabled`].
pub fn run_service(cfg: &ServiceConfig, obs: &Recorder) -> ServiceReport {
    assert!(!cfg.tenants.is_empty(), "service needs at least one tenant");
    assert!(cfg.stripe_chunk > 0, "stripe chunk must be positive");
    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();
    let mut sched = Scheduler::new(cfg.policy, &weights, cfg.stripe_chunk);
    let mut array =
        StripedArray::homogeneous(cfg.devices, cfg.device_bw, cfg.device_latency, cfg.stripe_chunk);
    let mut buckets: Vec<TokenBucket> =
        weights.iter().map(|&w| TokenBucket::for_weight(&cfg.admission, w)).collect();
    let mut wheel: EventWheel<Ev> = EventWheel::new();
    let run_end = SimTime::ZERO + cfg.run_for;

    let mut runs: Vec<TenantRun> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(id, p)| TenantRun {
            rng: SplitMix64::new(cfg.seed ^ ((id as u64) << 20) ^ 0x5e7c_0000u64),
            reqs_issued: 0,
            req_start: SimTime::ZERO,
            req_bytes: 0,
            pending_chunks: 0,
            compute_since: SimTime::ZERO,
            report: TenantReport {
                id: id as u32,
                workload: p.workload.calib().name,
                weight: p.weight,
                checkpoints: 0,
                rejections: 0,
                admitted_bytes: 0,
                drained_bytes: 0,
                stalls_ns: Vec::new(),
                compute_ns: 0,
            },
        })
        .collect();

    // Staggered first arrivals, keyed by (seed, tenant id) only — a
    // tenant's arrival pattern is independent of its neighbours.
    for (id, p) in cfg.tenants.iter().enumerate() {
        let at = SimTime::ZERO + p.stagger(cfg.seed, id as u32);
        if at <= run_end {
            wheel.push(at, Ev::Arrive(id as u32));
        }
    }

    let mut in_flight = 0usize;
    let mut horizon = SimTime::ZERO;

    while let Some((now, ev)) = wheel.pop() {
        horizon = horizon.max(now);
        match ev {
            Ev::Arrive(t) => {
                let ti = t as usize;
                let n_req = runs[ti].reqs_issued;
                runs[ti].reqs_issued += 1;
                let bytes = cfg.tenants[ti].jittered_request_bytes(&mut runs[ti].rng, n_req);
                runs[ti].report.compute_ns += (now - runs[ti].compute_since).0;
                runs[ti].req_start = now;
                runs[ti].req_bytes = bytes;
                try_admit(cfg, &mut runs, &mut buckets, &mut sched, &mut wheel, obs, t, now);
                pump(cfg, &mut sched, &mut array, &mut wheel, obs, &mut in_flight, now);
            }
            Ev::Retry(t) => {
                try_admit(cfg, &mut runs, &mut buckets, &mut sched, &mut wheel, obs, t, now);
                pump(cfg, &mut sched, &mut array, &mut wheel, obs, &mut in_flight, now);
            }
            Ev::ChunkDone { tenant, bytes } => {
                in_flight -= 1;
                let ti = tenant as usize;
                runs[ti].report.drained_bytes += bytes;
                runs[ti].pending_chunks -= 1;
                if runs[ti].pending_chunks == 0 {
                    // Request durable: the tenant unblocks and computes
                    // its next interval.
                    let stall = now - runs[ti].req_start;
                    runs[ti].report.checkpoints += 1;
                    runs[ti].report.stalls_ns.push(stall.0);
                    obs.emit_span(
                        Lane::Tenant(tenant),
                        runs[ti].req_start,
                        stall,
                        Event::TenantStall { tenant, bytes: runs[ti].req_bytes },
                    );
                    runs[ti].compute_since = now;
                    let next = now + cfg.tenants[ti].interval;
                    if next <= run_end {
                        wheel.push(next, Ev::Arrive(tenant));
                    }
                }
                pump(cfg, &mut sched, &mut array, &mut wheel, obs, &mut in_flight, now);
            }
        }
    }

    let tenants: Vec<TenantReport> = runs.into_iter().map(|r| r.report).collect();
    let aggregate = reduce_tenants(&tenants, 32);
    ServiceReport {
        tenants,
        aggregate,
        horizon,
        device_bytes: array.device_bytes(),
        transfers: array.transfers(),
    }
}

/// One admission attempt for tenant `t`'s in-flight request.
#[allow(clippy::too_many_arguments)]
fn try_admit(
    cfg: &ServiceConfig,
    runs: &mut [TenantRun],
    buckets: &mut [TokenBucket],
    sched: &mut Scheduler,
    wheel: &mut EventWheel<Ev>,
    obs: &Recorder,
    t: u32,
    now: SimTime,
) {
    let ti = t as usize;
    let bytes = runs[ti].req_bytes;
    match buckets[ti].admit(now, bytes) {
        AdmissionVerdict::Grant => {
            runs[ti].report.admitted_bytes += bytes;
            let mut chunks = 0u64;
            let mut rest = bytes;
            loop {
                let sz = rest.min(cfg.stripe_chunk);
                sched.enqueue(ChunkJob { tenant: t, req: runs[ti].reqs_issued - 1, bytes: sz });
                chunks += 1;
                rest -= sz;
                if rest == 0 {
                    break;
                }
            }
            runs[ti].pending_chunks = chunks;
            obs.emit(Lane::Tenant(t), now, Event::AdmissionGrant { tenant: t, bytes, chunks });
        }
        AdmissionVerdict::Defer(retry_at) => {
            runs[ti].report.rejections += 1;
            obs.emit(
                Lane::Tenant(t),
                now,
                Event::AdmissionReject { tenant: t, bytes, retry_ns: (retry_at - now).0 },
            );
            wheel.push(retry_at, Ev::Retry(t));
        }
    }
}

/// Dispatch queued chunks onto array devices while the global
/// in-flight cap allows.
fn pump(
    cfg: &ServiceConfig,
    sched: &mut Scheduler,
    array: &mut StripedArray,
    wheel: &mut EventWheel<Ev>,
    obs: &Recorder,
    in_flight: &mut usize,
    now: SimTime,
) {
    while *in_flight < cfg.admission.max_in_flight.max(1) {
        let Some(job) = sched.pick() else { break };
        let (dev, tr) = array.write_chunk(now, job.bytes);
        obs.emit_span(
            Lane::Device(DeviceKind::Array, dev as u32),
            tr.start,
            tr.service,
            Event::DeviceTransfer {
                bytes: job.bytes,
                queue_wait_ns: tr.queue_wait.0,
                service_ns: tr.service.0,
            },
        );
        *in_flight += 1;
        wheel.push(tr.done, Ev::ChunkDone { tenant: job.tenant, bytes: job.bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_apps::Workload;

    fn small_fleet(n: usize) -> Vec<TenantProfile> {
        let mix = [Workload::NasFt, Workload::NasLu, Workload::Sweep3d, Workload::NasBt];
        (0..n)
            .map(|i| TenantProfile::from_workload(mix[i % mix.len()], 0.01, 1 + (i % 3) as u32))
            .collect()
    }

    fn small_cfg(n: usize) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(small_fleet(n), SimDuration::from_secs(20));
        cfg.devices = 2;
        cfg.stripe_chunk = 250_000;
        cfg.with_fair_admission(2)
    }

    #[test]
    fn single_tenant_completes_checkpoints() {
        let cfg = small_cfg(1);
        let r = run_service(&cfg, &Recorder::disabled());
        assert!(r.tenants[0].checkpoints > 3, "report: {:?}", r.aggregate);
        assert_eq!(r.aggregate.checkpoints, r.tenants[0].checkpoints);
        assert!(r.aggregate.drained_bytes > 0);
        assert!(r.tenants[0].efficiency_bp() <= 10_000);
    }

    #[test]
    fn per_tenant_drained_bytes_sum_to_device_bytes() {
        let r = run_service(&small_cfg(6), &Recorder::disabled());
        let per_tenant: u64 = r.tenants.iter().map(|t| t.drained_bytes).sum();
        let per_device: u64 = r.device_bytes.iter().sum();
        assert_eq!(per_tenant, per_device);
        assert_eq!(per_tenant, r.aggregate.drained_bytes);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_service(&small_cfg(5), &Recorder::disabled());
        let b = run_service(&small_cfg(5), &Recorder::disabled());
        assert_eq!(a, b);
    }

    #[test]
    fn tree_reduce_matches_flat_fold_at_any_arity() {
        let r = run_service(&small_cfg(9), &Recorder::disabled());
        let mut flat = ServiceAggregate::default();
        for t in &r.tenants {
            flat.merge(&ServiceAggregate::from_tenant(t));
        }
        for arity in [2, 3, 8, 32, 1000] {
            assert_eq!(reduce_tenants(&r.tenants, arity), flat, "arity {arity}");
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&xs, 50), 50);
        assert_eq!(percentile_ns(&xs, 99), 99);
        assert_eq!(percentile_ns(&xs, 100), 100);
        assert_eq!(percentile_ns(&[7], 99), 7);
        assert_eq!(percentile_ns(&[], 99), 0);
    }

    #[test]
    fn fair_share_caps_light_tenant_p99_vs_fifo() {
        // A heavy Sage tenant alongside light NAS tenants: FIFO lets
        // the heavy request's chunk train block the light tenants.
        let mut fleet = vec![TenantProfile::from_workload(Workload::Sage100, 0.2, 1)];
        for _ in 0..3 {
            fleet.push(TenantProfile::from_workload(Workload::NasLu, 0.2, 1));
        }
        let mut cfg = ServiceConfig::new(fleet, SimDuration::from_secs(40));
        cfg.devices = 1;
        cfg.device_bw = 20_000_000;
        cfg.stripe_chunk = 250_000;
        cfg = cfg.with_fair_admission(4);
        let fair = run_service(&cfg, &Recorder::disabled());
        cfg.policy = SchedPolicy::Fifo;
        let fifo = run_service(&cfg, &Recorder::disabled());
        let light_p99 = |r: &ServiceReport| {
            r.tenants[1..].iter().map(|t| t.stall_percentile(99).0).max().unwrap_or(0)
        };
        assert!(
            light_p99(&fair) < light_p99(&fifo),
            "fair-share {} vs fifo {}",
            light_p99(&fair),
            light_p99(&fifo)
        );
    }
}
