//! Tenant profiles: one simulated job's checkpoint traffic shape.
//!
//! A tenant is characterized by how much it ships per checkpoint and
//! how often it checkpoints. Both come straight from the paper's
//! calibration tables: the natural request size of an incremental
//! checkpointer running at the app's own rhythm is `avg IB × period`
//! (everything the iteration overwrote), and the natural request
//! interval is the iteration period itself. Scaling shrinks bytes,
//! not rhythm, so a scaled fleet keeps the paper's time structure.

use ickpt_apps::Workload;
use ickpt_sim::{SimDuration, SplitMix64};

/// One tenant's traffic shape and QoS weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantProfile {
    /// The workload whose calibration shaped this tenant.
    pub workload: Workload,
    /// QoS weight (>= 1): DRR quantum and admission refill scale
    /// linearly with it.
    pub weight: u32,
    /// Mean bytes per checkpoint request (before per-request jitter).
    pub request_bytes: u64,
    /// Compute interval between checkpoint requests.
    pub interval: SimDuration,
}

impl TenantProfile {
    /// Derive a profile from a workload's paper calibration at memory
    /// scale `scale` and QoS weight `weight`.
    pub fn from_workload(workload: Workload, scale: f64, weight: u32) -> Self {
        let c = workload.calib();
        let request_bytes = ((c.avg_ib_mbps * c.period_s * 1e6 * scale) as u64).max(1);
        TenantProfile {
            workload,
            weight: weight.max(1),
            request_bytes,
            interval: SimDuration::from_secs_f64(c.period_s),
        }
    }

    /// The request size for request number `n`, jittered ±25% around
    /// the mean with this tenant's deterministic stream (tenants keep
    /// their stream whatever their neighbours do).
    pub fn jittered_request_bytes(&self, rng: &mut SplitMix64, _n: u64) -> u64 {
        let span = (self.request_bytes / 2).max(1);
        let base = self.request_bytes - self.request_bytes / 4;
        base + rng.next_u64() % span
    }

    /// Deterministic start stagger in `[0, interval)` keyed by
    /// `tenant_id` (independent of fleet composition, so a tenant's
    /// arrivals are identical alone or alongside others).
    pub fn stagger(&self, seed: u64, tenant_id: u32) -> SimDuration {
        let mut rng = SplitMix64::new(seed ^ ((tenant_id as u64) << 32) ^ 0x7e9a_11ce);
        SimDuration(rng.next_u64() % self.interval.0.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_calibration() {
        let p = TenantProfile::from_workload(Workload::Sweep3d, 1.0, 2);
        let c = Workload::Sweep3d.calib();
        assert_eq!(p.interval, SimDuration::from_secs_f64(c.period_s));
        // 49.5 MB/s × 7 s ≈ 346.5 MB per request.
        assert_eq!(p.request_bytes, (c.avg_ib_mbps * c.period_s * 1e6) as u64);
        assert_eq!(p.weight, 2);
    }

    #[test]
    fn jitter_stays_within_a_factor_of_the_mean() {
        let p = TenantProfile::from_workload(Workload::NasFt, 0.1, 1);
        let mut rng = SplitMix64::new(7);
        for n in 0..100 {
            let b = p.jittered_request_bytes(&mut rng, n);
            assert!(b >= p.request_bytes / 2 && b <= p.request_bytes + p.request_bytes / 4);
        }
    }

    #[test]
    fn stagger_is_stable_and_bounded() {
        let p = TenantProfile::from_workload(Workload::Sage100, 0.1, 1);
        let a = p.stagger(42, 3);
        assert_eq!(a, p.stagger(42, 3));
        assert!(a < p.interval);
        assert_ne!(a, p.stagger(42, 4));
    }
}
