//! Bandwidth partitioning across tenants: deficit round-robin
//! fair-share, plus FIFO and strict-priority baselines.
//!
//! The unit of scheduling is one stripe chunk (admission splits every
//! request into stripe-chunk jobs), so fairness is byte-granular: a
//! small tenant's two chunks interleave with a large tenant's two
//! hundred instead of queuing behind them. DRR quanta are
//! weight-proportional (quantum = weight × quantum base, with the
//! base clamped to at least the largest chunk so every round can make
//! progress), which yields weighted max-min bandwidth shares without
//! per-pick sorting — each pick is O(1) amortized.
//!
//! All three policies break ties by tenant id and preserve per-tenant
//! FIFO order, so a pick sequence is a pure function of the enqueue
//! sequence — the determinism the service report contract needs.

use std::collections::VecDeque;

/// One stripe chunk waiting for array service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkJob {
    /// Owning tenant.
    pub tenant: u32,
    /// Request sequence number within the tenant.
    pub req: u64,
    /// Chunk payload bytes.
    pub bytes: u64,
}

/// How the service partitions array bandwidth between tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Deficit round-robin with weight-proportional quanta.
    #[default]
    FairShare,
    /// Global arrival order, no partitioning (head-of-line blocking).
    Fifo,
    /// Highest weight always wins; ties by tenant id.
    StrictPriority,
}

impl SchedPolicy {
    /// Stable lowercase token for tables and knobs.
    pub fn token(&self) -> &'static str {
        match self {
            SchedPolicy::FairShare => "fair-share",
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::StrictPriority => "strict-priority",
        }
    }
}

/// See the module docs.
pub struct Scheduler {
    policy: SchedPolicy,
    /// Per-tenant FIFO chunk queues.
    queues: Vec<VecDeque<ChunkJob>>,
    /// DRR state: active tenant ring, per-tenant deficit and quantum.
    ring: VecDeque<u32>,
    in_ring: Vec<bool>,
    deficit: Vec<u64>,
    quantum: Vec<u64>,
    /// Strict-priority service order: (weight desc, id asc).
    prio_order: Vec<u32>,
    /// FIFO: global arrival order.
    fifo: VecDeque<ChunkJob>,
    queued: u64,
}

impl Scheduler {
    /// A scheduler for `weights.len()` tenants. `quantum_base` is the
    /// DRR quantum per weight unit; pass the stripe-chunk size so one
    /// round always covers at least one chunk.
    pub fn new(policy: SchedPolicy, weights: &[u32], quantum_base: u64) -> Self {
        let n = weights.len();
        let base = quantum_base.max(1);
        let mut prio_order: Vec<u32> = (0..n as u32).collect();
        prio_order.sort_by_key(|&t| (std::cmp::Reverse(weights[t as usize]), t));
        Scheduler {
            policy,
            queues: vec![VecDeque::new(); n],
            ring: VecDeque::new(),
            in_ring: vec![false; n],
            deficit: vec![0; n],
            quantum: weights.iter().map(|&w| base.saturating_mul(w.max(1) as u64)).collect(),
            prio_order,
            fifo: VecDeque::new(),
            queued: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Chunks waiting (not yet picked).
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Add one chunk job.
    pub fn enqueue(&mut self, job: ChunkJob) {
        let t = job.tenant as usize;
        assert!(t < self.queues.len(), "unknown tenant {t}");
        self.queued += 1;
        match self.policy {
            SchedPolicy::Fifo => self.fifo.push_back(job),
            SchedPolicy::FairShare => {
                self.queues[t].push_back(job);
                if !self.in_ring[t] {
                    self.in_ring[t] = true;
                    self.ring.push_back(job.tenant);
                }
            }
            SchedPolicy::StrictPriority => self.queues[t].push_back(job),
        }
    }

    /// Pick the next chunk to serve (the scheduling decision), or `None` when idle.
    pub fn pick(&mut self) -> Option<ChunkJob> {
        let picked = match self.policy {
            SchedPolicy::Fifo => self.fifo.pop_front(),
            SchedPolicy::StrictPriority => {
                let t = self.prio_order.iter().find(|&&t| !self.queues[t as usize].is_empty());
                t.copied().and_then(|t| self.queues[t as usize].pop_front())
            }
            SchedPolicy::FairShare => self.next_drr(),
        };
        if picked.is_some() {
            self.queued -= 1;
        }
        picked
    }

    /// Classic DRR: visit the head of the ring; an empty queue leaves
    /// the ring (deficit reset), an affordable head chunk is served,
    /// otherwise the tenant earns a quantum and rotates to the back.
    fn next_drr(&mut self) -> Option<ChunkJob> {
        loop {
            let t = *self.ring.front()?;
            let ti = t as usize;
            let Some(&head) = self.queues[ti].front() else {
                self.ring.pop_front();
                self.in_ring[ti] = false;
                self.deficit[ti] = 0;
                continue;
            };
            if self.deficit[ti] >= head.bytes {
                self.deficit[ti] -= head.bytes;
                return self.queues[ti].pop_front();
            }
            self.deficit[ti] = self.deficit[ti].saturating_add(self.quantum[ti]);
            self.ring.rotate_left(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: u32, req: u64, bytes: u64) -> ChunkJob {
        ChunkJob { tenant, req, bytes }
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut s = Scheduler::new(SchedPolicy::Fifo, &[1, 1], 100);
        s.enqueue(job(0, 0, 10));
        s.enqueue(job(0, 0, 10));
        s.enqueue(job(1, 0, 10));
        let order: Vec<u32> = std::iter::from_fn(|| s.pick()).map(|j| j.tenant).collect();
        assert_eq!(order, vec![0, 0, 1]);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn drr_interleaves_equal_weights() {
        let mut s = Scheduler::new(SchedPolicy::FairShare, &[1, 1], 10);
        for _ in 0..3 {
            s.enqueue(job(0, 0, 10));
            s.enqueue(job(1, 0, 10));
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pick()).map(|j| j.tenant).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn drr_weights_shape_service_ratio() {
        // Weight 3 vs weight 1, equal chunk sizes: over any window the
        // heavy tenant gets ~3x the picks.
        let mut s = Scheduler::new(SchedPolicy::FairShare, &[3, 1], 10);
        for _ in 0..40 {
            s.enqueue(job(0, 0, 10));
        }
        for _ in 0..40 {
            s.enqueue(job(1, 0, 10));
        }
        let first16: Vec<u32> = (0..16).filter_map(|_| s.pick()).map(|j| j.tenant).collect();
        let heavy = first16.iter().filter(|&&t| t == 0).count();
        assert_eq!(heavy, 12, "3:1 weights → 12 of 16 picks, got {first16:?}");
    }

    #[test]
    fn strict_priority_starves_light_tenants() {
        let mut s = Scheduler::new(SchedPolicy::StrictPriority, &[1, 5], 10);
        s.enqueue(job(0, 0, 10));
        s.enqueue(job(1, 0, 10));
        s.enqueue(job(1, 1, 10));
        let order: Vec<u32> = std::iter::from_fn(|| s.pick()).map(|j| j.tenant).collect();
        assert_eq!(order, vec![1, 1, 0]);
    }

    #[test]
    fn drr_handles_chunks_larger_than_one_quantum() {
        // Chunk of 35 with quantum 10: tenant banks deficit over
        // rounds and still progresses.
        let mut s = Scheduler::new(SchedPolicy::FairShare, &[1], 10);
        s.enqueue(job(0, 0, 35));
        assert_eq!(s.pick(), Some(job(0, 0, 35)));
        assert_eq!(s.pick(), None);
    }

    #[test]
    fn pick_sequence_is_deterministic() {
        let run = || {
            let mut s = Scheduler::new(SchedPolicy::FairShare, &[2, 1, 1], 16);
            for i in 0..30u64 {
                s.enqueue(job((i % 3) as u32, i, 8 + i % 5));
            }
            std::iter::from_fn(|| s.pick()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
