//! Interconnect configuration: the QsNet model.
//!
//! §3 of the paper quotes 900 MB/s for the (then-new) QsNet II and the
//! experiments ran on the original QsNet (Elan3, ~340 MB/s per rail).
//! The model is a per-rank NIC with (bandwidth, latency) plus a local
//! memory-copy path used for the bounce-buffer receive copy and the
//! eager-send buffer hand-off.
//!
//! All communication *cost formulas* live here as pure functions of the
//! configuration, so the threaded [`crate::comm::Endpoint`] and the
//! event-driven cluster engine share them by construction — byte-exact
//! agreement between the two execution models is a structural property,
//! not a testing accident.

use ickpt_sim::{BandwidthDevice, DevicePreset, SimDuration, SimTime};

/// Interconnect and host parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// NIC link bandwidth in bytes/s.
    pub nic_bandwidth: u64,
    /// One-way message latency.
    pub nic_latency: SimDuration,
    /// Host memory-copy bandwidth (bounce-buffer copies) in bytes/s.
    pub mem_copy_bandwidth: u64,
    /// Per-stage latency of tree collectives.
    pub collective_stage_latency: SimDuration,
}

impl NetConfig {
    /// The cluster the paper measured on: Quadrics QsNet (Elan3).
    pub fn qsnet() -> Self {
        Self::from_preset(DevicePreset::QsNet)
    }

    /// The paper's §3 reference network: QsNet II at 900 MB/s.
    pub fn qsnet2() -> Self {
        Self::from_preset(DevicePreset::QsNet2)
    }

    /// Build from a NIC preset with default host parameters.
    pub fn from_preset(preset: DevicePreset) -> Self {
        Self {
            nic_bandwidth: preset.bandwidth(),
            nic_latency: preset.latency(),
            mem_copy_bandwidth: DevicePreset::MemoryCopy.bandwidth(),
            collective_stage_latency: preset.latency(),
        }
    }

    /// Build the per-rank NIC device.
    pub fn build_nic(&self) -> BandwidthDevice {
        BandwidthDevice::new(self.nic_bandwidth, self.nic_latency)
    }

    /// ceil(log2(n)), the stage count of binomial-tree collectives.
    pub fn tree_stages(nranks: usize) -> u32 {
        assert!(nranks > 0);
        (nranks as u64).next_power_of_two().trailing_zeros()
    }

    /// Cost of a barrier across `nranks`: a gather + release over a
    /// binomial tree.
    pub fn barrier_cost(&self, nranks: usize) -> SimDuration {
        self.collective_stage_latency * (2 * Self::tree_stages(nranks)) as u64
    }

    /// Cost of an allreduce of `bytes` across `nranks`:
    /// reduce + broadcast over a binomial tree, each stage moving the
    /// payload once.
    pub fn allreduce_cost(&self, nranks: usize, bytes: u64) -> SimDuration {
        let stages = (2 * Self::tree_stages(nranks)) as u64;
        let per_stage =
            self.collective_stage_latency + SimDuration::for_transfer(bytes, self.nic_bandwidth);
        per_stage * stages
    }

    /// Bytes a rank receives during an allreduce (for traffic
    /// accounting): the payload once per reduce stage it participates
    /// in, approximated as `log2(n) * bytes`.
    pub fn allreduce_recv_bytes(nranks: usize, bytes: u64) -> u64 {
        Self::tree_stages(nranks) as u64 * bytes
    }

    // -- Pure completion-time formulas (shared by Endpoint and the
    // -- event engine) -----------------------------------------------

    /// Sender's new local time after handing an eager-send buffer to
    /// the NIC: one memory copy of the payload.
    pub fn send_handoff_time(&self, now: SimTime, bytes: u64) -> SimTime {
        now + SimDuration::for_transfer(bytes, self.mem_copy_bandwidth)
    }

    /// Receiver's new local time after consuming a message that hit the
    /// NIC at `arrival`: wait for it, then one bounce-buffer copy.
    pub fn recv_complete_time(&self, now: SimTime, arrival: SimTime, bytes: u64) -> SimTime {
        now.max(arrival) + SimDuration::for_transfer(bytes, self.mem_copy_bandwidth)
    }

    /// Completion time of a barrier whose last participant entered at
    /// `entry_max`.
    pub fn barrier_complete_time(&self, entry_max: SimTime, nranks: usize) -> SimTime {
        entry_max + self.barrier_cost(nranks)
    }

    /// Completion time of an allreduce of `bytes` whose last
    /// participant entered at `entry_max`.
    pub fn allreduce_complete_time(
        &self,
        entry_max: SimTime,
        nranks: usize,
        bytes: u64,
    ) -> SimTime {
        entry_max + self.allreduce_cost(nranks, bytes)
    }

    /// Per-rank volume of a personalized all-to-all: `bytes_per_pair`
    /// exchanged with every other rank.
    pub fn alltoall_volume(nranks: usize, bytes_per_pair: u64) -> u64 {
        bytes_per_pair * (nranks as u64).saturating_sub(1)
    }

    /// Completion time of a personalized all-to-all whose last
    /// participant entered at `entry_max` (pipelined ring schedule).
    pub fn alltoall_complete_time(
        &self,
        entry_max: SimTime,
        nranks: usize,
        bytes_per_pair: u64,
    ) -> SimTime {
        let vol = Self::alltoall_volume(nranks, bytes_per_pair);
        entry_max
            + SimDuration::for_transfer(vol, self.nic_bandwidth)
            + self.collective_stage_latency * Self::tree_stages(nranks) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(NetConfig::qsnet2().nic_bandwidth, 900_000_000);
        assert_eq!(NetConfig::qsnet().nic_bandwidth, 340_000_000);
    }

    #[test]
    fn tree_stages_log2() {
        assert_eq!(NetConfig::tree_stages(1), 0);
        assert_eq!(NetConfig::tree_stages(2), 1);
        assert_eq!(NetConfig::tree_stages(3), 2);
        assert_eq!(NetConfig::tree_stages(64), 6);
        assert_eq!(NetConfig::tree_stages(65), 7);
    }

    #[test]
    fn collective_costs_grow_with_ranks() {
        let cfg = NetConfig::qsnet();
        assert!(cfg.barrier_cost(64) > cfg.barrier_cost(8));
        assert!(cfg.allreduce_cost(64, 4096) > cfg.allreduce_cost(8, 4096));
        assert_eq!(cfg.barrier_cost(1), SimDuration::ZERO);
    }

    #[test]
    fn allreduce_cost_includes_payload() {
        let cfg = NetConfig::qsnet();
        assert!(cfg.allreduce_cost(8, 1_000_000) > cfg.allreduce_cost(8, 0));
        assert_eq!(NetConfig::allreduce_recv_bytes(8, 100), 300);
    }
}
