//! # ickpt-net — MPI-like messaging over virtual time
//!
//! The paper's applications are Fortran/MPI codes on a Quadrics QsNet
//! cluster. This crate reproduces the communication layer:
//!
//! * [`comm`] — per-rank [`comm::Endpoint`]s with tagged point-to-point
//!   `send`/`recv` and tree-modeled collectives (`barrier`,
//!   `allreduce`). Ranks run on real threads; every operation advances
//!   the caller's *virtual* clock analytically, so results are
//!   independent of OS scheduling.
//! * [`qsnet`] — the interconnect model. The paper calls out a QsNet
//!   quirk (§4.2): the NIC writes received data directly into user
//!   memory, which breaks `mprotect`-based tracking; the workaround is
//!   to receive into an unprotected *bounce buffer* and copy into place,
//!   taking the page faults during the copy. [`comm::Endpoint::recv`]
//!   models exactly that: it returns the copy cost and the caller (the
//!   cluster runner) pushes the destination pages through the tracker.
//!
//! Determinism: each rank owns its NIC device, message arrival times
//! are computed analytically at send time, and collectives exchange
//! virtual clocks through a max-rendezvous, so a run is a pure function
//! of (application, seed, configuration).

pub mod comm;
pub mod qsnet;

pub use comm::{CommWorld, Endpoint, NetError, RecvInfo};
pub use qsnet::NetConfig;
