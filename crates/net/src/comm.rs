//! Per-rank communication endpoints.
//!
//! An [`Endpoint`] is one rank's window onto the interconnect. Ranks
//! live on real threads; all timing is virtual. Point-to-point messages
//! carry their analytically computed arrival time; the receiver's clock
//! jumps to `max(local, arrival)` plus the bounce-buffer copy cost
//! (§4.2 of the paper — QsNet's direct user-space writes force the
//! tracked receive path through a copy). Collectives rendezvous on the
//! participants' clocks and add a binomial-tree cost model.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use ickpt_sim::rendezvous::Combine;
use ickpt_sim::{BandwidthDevice, Rendezvous, SimDuration, SimTime, WorkerGate};

use crate::qsnet::NetConfig;

/// How long a blocking `recv` waits on the real clock before reporting
/// a deadlock. Simulated runs complete in seconds; a miss means a
/// mismatched send/recv script.
const RECV_WALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Networking errors.
#[derive(Debug)]
pub enum NetError {
    /// No matching message arrived within the wall-clock guard.
    RecvTimeout { rank: usize, from: usize, tag: u32 },
    /// The peer channels were dropped (peer thread exited).
    Disconnected { rank: usize, peer: usize },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::RecvTimeout { rank, from, tag } => {
                write!(f, "rank {rank}: recv(from={from}, tag={tag}) timed out — mismatched send/recv script?")
            }
            NetError::Disconnected { rank, peer } => {
                write!(f, "rank {rank}: channel to peer {peer} disconnected")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug)]
struct Msg {
    src: usize,
    tag: u32,
    bytes: u64,
    arrival: SimTime,
}

/// Result of a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    /// Payload size.
    pub bytes: u64,
    /// When the message arrived at the NIC.
    pub arrival: SimTime,
    /// Caller's new local time: `max(local, arrival)` + copy cost.
    pub new_time: SimTime,
}

/// Result of an allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllreduceInfo {
    /// Caller's new local time.
    pub new_time: SimTime,
    /// Combined value.
    pub value: u64,
    /// Bytes this rank received during the collective (traffic
    /// accounting for Fig 1(b)).
    pub bytes_received: u64,
}

/// A communicator: builds the per-rank endpoints.
pub struct CommWorld {
    config: NetConfig,
    nranks: usize,
}

impl CommWorld {
    /// A world of `nranks` ranks over `config`.
    pub fn new(nranks: usize, config: NetConfig) -> Self {
        assert!(nranks > 0);
        Self { config, nranks }
    }

    /// Build all endpoints. Each endpoint must move to its rank's
    /// thread.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(self.nranks);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(self.nranks);
        for _ in 0..self.nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let rendezvous = Arc::new(Rendezvous::new(self.nranks));
        receivers
            .iter_mut()
            .enumerate()
            .map(|(rank, rx)| Endpoint {
                rank,
                nranks: self.nranks,
                config: self.config.clone(),
                nic: self.config.build_nic(),
                to_peers: senders.clone(),
                inbox: rx.take().expect("each receiver taken once"),
                pending: HashMap::new(),
                rendezvous: rendezvous.clone(),
                gate: None,
                bytes_sent: 0,
                bytes_received: 0,
                msgs_sent: 0,
                msgs_received: 0,
            })
            .collect()
    }
}

/// One rank's communication endpoint.
pub struct Endpoint {
    rank: usize,
    nranks: usize,
    config: NetConfig,
    /// This rank's NIC: injection serialization and arrival timing.
    nic: BandwidthDevice,
    to_peers: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    /// Out-of-order messages awaiting a matching recv, keyed by
    /// (src, tag).
    pending: HashMap<(usize, u32), VecDeque<Msg>>,
    rendezvous: Arc<Rendezvous>,
    /// Execution-slot gate: released around every blocking wait so a
    /// capped thread pool can never deadlock on rendezvous peers.
    gate: Option<Arc<WorkerGate>>,
    bytes_sent: u64,
    bytes_received: u64,
    msgs_sent: u64,
    msgs_received: u64,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Install an execution-slot gate. The calling thread must already
    /// hold a permit; every blocking wait inside this endpoint then
    /// releases it for the duration of the wait and reacquires on wake,
    /// so a capped pool of OS threads can host arbitrarily many ranks
    /// without rendezvous deadlock.
    pub fn set_worker_gate(&mut self, gate: Arc<WorkerGate>) {
        self.gate = Some(gate);
    }

    /// Run `f` (a blocking virtual-time wait) with this thread's
    /// execution permit released, reacquiring it before returning.
    fn gated<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let gate = self.gate.clone();
        if let Some(g) = &gate {
            g.release();
        }
        let out = f(self);
        if let Some(g) = &gate {
            g.acquire();
        }
        out
    }

    /// Eager send of `bytes` to `dst` with `tag` at local time `now`.
    /// Returns the sender's new local time (after handing the buffer to
    /// the NIC); the transfer itself pipelines on the NIC.
    pub fn send(
        &mut self,
        now: SimTime,
        dst: usize,
        tag: u32,
        bytes: u64,
    ) -> Result<SimTime, NetError> {
        assert!(dst < self.nranks, "send to unknown rank {dst}");
        // Hand-off: copy into the NIC's buffer at memory bandwidth.
        let handoff = self.config.send_handoff_time(now, bytes);
        // Wire: serialize on this rank's NIC, then link latency.
        let arrival = self.nic.transfer(now, bytes);
        self.to_peers[dst]
            .send(Msg { src: self.rank, tag, bytes, arrival })
            .map_err(|_| NetError::Disconnected { rank: self.rank, peer: dst })?;
        self.bytes_sent += bytes;
        self.msgs_sent += 1;
        Ok(handoff)
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Returns arrival/copy timing; the caller is responsible for
    /// pushing the destination pages through its write tracker (the
    /// bounce-buffer copy dirties them).
    pub fn recv(&mut self, now: SimTime, src: usize, tag: u32) -> Result<RecvInfo, NetError> {
        let msg = self.gated(|ep| ep.wait_for(src, tag))?;
        let new_time = self.config.recv_complete_time(now, msg.arrival, msg.bytes);
        self.bytes_received += msg.bytes;
        self.msgs_received += 1;
        Ok(RecvInfo { bytes: msg.bytes, arrival: msg.arrival, new_time })
    }

    fn wait_for(&mut self, src: usize, tag: u32) -> Result<Msg, NetError> {
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
        }
        loop {
            let msg = self
                .inbox
                .recv_timeout(RECV_WALL_TIMEOUT)
                .map_err(|_| NetError::RecvTimeout { rank: self.rank, from: src, tag })?;
            if msg.src == src && msg.tag == tag {
                return Ok(msg);
            }
            self.pending.entry((msg.src, msg.tag)).or_default().push_back(msg);
        }
    }

    /// Barrier across all ranks at local time `now`; returns the new
    /// local time (max of entries + tree cost).
    pub fn barrier(&mut self, now: SimTime) -> SimTime {
        let res = self.gated(|ep| ep.rendezvous.enter(now, 0, Combine::Max));
        self.config.barrier_complete_time(res.time, self.nranks)
    }

    /// Allreduce of `value` (combined with `combine`) over a payload of
    /// `bytes` at local time `now`.
    pub fn allreduce(
        &mut self,
        now: SimTime,
        bytes: u64,
        value: u64,
        combine: Combine,
    ) -> AllreduceInfo {
        let res = self.gated(|ep| ep.rendezvous.enter(now, value, combine));
        let recv_bytes = NetConfig::allreduce_recv_bytes(self.nranks, bytes);
        self.bytes_received += recv_bytes;
        AllreduceInfo {
            new_time: self.config.allreduce_complete_time(res.time, self.nranks, bytes),
            value: res.value,
            bytes_received: recv_bytes,
        }
    }

    /// One-to-all broadcast of `bytes` from `root` (binomial tree).
    /// Returns the new local time and, for non-root ranks, the bytes
    /// received. The value broadcast is the root's `value`.
    pub fn bcast(&mut self, now: SimTime, root: usize, bytes: u64, value: u64) -> AllreduceInfo {
        assert!(root < self.nranks, "bcast from unknown root {root}");
        // Contribute the value only from the root; Sum over {value, 0..}
        // delivers it to everyone.
        let v = if self.rank == root { value } else { 0 };
        let res = self.gated(|ep| ep.rendezvous.enter(now, v, Combine::Sum));
        let stages = NetConfig::tree_stages(self.nranks) as u64;
        let cost = (self.config.collective_stage_latency
            + SimDuration::for_transfer(bytes, self.config.nic_bandwidth))
            * stages;
        let recv = if self.rank == root { 0 } else { bytes };
        self.bytes_received += recv;
        AllreduceInfo { new_time: res.time + cost, value: res.value, bytes_received: recv }
    }

    /// All-to-one reduction of `value` (combined with `combine`) onto
    /// `root`; every rank learns the time, only the root the result is
    /// meaningful for (all ranks receive it here, as with MPI_Reduce
    /// followed by use at the root).
    pub fn reduce(
        &mut self,
        now: SimTime,
        root: usize,
        bytes: u64,
        value: u64,
        combine: Combine,
    ) -> AllreduceInfo {
        assert!(root < self.nranks, "reduce to unknown root {root}");
        let res = self.gated(|ep| ep.rendezvous.enter(now, value, combine));
        let stages = NetConfig::tree_stages(self.nranks) as u64;
        let cost = (self.config.collective_stage_latency
            + SimDuration::for_transfer(bytes, self.config.nic_bandwidth))
            * stages;
        let recv =
            if self.rank == root { NetConfig::tree_stages(self.nranks) as u64 * bytes } else { 0 };
        self.bytes_received += recv;
        AllreduceInfo { new_time: res.time + cost, value: res.value, bytes_received: recv }
    }

    /// Personalized all-to-all of `bytes_per_pair` with every other
    /// rank (FT's FFT transpose): every rank sends and receives
    /// `(P-1) × bytes_per_pair`. Modeled as a synchronizing collective
    /// with a pipelined ring schedule cost.
    pub fn alltoall(&mut self, now: SimTime, bytes_per_pair: u64) -> AllreduceInfo {
        let res = self.gated(|ep| ep.rendezvous.enter(now, 0, Combine::Max));
        let vol = NetConfig::alltoall_volume(self.nranks, bytes_per_pair);
        let new_time = self.config.alltoall_complete_time(res.time, self.nranks, bytes_per_pair);
        self.bytes_received += vol;
        AllreduceInfo { new_time, value: 0, bytes_received: vol }
    }

    /// Gather one u64 from every rank (used by the checkpoint commit to
    /// collect per-rank payload sizes for the manifest). Returns the
    /// values indexed by rank and the caller's new local time; the cost
    /// is that of a single binomial-tree gather of `8 × P` bytes.
    pub fn gather_u64(&mut self, now: SimTime, value: u64) -> (Vec<u64>, SimTime) {
        let mut out = Vec::with_capacity(self.nranks);
        let mut t = now;
        for r in 0..self.nranks {
            let v = if r == self.rank { value } else { 0 };
            let res = self.gated(|ep| ep.rendezvous.enter(t, v, Combine::Sum));
            t = t.max(res.time);
            out.push(res.value);
        }
        let cost = self.config.allreduce_cost(self.nranks, 8 * self.nranks as u64);
        (out, t + cost)
    }

    /// Total payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total payload bytes received so far (point-to-point plus
    /// collectives).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Messages sent / received.
    pub fn message_counts(&self) -> (u64, u64) {
        (self.msgs_sent, self.msgs_received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> Vec<Endpoint> {
        CommWorld::new(n, NetConfig::qsnet()).endpoints()
    }

    #[test]
    fn ping_pong_advances_clocks() {
        let mut eps = world(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            let t = b.recv(SimTime::ZERO, 0, 7).unwrap();
            assert_eq!(t.bytes, 1_000_000);
            // Arrival after wire time (~2.9ms at 340MB/s) + latency.
            assert!(t.arrival > SimTime::from_secs_f64(0.0029));
            assert!(t.new_time > t.arrival, "copy cost added");
            t
        });
        let t_send = a.send(SimTime::ZERO, 1, 7, 1_000_000).unwrap();
        assert!(t_send > SimTime::ZERO, "hand-off costs time");
        assert!(t_send < SimTime::from_secs_f64(0.001), "sender does not wait for the wire");
        let info = h.join().unwrap();
        assert!(info.new_time > t_send);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let mut eps = world(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut t = SimTime::ZERO;
        for tag in [1u32, 2, 3] {
            t = a.send(t, 1, tag, 100).unwrap();
        }
        // Receive in reverse tag order: matching must buffer.
        let r3 = b.recv(SimTime::ZERO, 0, 3).unwrap();
        let r1 = b.recv(r3.new_time, 0, 1).unwrap();
        let r2 = b.recv(r1.new_time, 0, 2).unwrap();
        assert!(r1.arrival < r2.arrival && r2.arrival < r3.arrival, "wire order preserved");
        assert_eq!(b.bytes_received(), 300);
    }

    #[test]
    fn fifo_within_same_src_tag() {
        let mut eps = world(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut t = SimTime::ZERO;
        t = a.send(t, 1, 5, 100).unwrap();
        let _ = a.send(t, 1, 5, 200).unwrap();
        let r1 = b.recv(SimTime::ZERO, 0, 5).unwrap();
        let r2 = b.recv(r1.new_time, 0, 5).unwrap();
        assert_eq!(r1.bytes, 100);
        assert_eq!(r2.bytes, 200);
    }

    #[test]
    fn sender_nic_serializes_back_to_back_messages() {
        let mut eps = world(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(SimTime::ZERO, 1, 0, 34_000_000).unwrap(); // 100ms of wire
        a.send(SimTime::ZERO, 1, 0, 34_000_000).unwrap();
        let r1 = b.recv(SimTime::ZERO, 0, 0).unwrap();
        let r2 = b.recv(r1.new_time, 0, 0).unwrap();
        let gap = r2.arrival - r1.arrival;
        assert!(gap >= SimDuration::from_millis(99), "second message queued on the NIC: {gap}");
    }

    #[test]
    fn barrier_synchronizes_to_max() {
        let eps = world(4);
        let times = [3u64, 1, 4, 2];
        let handles: Vec<_> = eps
            .into_iter()
            .zip(times)
            .map(|(mut ep, t)| std::thread::spawn(move || ep.barrier(SimTime::from_secs(t))))
            .collect();
        let outs: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(outs.iter().all(|&t| t == outs[0]));
        assert!(outs[0] > SimTime::from_secs(4), "max entry plus tree cost");
    }

    #[test]
    fn allreduce_combines_and_charges_traffic() {
        let eps = world(4);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, mut ep)| {
                std::thread::spawn(move || {
                    let info =
                        ep.allreduce(SimTime::from_secs(1), 4096, i as u64 + 1, Combine::Sum);
                    (info, ep.bytes_received())
                })
            })
            .collect();
        for h in handles {
            let (info, recvd) = h.join().unwrap();
            assert_eq!(info.value, 10, "1+2+3+4");
            assert_eq!(info.bytes_received, 2 * 4096);
            assert_eq!(recvd, 2 * 4096);
            assert!(info.new_time > SimTime::from_secs(1));
        }
    }

    #[test]
    fn bcast_delivers_root_value() {
        let eps = world(4);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, mut ep)| {
                std::thread::spawn(move || {
                    let v = if i == 2 { 99 } else { 0 };
                    let info = ep.bcast(SimTime::from_secs(1), 2, 4096, v);
                    (i, info, ep.bytes_received())
                })
            })
            .collect();
        for h in handles {
            let (i, info, recvd) = h.join().unwrap();
            assert_eq!(info.value, 99, "rank {i} gets the root's value");
            if i == 2 {
                assert_eq!(recvd, 0, "root receives nothing");
            } else {
                assert_eq!(recvd, 4096);
            }
            assert!(info.new_time > SimTime::from_secs(1));
        }
    }

    #[test]
    fn reduce_combines_onto_root() {
        let eps = world(4);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, mut ep)| {
                std::thread::spawn(move || {
                    let info = ep.reduce(SimTime::ZERO, 0, 8, (i as u64) + 1, Combine::Max);
                    (i, info, ep.bytes_received())
                })
            })
            .collect();
        for h in handles {
            let (i, info, recvd) = h.join().unwrap();
            assert_eq!(info.value, 4, "max of 1..=4");
            if i == 0 {
                assert!(recvd > 0, "root receives the reduction traffic");
            } else {
                assert_eq!(recvd, 0);
            }
        }
    }

    #[test]
    fn recv_timeout_reports_mismatch() {
        // Use a tiny timeout via a direct wait: we cannot easily
        // shorten the constant, so instead check that a message with
        // the wrong tag does not satisfy the recv and is buffered.
        let mut eps = world(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(SimTime::ZERO, 1, 1, 10).unwrap();
        a.send(SimTime::ZERO, 1, 2, 20).unwrap();
        let r = b.recv(SimTime::ZERO, 0, 2).unwrap();
        assert_eq!(r.bytes, 20);
        // The tag-1 message is still deliverable.
        let r = b.recv(SimTime::ZERO, 0, 1).unwrap();
        assert_eq!(r.bytes, 10);
    }

    #[test]
    fn disconnected_peer_is_an_error() {
        let mut eps = world(2);
        let _b = eps.pop(); // drop rank 1's endpoint (and its inbox)
        let mut a = eps.pop().unwrap();
        drop(_b);
        match a.send(SimTime::ZERO, 1, 0, 10) {
            Err(NetError::Disconnected { peer: 1, .. }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}
