//! Minimal byte codec for model state snapshots.
//!
//! Checkpointing saves the address space; the small amount of model
//! state (iteration counters, allocation tables, RNG state) rides along
//! as an opaque blob. A hand-rolled little-endian codec keeps the
//! format explicit and dependency-free.

/// Encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Finish.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Decoder errors.
#[derive(Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Decoder.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.len() < 8 {
            return Err(CodecError("truncated u64"));
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u64()? as usize;
        if self.buf.len() < len {
            return Err(CodecError("truncated bytes"));
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(head)
    }

    /// Whether all input was consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        w.put_f64(1.5);
        w.put_bytes(b"state");
        let data = w.into_vec();
        let mut r = ByteReader::new(&data);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert_eq!(r.get_bytes().unwrap(), b"state");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let data = w.into_vec();
        let mut r = ByteReader::new(&data[..4]);
        assert!(r.get_u64().is_err());
        let mut w = ByteWriter::new();
        w.put_bytes(b"abcdef");
        let data = w.into_vec();
        let mut r = ByteReader::new(&data[..10]);
        assert!(r.get_bytes().is_err());
    }
}
