//! # ickpt-apps — scientific-application memory-access models
//!
//! The paper characterizes six Fortran/MPI workloads on a 64-CPU
//! Itanium-II cluster: **Sage** (an ASCI hydro code, at four memory
//! footprints), **Sweep3D** (an S_N transport kernel), and the NAS
//! parallel benchmarks **BT, SP, LU, FT** (class C). We cannot run
//! those codes (export-controlled / legacy Fortran / a cluster we don't
//! have), so this crate models the one thing the paper measures about
//! them: *which pages they write, when, and what they communicate*.
//!
//! Each model is built from the paper's own measurements used as
//! calibration constants ([`calib`]): memory footprint (Table 2),
//! main-iteration period and fraction of memory overwritten per
//! iteration (Table 3), and peak/average write rates (Table 4). The
//! *derived* behaviours — how IB decays with the timeslice (Fig 2),
//! sublinearity in footprint (Fig 3), the IWS ratio (Fig 4), weak
//! scaling (Fig 5) — all emerge from page reuse in the models, not from
//! the constants; see DESIGN.md §5.
//!
//! * [`pattern`] — working sets and resumable access patterns (cyclic
//!   sweeps, random touches, first-touch initialization).
//! * [`step`] — the [`step::AppModel`] trait: an application is a
//!   deterministic generator of compute/communication steps.
//! * [`phased`] — the generic bulk-synchronous iteration engine all six
//!   workloads instantiate: kernel phases sweeping the working set,
//!   communication between kernels, an optional quiet tail.
//! * [`sage`], [`sweep3d`], [`nas`] — the concrete models.
//! * [`synthetic`] — a small fully-configurable model for tests.
//! * [`workload`] — the [`workload::Workload`] catalog enum used by
//!   benches and examples.

pub mod calib;
pub mod codec;
pub mod nas;
pub mod pattern;
pub mod phased;
pub mod sage;
pub mod step;
pub mod sweep3d;
pub mod synthetic;
pub mod workload;

pub use calib::AppCalib;
pub use pattern::{AccessPattern, WorkingSet};
pub use step::{AppModel, Step};
pub use synthetic::SyntheticApp;
pub use workload::Workload;
