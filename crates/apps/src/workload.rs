//! The workload catalog: the paper's nine application configurations.
//!
//! [`Workload`] is the convenience handle benches, examples and tests
//! use: it knows each application's calibration, builds its model, and
//! derives an address-space layout with the right capacity headroom.

use ickpt_mem::{DataLayout, LayoutBuilder, PAGE_SIZE};

use crate::calib::{self, AppCalib};
use crate::nas;
use crate::phased::{AllocMode, PhasedApp, PhasedConfig};
use crate::sage;
use crate::sweep3d;

/// The nine measured configurations (Table 2 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Sage, ~1000 MB/process.
    Sage1000,
    /// Sage, ~500 MB/process.
    Sage500,
    /// Sage, ~100 MB/process.
    Sage100,
    /// Sage, ~50 MB/process.
    Sage50,
    /// Sweep3D, 1000×1000×50.
    Sweep3d,
    /// NAS SP class C.
    NasSp,
    /// NAS LU class C.
    NasLu,
    /// NAS BT class C.
    NasBt,
    /// NAS FT class C.
    NasFt,
}

impl Workload {
    /// All workloads in the paper's table order.
    pub const ALL: [Workload; 9] = [
        Workload::Sage1000,
        Workload::Sage500,
        Workload::Sage100,
        Workload::Sage50,
        Workload::Sweep3d,
        Workload::NasSp,
        Workload::NasLu,
        Workload::NasBt,
        Workload::NasFt,
    ];

    /// The four Sage footprints, largest first (Figs 3 and 4).
    pub const SAGE: [Workload; 4] =
        [Workload::Sage1000, Workload::Sage500, Workload::Sage100, Workload::Sage50];

    /// The paper's calibration constants for this workload.
    pub fn calib(&self) -> &'static AppCalib {
        match self {
            Workload::Sage1000 => &calib::SAGE_1000,
            Workload::Sage500 => &calib::SAGE_500,
            Workload::Sage100 => &calib::SAGE_100,
            Workload::Sage50 => &calib::SAGE_50,
            Workload::Sweep3d => &calib::SWEEP3D,
            Workload::NasSp => &calib::NAS_SP,
            Workload::NasLu => &calib::NAS_LU,
            Workload::NasBt => &calib::NAS_BT,
            Workload::NasFt => &calib::NAS_FT,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.calib().name
    }

    /// Parse a workload from a CLI-friendly name (case-insensitive):
    /// `sage1000`, `sage500`, `sage100`, `sage50`, `sweep3d`, `sp`,
    /// `lu`, `bt`, `ft`.
    pub fn from_name(name: &str) -> Option<Workload> {
        Some(match name.to_ascii_lowercase().as_str() {
            "sage1000" | "sage-1000mb" => Workload::Sage1000,
            "sage500" | "sage-500mb" => Workload::Sage500,
            "sage100" | "sage-100mb" => Workload::Sage100,
            "sage50" | "sage-50mb" => Workload::Sage50,
            "sweep3d" => Workload::Sweep3d,
            "sp" => Workload::NasSp,
            "lu" => Workload::NasLu,
            "bt" => Workload::NasBt,
            "ft" => Workload::NasFt,
            _ => return None,
        })
    }

    /// Build the model for `rank` of `nranks` at memory `scale`
    /// (1.0 = the paper's configuration).
    pub fn build(&self, rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
        match self {
            Workload::Sage1000 | Workload::Sage500 | Workload::Sage100 | Workload::Sage50 => {
                sage::model(self.calib(), rank, nranks, scale, seed)
            }
            Workload::Sweep3d => sweep3d::model(rank, nranks, scale, seed),
            Workload::NasSp => nas::sp(rank, nranks, scale, seed),
            Workload::NasLu => nas::lu(rank, nranks, scale, seed),
            Workload::NasBt => nas::bt(rank, nranks, scale, seed),
            Workload::NasFt => nas::ft(rank, nranks, scale, seed),
        }
    }

    /// An address-space layout with enough capacity for this workload
    /// at `scale` (heap/mmap headroom for Sage's churn and workspace).
    pub fn layout(&self, scale: f64) -> DataLayout {
        let app = self.build(0, 1, scale, 0);
        layout_for(app.config())
    }
}

/// Derive a layout with headroom from a model configuration.
pub fn layout_for(cfg: &PhasedConfig) -> DataLayout {
    let static_bytes = 64 * PAGE_SIZE; // text-adjacent static data: negligible
    match cfg.alloc {
        AllocMode::StaticHeap => LayoutBuilder::new()
            .static_bytes(static_bytes)
            .heap_capacity_bytes(cfg.array_bytes + 64 * PAGE_SIZE)
            .mmap_capacity_bytes(16 * PAGE_SIZE)
            .build(),
        AllocMode::SageChurn { temp_frac, jitter, .. } => {
            let heap = cfg.array_bytes / 4 + 64 * PAGE_SIZE;
            let perm = cfg.array_bytes - cfg.array_bytes / 4;
            let temp = (cfg.array_bytes as f64 * temp_frac) as u64;
            // Churned blocks can grow by `jitter` and fragmentation
            // needs slack: 40 % headroom over the worst-case sum.
            let mmap = ((perm as f64 * (1.0 + jitter) + temp as f64) * 1.4) as u64;
            LayoutBuilder::new()
                .static_bytes(static_bytes)
                .heap_capacity_bytes(heap)
                .mmap_capacity_bytes(mmap)
                .build()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::AppModel;
    use ickpt_mem::{AddressSpace, SparseSpace};

    #[test]
    fn catalog_is_complete_and_named() {
        assert_eq!(Workload::ALL.len(), 9);
        let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "Sage-1000MB",
                "Sage-500MB",
                "Sage-100MB",
                "Sage-50MB",
                "Sweep3D",
                "SP",
                "LU",
                "BT",
                "FT"
            ]
        );
    }

    #[test]
    fn from_name_roundtrips_and_rejects_garbage() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w), "{}", w.name());
        }
        assert_eq!(Workload::from_name("sage1000"), Some(Workload::Sage1000));
        assert_eq!(Workload::from_name("FT"), Some(Workload::NasFt));
        assert_eq!(Workload::from_name("hpl"), None);
    }

    #[test]
    fn every_workload_initializes_in_its_layout() {
        // Run at 1/20 scale so the test is quick but the allocation
        // paths (heap + mmap + temp) are all exercised.
        for w in Workload::ALL {
            let scale = 0.05;
            let layout = w.layout(scale);
            let mut space = SparseSpace::new(layout);
            let mut app = w.build(0, 4, scale, 42);
            app.init(&mut space).unwrap_or_else(|_| panic!("{}", w.name()));
            // Two full iterations of phases must fit in the layout.
            for _ in 0..4 {
                app.next_phase(&mut space).unwrap_or_else(|_| panic!("{}", w.name()));
            }
            assert!(space.mapped_pages() > 0);
        }
    }

    #[test]
    fn footprints_track_table_2() {
        for w in Workload::ALL {
            let scale = 0.1;
            let layout = w.layout(scale);
            let mut space = SparseSpace::new(layout);
            let mut app = w.build(0, 1, scale, 7);
            app.init(&mut space).unwrap();
            // After init, the mapped footprint should be within 15 % of
            // the scaled average footprint (the burst temp adds more).
            let fp_mb = space.mapped_pages() as f64 * PAGE_SIZE as f64 / 1e6;
            let want = w.calib().footprint_avg_mb * scale;
            let ratio = fp_mb / want;
            // Small static-data overhead and page rounding matter at
            // 1/10 scale, hence the generous band.
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{}: footprint {fp_mb:.1} MB vs expected ~{want:.1} MB",
                w.name()
            );
        }
    }

    #[test]
    fn sage_peak_footprint_respects_layout() {
        let scale = 0.05;
        let w = Workload::Sage1000;
        let layout = w.layout(scale);
        let mut space = SparseSpace::new(layout);
        let mut app = w.build(0, 2, scale, 3);
        app.init(&mut space).unwrap();
        let mut peak: u64 = 0;
        for _ in 0..10 {
            app.next_phase(&mut space).unwrap();
            peak = peak.max(space.mapped_pages());
        }
        let peak_mb = peak as f64 * PAGE_SIZE as f64 / 1e6;
        let want_max = w.calib().footprint_max_mb * scale;
        assert!(
            (peak_mb / want_max - 1.0).abs() < 0.25,
            "peak {peak_mb:.1} MB vs Table 2 max ~{want_max:.1} MB"
        );
    }

    #[test]
    fn layouts_have_headroom() {
        for w in Workload::ALL {
            let cfg_app = w.build(0, 1, 0.1, 0);
            let layout = layout_for(cfg_app.config());
            assert!(
                layout.capacity_pages() > ickpt_mem::pages_for_bytes(cfg_app.config().array_bytes),
                "{}",
                w.name()
            );
        }
    }
}
