//! A small, fully explicit application model for tests.
//!
//! Unlike [`crate::phased::PhasedApp`], the synthetic app is written
//! directly against the [`AppModel`] trait with no derivation logic:
//! every iteration sweeps a fixed page count, optionally exchanges one
//! message with its ring neighbors, then idles. Tests use it to
//! validate the runner, tracker and checkpointing machinery against
//! hand-computable expectations.

use ickpt_mem::{AddressSpace, MemError, PageRange};
use ickpt_sim::SimDuration;

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::pattern::{AccessPattern, WorkingSet};
use crate::step::{AppModel, Phase, Step};

/// Configuration of the synthetic app.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Heap pages to allocate at init.
    pub footprint_pages: u64,
    /// Pages written per iteration (first `writes_per_iter` pages).
    pub writes_per_iter: u64,
    /// Iteration period; the write burst occupies `burst_frac` of it.
    pub period: SimDuration,
    /// Fraction of the period spent writing.
    pub burst_frac: f64,
    /// Exchange this many bytes with ring neighbors each iteration
    /// (0 = no communication).
    pub exchange_bytes: u64,
    /// This rank / world size.
    pub rank: usize,
    /// World size.
    pub nranks: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            footprint_pages: 1024,
            writes_per_iter: 256,
            period: SimDuration::from_secs(1),
            burst_frac: 0.5,
            exchange_bytes: 0,
            rank: 0,
            nranks: 1,
        }
    }
}

/// The synthetic application.
pub struct SyntheticApp {
    cfg: SyntheticConfig,
    heap: Option<PageRange>,
    iter: u64,
}

impl SyntheticApp {
    /// Build from configuration.
    pub fn new(cfg: SyntheticConfig) -> Self {
        assert!(cfg.writes_per_iter <= cfg.footprint_pages);
        assert!((0.0..=1.0).contains(&cfg.burst_frac) && cfg.burst_frac > 0.0);
        Self { cfg, heap: None, iter: 0 }
    }
}

impl AppModel for SyntheticApp {
    fn name(&self) -> String {
        "synthetic".into()
    }

    fn init(&mut self, space: &mut dyn AddressSpace) -> Result<Phase, MemError> {
        let heap = space.heap_grow(self.cfg.footprint_pages)?;
        self.heap = Some(heap);
        Ok(Phase::continuing(vec![Step::Compute {
            duration: SimDuration::from_millis(100),
            pattern: AccessPattern::Sweep {
                set: WorkingSet::new(vec![heap]),
                total_pages: heap.len,
                start_offset: 0,
            },
        }]))
    }

    fn next_phase(&mut self, _space: &mut dyn AddressSpace) -> Result<Phase, MemError> {
        let heap = self.heap.expect("init first");
        let burst = SimDuration::from_secs_f64(self.cfg.period.as_secs_f64() * self.cfg.burst_frac);
        let quiet = self.cfg.period - burst;
        let ws = PageRange::new(heap.start, self.cfg.writes_per_iter);
        let mut steps = vec![Step::Compute {
            duration: burst,
            pattern: AccessPattern::Sweep {
                set: WorkingSet::new(vec![ws]),
                total_pages: ws.len,
                start_offset: 0,
            },
        }];
        if self.cfg.exchange_bytes > 0 && self.cfg.nranks > 1 {
            let right = (self.cfg.rank + 1) % self.cfg.nranks;
            let left = (self.cfg.rank + self.cfg.nranks - 1) % self.cfg.nranks;
            steps.push(Step::Send { to: right, tag: 0, bytes: self.cfg.exchange_bytes });
            steps.push(Step::Recv {
                from: left,
                tag: 0,
                into: Some(PageRange::new(heap.start, 1)),
            });
        }
        if !quiet.is_zero() {
            steps.push(Step::Compute { duration: quiet, pattern: AccessPattern::None });
        }
        self.iter += 1;
        Ok(Phase::ending(steps))
    }

    fn iterations_done(&self) -> u64 {
        self.iter
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.iter);
        w.put_u64(self.heap.map_or(u64::MAX, |h| h.start));
        w.put_u64(self.heap.map_or(0, |h| h.len));
        w.into_vec()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(state);
        self.iter = r.get_u64()?;
        let start = r.get_u64()?;
        let len = r.get_u64()?;
        self.heap = (start != u64::MAX).then_some(PageRange::new(start, len));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_mem::{LayoutBuilder, SparseSpace, PAGE_SIZE};

    fn space() -> SparseSpace {
        SparseSpace::new(
            LayoutBuilder::new()
                .static_bytes(PAGE_SIZE)
                .heap_capacity_bytes(4096 * PAGE_SIZE)
                .mmap_capacity_bytes(PAGE_SIZE)
                .build(),
        )
    }

    #[test]
    fn iteration_structure() {
        let mut app = SyntheticApp::new(SyntheticConfig::default());
        let mut sp = space();
        app.init(&mut sp).unwrap();
        assert_eq!(sp.heap_pages(), 1024);
        let phase = app.next_phase(&mut sp).unwrap();
        assert!(phase.ends_iteration);
        assert_eq!(phase.steps.len(), 2, "burst + quiet");
        assert_eq!(app.iterations_done(), 1);
    }

    #[test]
    fn exchange_steps_present_with_ranks() {
        let cfg =
            SyntheticConfig { exchange_bytes: 4096, rank: 1, nranks: 4, ..Default::default() };
        let mut app = SyntheticApp::new(cfg);
        let mut sp = space();
        app.init(&mut sp).unwrap();
        let phase = app.next_phase(&mut sp).unwrap();
        assert!(phase.steps.iter().any(|s| matches!(s, Step::Send { to: 2, .. })));
        assert!(phase.steps.iter().any(|s| matches!(s, Step::Recv { from: 0, .. })));
    }

    #[test]
    fn state_roundtrip() {
        let mut app = SyntheticApp::new(SyntheticConfig::default());
        let mut sp = space();
        app.init(&mut sp).unwrap();
        app.next_phase(&mut sp).unwrap();
        let blob = app.save_state();
        let mut fresh = SyntheticApp::new(SyntheticConfig::default());
        fresh.restore_state(&blob).unwrap();
        assert_eq!(fresh.iterations_done(), 1);
        let p1 = app.next_phase(&mut sp).unwrap();
        let mut sp2 = space();
        sp2.heap_grow(1024).unwrap();
        let p2 = fresh.next_phase(&mut sp2).unwrap();
        assert_eq!(p1, p2);
    }
}
