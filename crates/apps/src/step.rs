//! The application interface: deterministic step generators.
//!
//! An application model is an infinite generator of [`Phase`]s, each a
//! short script of [`Step`]s. The cluster runner executes steps,
//! advancing the rank's virtual clock and feeding the write tracker; at
//! phases with `ends_iteration` it performs the iteration-boundary
//! coordination of §6.2 (checkpoint vote / failure vote / stop vote).
//!
//! Models may allocate and free memory directly on the space they are
//! given (the runner passes a tracked space, so mapping changes reach
//! the tracker), exactly like a real code calling `malloc`/`mmap` under
//! the paper's interposed instrumentation library.

use ickpt_mem::{AddressSpace, MemError, PageRange};
use ickpt_sim::SimDuration;

use crate::codec::CodecError;
use crate::pattern::AccessPattern;

/// One executable step of an application.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Compute for `duration`, touching pages per `pattern`.
    Compute {
        /// Virtual duration of the phase.
        duration: SimDuration,
        /// Pages written, spread uniformly over the duration.
        pattern: AccessPattern,
    },
    /// Eager send of `bytes` to rank `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Match tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive from rank `from`; the bounce-buffer copy lands
    /// in `into` (ghost cells), dirtying those pages (§4.2).
    Recv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u32,
        /// Pages the payload is copied into (`None` = scratch buffer
        /// outside the tracked region).
        into: Option<PageRange>,
    },
    /// Global barrier.
    Barrier,
    /// Allreduce of `bytes` (residuals, conservation sums).
    Allreduce {
        /// Payload size.
        bytes: u64,
    },
    /// All-to-all personalized exchange of `bytes_per_pair` with every
    /// other rank (FT's FFT transpose); received data lands in `into`.
    AllToAll {
        /// Payload exchanged with each peer.
        bytes_per_pair: u64,
        /// Pages the received panels are copied into.
        into: Option<PageRange>,
    },
}

/// A script of steps, possibly closing an iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Phase {
    /// Steps to execute in order.
    pub steps: Vec<Step>,
    /// Whether an application main iteration ends after these steps
    /// (the coordination point of §6.2).
    pub ends_iteration: bool,
}

impl Phase {
    /// A phase that ends the iteration.
    pub fn ending(steps: Vec<Step>) -> Self {
        Self { steps, ends_iteration: true }
    }

    /// A mid-iteration phase.
    pub fn continuing(steps: Vec<Step>) -> Self {
        Self { steps, ends_iteration: false }
    }
}

/// A deterministic application model.
///
/// Determinism contract: given the same constructor parameters and the
/// same sequence of calls, a model must produce identical phases and
/// identical allocations — recovery replays from a checkpointed
/// iteration and the two timelines must agree.
pub trait AppModel: Send {
    /// Display name (e.g. "Sage-1000MB").
    fn name(&self) -> String;

    /// Allocate initial memory and produce the initialization script
    /// (the data-initialization write burst the paper excludes from IB
    /// statistics).
    fn init(&mut self, space: &mut dyn AddressSpace) -> Result<Phase, MemError>;

    /// Produce the next phase. Models are infinite generators; the
    /// runner decides when to stop.
    fn next_phase(&mut self, space: &mut dyn AddressSpace) -> Result<Phase, MemError>;

    /// Iterations completed so far (phases with `ends_iteration`
    /// consumed).
    fn iterations_done(&self) -> u64;

    /// Snapshot internal state (counters, RNG, allocation table) for a
    /// checkpoint.
    fn save_state(&self) -> Vec<u8>;

    /// Restore internal state from a checkpoint blob. The address space
    /// has already been restored to the matching mapping state.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), CodecError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_constructors() {
        let p = Phase::ending(vec![Step::Barrier]);
        assert!(p.ends_iteration);
        assert_eq!(p.steps.len(), 1);
        let p = Phase::continuing(vec![]);
        assert!(!p.ends_iteration);
    }
}
