//! The Sweep3D model.
//!
//! Sweep3D "represents the heart of a real scientific application"
//! (§5): a discrete-ordinates S_N transport kernel performing
//! wavefront sweeps across a 3D grid from each of 8 octants, with
//! KBA-style pipelined ghost exchanges on a 2D processor decomposition.
//! The paper ran the 1000×1000×50 problem: 105.5 MB per process,
//! 7 s iterations, 52 % of memory overwritten per iteration
//! (Tables 2–3).
//!
//! Model shape: 8 kernel phases per iteration (one per octant), each
//! sweeping the flux/source working set; computation fills essentially
//! the whole period (Fig 2(b): max ≈ avg at multi-second timeslices);
//! after each octant, pipelined small-block exchanges with the four
//! grid neighbors.

use crate::calib::{AppCalib, SWEEP3D};
use crate::phased::{AllocMode, CommSpec, NeighborShape, PhasedApp, PhasedConfig};
use ickpt_sim::SimDuration;

/// Angle-block pipeline message size (bytes, unscaled).
pub const PIPELINE_BYTES: u64 = 64 * 1024;

/// Exchange rounds per octant (pipelining depth).
pub const ROUNDS: u32 = 2;

/// The eight octant sweeps.
pub const OCTANTS: u32 = 8;

/// Build the Sweep3D model. `scale` shrinks memory for test runs.
pub fn model(rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    model_from(&SWEEP3D, rank, nranks, scale, seed)
}

/// Build from an explicit calibration (tests use shrunken variants).
pub fn model_from(
    calib: &AppCalib,
    rank: usize,
    nranks: usize,
    scale: f64,
    seed: u64,
) -> PhasedApp {
    let c = calib.scaled(scale);
    let ws = c.ws_bytes();
    let touches = c.touches_per_iter_bytes();
    let comm = CommSpec::Neighbors {
        shape: NeighborShape::Grid2D,
        bytes: (PIPELINE_BYTES as f64 * scale) as u64,
        rounds: ROUNDS,
    };
    let est_comm = comm.estimate_seconds_per_iter(rank, nranks, OCTANTS, 340e6);
    let comm_budget = SimDuration::from_secs_f64(est_comm);
    // The sweep computes for the whole period: spread the touch volume
    // across the compute budget.
    let budget = (c.period_s - est_comm).max(0.3 * c.period_s);
    let peak_rate = touches as f64 / budget;
    PhasedApp::new(PhasedConfig {
        name: c.name.to_string(),
        rank,
        nranks,
        array_bytes: (c.footprint_avg_mb * 1e6) as u64,
        ws_bytes: ws,
        period: SimDuration::from_secs_f64(c.period_s),
        kernels: OCTANTS,
        touches_per_iter: touches,
        peak_rate,
        comm,
        allreduce_bytes: 4096, // flux convergence check per iteration
        // Octant sweeps vary strongly with angle-set ordering.
        kernel_skew: 0.5,
        comm_budget,
        alloc: AllocMode::StaticHeap,
        init_rate: 400e6 * scale.max(0.05),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_for_the_whole_period() {
        let app = model(0, 64, 1.0, 1);
        let cfg = app.config();
        assert_eq!(cfg.kernels, 8);
        assert!(cfg.quiet().as_secs_f64() < 0.5, "quiet = {}", cfg.quiet());
        // Sustained rate ≈ touches / period ≈ 49.5 MB/s.
        assert!((cfg.peak_rate / 1e6 - 49.5).abs() < 3.0, "rate = {}", cfg.peak_rate / 1e6);
    }

    #[test]
    fn working_set_is_paper_fraction() {
        let app = model(0, 4, 1.0, 1);
        let ws_mb = app.config().ws_bytes as f64 / 1e6;
        assert!((ws_mb - 0.52 * 105.5).abs() < 0.5);
    }

    #[test]
    fn static_allocation() {
        let app = model(0, 4, 1.0, 1);
        assert_eq!(app.config().alloc, AllocMode::StaticHeap);
    }
}
