//! The NAS Parallel Benchmark models: BT, SP, LU, FT (class C).
//!
//! The NAS suite (§5) is "a set of Fortran77 programs extensively used
//! to evaluate the performance of parallel supercomputers"; all four
//! statically allocate their data, have sub-second-to-second iteration
//! periods, and overwrite most of their footprint every iteration
//! (Table 3: 72–92 %). At 1 s timeslices their maximum and average IB
//! are "practically equivalent because the timeslices used are longer
//! than the duration of the main processing bursts" (§6.3) — the model
//! therefore computes for the whole period at a sustained rate.
//!
//! Per-benchmark structure:
//!
//! * **BT / SP** — ADI (alternating-direction implicit) solvers: three
//!   directional kernel phases (x, y, z line solves) with face
//!   exchanges on a square process grid between phases. BT overwrites
//!   nearly its whole image (92 %); SP has the shortest period
//!   (0.16 s).
//! * **LU** — an SSOR wavefront solve: lower/upper sweeps with
//!   small pipelined neighbor messages (2D wavefront → ring pipeline in
//!   the model) — the smallest footprint (16.6 MB).
//! * **FT** — a 3D FFT: per-dimension FFT kernels separated by the
//!   all-to-all transpose, the only NAS code here whose dominant
//!   communication is collective.

use crate::calib::{AppCalib, NAS_BT, NAS_FT, NAS_LU, NAS_SP};
use crate::phased::{AllocMode, CommSpec, NeighborShape, PhasedApp, PhasedConfig};
use ickpt_sim::SimDuration;

/// Shared constructor: full-period compute, static heap allocation.
fn nas_model(
    calib: &AppCalib,
    rank: usize,
    nranks: usize,
    scale: f64,
    seed: u64,
    kernels: u32,
    comm: CommSpec,
) -> PhasedApp {
    let c = calib.scaled(scale);
    let ws = c.ws_bytes();
    let touches = c.touches_per_iter_bytes();
    let est_comm = comm.estimate_seconds_per_iter(rank, nranks, kernels, 340e6);
    let budget = (c.period_s - est_comm).max(0.3 * c.period_s);
    let peak_rate = touches as f64 / budget;
    let comm_budget = SimDuration::from_secs_f64(est_comm);
    PhasedApp::new(PhasedConfig {
        name: c.name.to_string(),
        rank,
        nranks,
        array_bytes: (c.footprint_avg_mb * 1e6) as u64,
        ws_bytes: ws,
        period: SimDuration::from_secs_f64(c.period_s),
        kernels,
        touches_per_iter: touches,
        peak_rate,
        comm,
        allreduce_bytes: 1024,
        kernel_skew: 0.45,
        comm_budget,
        alloc: AllocMode::StaticHeap,
        init_rate: 400e6 * scale.max(0.05),
        seed,
    })
}

/// NAS BT: block-tridiagonal ADI, three directional kernels, face
/// exchanges on a 2D grid.
pub fn bt(rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    nas_model(
        &NAS_BT,
        rank,
        nranks,
        scale,
        seed,
        3,
        CommSpec::Neighbors {
            shape: NeighborShape::Grid2D,
            bytes: (256.0 * 1024.0 * scale) as u64,
            rounds: 1,
        },
    )
}

/// NAS SP: scalar-pentadiagonal ADI, same shape as BT with lighter
/// kernels and the shortest period in the suite.
pub fn sp(rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    nas_model(
        &NAS_SP,
        rank,
        nranks,
        scale,
        seed,
        3,
        CommSpec::Neighbors {
            shape: NeighborShape::Grid2D,
            bytes: (128.0 * 1024.0 * scale) as u64,
            rounds: 1,
        },
    )
}

/// NAS LU: SSOR wavefront, lower + upper triangular sweeps with small
/// pipelined messages.
pub fn lu(rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    nas_model(
        &NAS_LU,
        rank,
        nranks,
        scale,
        seed,
        2,
        CommSpec::Neighbors {
            shape: NeighborShape::Ring,
            bytes: (32.0 * 1024.0 * scale) as u64,
            rounds: 4,
        },
    )
}

/// NAS FT: 3D FFT with an all-to-all transpose after each per-dimension
/// FFT pass.
pub fn ft(rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    let per_pair =
        if nranks > 1 { (NAS_FT.ws_bytes() as f64 * scale / nranks as f64) as u64 } else { 0 };
    let comm =
        if per_pair > 0 { CommSpec::AllToAll { bytes_per_pair: per_pair } } else { CommSpec::None };
    nas_model(&NAS_FT, rank, nranks, scale, seed, 3, comm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_full_period() {
        for (app, name) in [
            (bt(0, 16, 1.0, 1), "BT"),
            (sp(0, 16, 1.0, 1), "SP"),
            (lu(0, 16, 1.0, 1), "LU"),
            (ft(0, 16, 1.0, 1), "FT"),
        ] {
            let cfg = app.config();
            // Compute plus (estimated) communication fills the period;
            // FT's all-to-all transposes occupy a large share of it.
            let est_comm = cfg.comm.estimate_seconds_per_iter(0, 16, cfg.kernels, 340e6);
            let busy = cfg.burst().as_secs_f64() + est_comm;
            let frac = busy / cfg.period.as_secs_f64();
            assert!(
                (0.85..=1.05).contains(&frac),
                "{name}: busy fraction {frac:.2} (burst {} + comm {est_comm:.3}s)",
                cfg.burst()
            );
            assert_eq!(cfg.alloc, AllocMode::StaticHeap, "{name} is static");
        }
    }

    #[test]
    fn bt_overwrites_most_of_its_image() {
        let cfg = bt(0, 4, 1.0, 1).config().clone();
        let frac = cfg.ws_bytes as f64 / cfg.array_bytes as f64;
        assert!((frac - 0.92).abs() < 0.02);
    }

    #[test]
    fn sp_has_shortest_period() {
        assert_eq!(sp(0, 4, 1.0, 1).config().period, SimDuration::from_secs_f64(0.16));
    }

    #[test]
    fn ft_uses_alltoall_scaled_by_ranks() {
        let a = ft(0, 8, 1.0, 1);
        let b = ft(0, 64, 1.0, 1);
        let pair = |app: &PhasedApp| match app.config().comm {
            CommSpec::AllToAll { bytes_per_pair } => bytes_per_pair,
            _ => panic!("FT must use all-to-all"),
        };
        assert!(pair(&a) > pair(&b), "per-pair payload shrinks with more ranks");
        // Single-rank FT degenerates to no communication.
        assert_eq!(ft(0, 1, 1.0, 1).config().comm, CommSpec::None);
    }

    #[test]
    fn ft_rate_exceeds_working_set_per_second() {
        // FT is the one workload whose measured avg IB (92.1) exceeds
        // its per-iteration working set per second (67.3/1.2 ≈ 56):
        // heavy intra-iteration reuse. The model must reflect the
        // higher touch volume.
        let cfg = ft(0, 16, 1.0, 1).config().clone();
        assert!(cfg.touches_per_iter as f64 > 1.5 * cfg.ws_bytes as f64);
    }

    #[test]
    fn lu_is_smallest() {
        let cfg = lu(0, 4, 1.0, 1).config().clone();
        assert!(cfg.array_bytes < 20_000_000);
    }
}
