//! Working sets and access patterns.
//!
//! A compute phase of a scientific code sweeps arrays: the model of a
//! phase is "touch these pages, in this order, spread uniformly over
//! this duration". [`WorkingSet`] flattens a possibly fragmented set of
//! mapped ranges (Sage's mmap blocks) into one cyclic index space, and
//! [`AccessPattern`] describes how a phase walks it. The cluster runner
//! slices patterns at timeslice boundaries, so the tracker sees exactly
//! the pages a real run would dirty in each window.

use ickpt_mem::PageRange;

/// A set of page ranges flattened into a contiguous cyclic index space
/// `[0, total_pages)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkingSet {
    ranges: Vec<PageRange>,
    total: u64,
}

impl WorkingSet {
    /// Build from ranges (kept in the given order; overlaps allowed but
    /// unusual).
    pub fn new(ranges: Vec<PageRange>) -> Self {
        let total = ranges.iter().map(|r| r.len).sum();
        Self { ranges, total }
    }

    /// Total pages in the set.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The underlying ranges.
    pub fn ranges(&self) -> &[PageRange] {
        &self.ranges
    }

    /// A sub-set covering the flat fraction interval `[lo, hi)` of this
    /// set (used to carve per-kernel slices out of an application's
    /// arrays).
    pub fn slice_frac(&self, lo: f64, hi: f64) -> WorkingSet {
        assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0, "bad fraction [{lo},{hi})");
        let start = (self.total as f64 * lo).floor() as u64;
        let end = (self.total as f64 * hi).floor() as u64;
        WorkingSet::new(self.resolve_span(start, end - start))
    }

    /// Resolve the flat span `[start, start+len)` (no wraparound) into
    /// page ranges.
    fn resolve_span(&self, start: u64, len: u64) -> Vec<PageRange> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut pos = 0u64;
        let mut remaining_start = start;
        let mut remaining_len = len;
        for r in &self.ranges {
            let r_end = pos + r.len;
            if remaining_start < r_end && remaining_len > 0 {
                let off_in_range = remaining_start - pos;
                let take = (r.len - off_in_range).min(remaining_len);
                out.push(PageRange::new(r.start + off_in_range, take));
                remaining_start += take;
                remaining_len -= take;
            }
            pos = r_end;
            if remaining_len == 0 {
                break;
            }
        }
        assert!(remaining_len == 0, "span [{start}, +{len}) exceeds working set {}", self.total);
        out
    }

    /// Resolve the *cyclic* flat span `[start mod total, +len)` into
    /// page ranges. When `len >= total`, the whole set is returned once
    /// (touching a page twice in one window is idempotent for dirty
    /// tracking).
    pub fn cyclic_span(&self, start: u64, len: u64) -> Vec<PageRange> {
        if self.total == 0 || len == 0 {
            return Vec::new();
        }
        if len >= self.total {
            return self.ranges.clone();
        }
        let s = start % self.total;
        if s + len <= self.total {
            self.resolve_span(s, len)
        } else {
            let mut out = self.resolve_span(s, self.total - s);
            out.extend(self.resolve_span(0, len - (self.total - s)));
            out
        }
    }
}

/// How a compute phase touches memory over its duration.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Pure computation on registers/cache: no page writes (or writes
    /// confined to the untracked stack, as §4.2 permits).
    None,
    /// Sequential cyclic sweep: `total_pages` page touches starting at
    /// flat offset `start_offset`, advancing uniformly in time. More
    /// touches than the set's size wraps around (reuse).
    Sweep {
        /// The set being swept.
        set: WorkingSet,
        /// Total page touches over the phase.
        total_pages: u64,
        /// Flat starting offset in the set.
        start_offset: u64,
    },
    /// Uniformly random single-page touches (pointer-chasing codes).
    Random {
        /// The set touched.
        set: WorkingSet,
        /// Total page touches over the phase.
        touches: u64,
        /// PRNG seed for this phase.
        seed: u64,
    },
}

impl AccessPattern {
    /// The page ranges touched in the sub-interval `[f0, f1)` of the
    /// phase (fractions of its duration). The union over a partition of
    /// `[0, 1)` equals the full phase's touches.
    pub fn slice(&self, f0: f64, f1: f64) -> Vec<PageRange> {
        debug_assert!((0.0..=1.0).contains(&f0) && f0 <= f1 && f1 <= 1.0);
        match self {
            AccessPattern::None => Vec::new(),
            AccessPattern::Sweep { set, total_pages, start_offset } => {
                let p0 = (*total_pages as f64 * f0).round() as u64;
                let p1 = (*total_pages as f64 * f1).round() as u64;
                set.cyclic_span(start_offset + p0, p1 - p0)
            }
            AccessPattern::Random { set, touches, seed } => {
                if set.is_empty() {
                    return Vec::new();
                }
                let t0 = (*touches as f64 * f0).round() as u64;
                let t1 = (*touches as f64 * f1).round() as u64;
                // Stateless slicing: the i-th touch is a pure function
                // of (seed, i), so any partition yields the same
                // multiset of touches.
                let mut out = Vec::with_capacity((t1 - t0) as usize);
                for i in t0..t1 {
                    let mut x = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    x ^= x >> 31;
                    let flat = x % set.total_pages();
                    out.extend(set.cyclic_span(flat, 1));
                }
                out
            }
        }
    }

    /// Total page touches of the full phase.
    pub fn total_touches(&self) -> u64 {
        match self {
            AccessPattern::None => 0,
            AccessPattern::Sweep { total_pages, .. } => *total_pages,
            AccessPattern::Random { touches, .. } => *touches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ws() -> WorkingSet {
        // Fragmented: [10,15) [30,35) [50,60) => 20 pages flat.
        WorkingSet::new(vec![PageRange::new(10, 5), PageRange::new(30, 5), PageRange::new(50, 10)])
    }

    fn expand(ranges: &[PageRange]) -> Vec<u64> {
        ranges.iter().flat_map(|r| r.iter()).collect()
    }

    #[test]
    fn totals() {
        assert_eq!(ws().total_pages(), 20);
        assert!(WorkingSet::new(vec![]).is_empty());
    }

    #[test]
    fn span_within_one_range() {
        let s = ws().cyclic_span(1, 3);
        assert_eq!(expand(&s), vec![11, 12, 13]);
    }

    #[test]
    fn span_across_ranges() {
        let s = ws().cyclic_span(3, 5);
        // Flat 3..8 = pages 13,14 then 30,31,32.
        assert_eq!(expand(&s), vec![13, 14, 30, 31, 32]);
    }

    #[test]
    fn span_wraps_around() {
        let s = ws().cyclic_span(18, 4);
        // Flat 18,19 = pages 58,59; wrap to flat 0,1 = pages 10,11.
        assert_eq!(expand(&s), vec![58, 59, 10, 11]);
    }

    #[test]
    fn span_longer_than_set_returns_whole_set_once() {
        let s = ws().cyclic_span(7, 100);
        assert_eq!(expand(&s).len(), 20);
        let unique: BTreeSet<u64> = expand(&s).into_iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn slice_frac_carves_subsets() {
        let half = ws().slice_frac(0.0, 0.5);
        assert_eq!(half.total_pages(), 10);
        assert_eq!(expand(half.ranges()), vec![10, 11, 12, 13, 14, 30, 31, 32, 33, 34]);
        let quarter = ws().slice_frac(0.75, 1.0);
        assert_eq!(expand(quarter.ranges()), vec![55, 56, 57, 58, 59]);
    }

    #[test]
    fn sweep_slices_partition_the_phase() {
        let pat = AccessPattern::Sweep { set: ws(), total_pages: 15, start_offset: 3 };
        let whole: BTreeSet<u64> = expand(&pat.slice(0.0, 1.0)).into_iter().collect();
        let mut parts: BTreeSet<u64> = BTreeSet::new();
        for i in 0..5 {
            let f0 = i as f64 / 5.0;
            let f1 = (i + 1) as f64 / 5.0;
            parts.extend(expand(&pat.slice(f0, f1)));
        }
        assert_eq!(whole, parts, "slicing must not change coverage");
        assert_eq!(whole.len(), 15);
    }

    #[test]
    fn sweep_wrap_covers_everything() {
        let pat = AccessPattern::Sweep { set: ws(), total_pages: 45, start_offset: 0 };
        let pages: BTreeSet<u64> = expand(&pat.slice(0.0, 1.0)).into_iter().collect();
        assert_eq!(pages.len(), 20, "more than 2 passes covers the full set");
    }

    #[test]
    fn random_slicing_is_stateless() {
        let pat = AccessPattern::Random { set: ws(), touches: 40, seed: 9 };
        let whole = expand(&pat.slice(0.0, 1.0));
        let mut parts = Vec::new();
        parts.extend(expand(&pat.slice(0.0, 0.3)));
        parts.extend(expand(&pat.slice(0.3, 0.9)));
        parts.extend(expand(&pat.slice(0.9, 1.0)));
        assert_eq!(whole, parts);
        assert_eq!(whole.len(), 40);
        assert!(whole.iter().all(|p| ws().cyclic_span(0, 20).iter().any(|r| r.contains(*p))));
    }

    #[test]
    fn empty_pattern_touches_nothing() {
        assert!(AccessPattern::None.slice(0.0, 1.0).is_empty());
        assert_eq!(AccessPattern::None.total_touches(), 0);
    }
}
