//! The generic bulk-synchronous application model.
//!
//! §6.2 of the paper: "scientific codes perform a sequence of similar
//! iterations, and in each iteration we can identify regular
//! computation and communication bursts". [`PhasedApp`] is that
//! structure, parameterized per application:
//!
//! * an iteration is `kernels` compute phases, each sweeping the
//!   working set at the calibrated rate, with communication after each
//!   kernel;
//! * a *processing burst* of length `touches / peak_rate` followed by a
//!   quiet tail filling the rest of the period (Sage has a long tail;
//!   the NAS codes compute for essentially the whole period);
//! * optionally (Sage) dynamic memory behaviour: a temporary workspace
//!   block mapped for the burst and unmapped afterwards, plus
//!   allocation churn over the permanent blocks — this is what makes
//!   Sage's footprint vary (Table 2) and exercises memory exclusion.
//!
//! The model is a deterministic function of its configuration and seed.

use ickpt_mem::{pages_for_bytes, AddressSpace, MemError, PageRange, PAGE_SIZE};
use ickpt_sim::{SimDuration, SplitMix64};

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::pattern::{AccessPattern, WorkingSet};
use crate::step::{AppModel, Phase, Step};

/// Neighbor topology for exchange communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborShape {
    /// 1D ring: up to two neighbors.
    Ring,
    /// 2D torus on the largest near-square factorization: up to four
    /// neighbors.
    Grid2D,
}

/// Communication performed after each kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CommSpec {
    /// No communication (single-rank characterization runs).
    None,
    /// Ghost-cell exchange with neighbors, `rounds` times per kernel.
    Neighbors {
        /// Topology.
        shape: NeighborShape,
        /// Bytes per neighbor per round.
        bytes: u64,
        /// Exchange rounds per kernel (Sage's multi-level gathers grow
        /// with log₂ P, which is how weak scaling shows up in Fig 5).
        rounds: u32,
    },
    /// Personalized all-to-all (FT's FFT transpose), once per kernel.
    AllToAll {
        /// Bytes exchanged with each peer.
        bytes_per_pair: u64,
    },
}

/// Memory allocation behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocMode {
    /// All arrays on the heap at init, constant footprint (Sweep3D and
    /// the NAS codes — "statically allocate their data", §5).
    StaticHeap,
    /// Sage (§5: "dynamically allocates and deallocates a large part of
    /// its data structures"): permanent arrays split across heap and
    /// mmap blocks, a temporary workspace mapped for each burst, and
    /// per-iteration churn of permanent blocks.
    SageChurn {
        /// Number of permanent mmap blocks.
        perm_blocks: u32,
        /// Temporary workspace size as a fraction of the permanent
        /// arrays.
        temp_frac: f64,
        /// Permanent blocks reallocated (freed + mapped anew with
        /// jittered size) per iteration.
        churn_blocks: u32,
        /// Size jitter of churned blocks (±fraction).
        jitter: f64,
    },
}

/// Full configuration of a phased application.
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// Display name.
    pub name: String,
    /// This rank.
    pub rank: usize,
    /// World size.
    pub nranks: usize,
    /// Permanent array bytes per rank.
    pub array_bytes: u64,
    /// Working-set size in bytes (pages written each iteration).
    pub ws_bytes: u64,
    /// Main-iteration period.
    pub period: SimDuration,
    /// Kernel phases per iteration.
    pub kernels: u32,
    /// Total page-touch volume per iteration, bytes.
    pub touches_per_iter: u64,
    /// Touch rate during kernels, bytes/second.
    pub peak_rate: f64,
    /// Communication after each kernel.
    pub comm: CommSpec,
    /// Iteration-end allreduce payload (0 = none).
    pub allreduce_bytes: u64,
    /// Kernel-duration skew in [0, 0.9): kernel durations ramp
    /// linearly from `(1 - skew)` to `(1 + skew)` times the mean
    /// across the iteration (same page volume per kernel), so the
    /// fastest kernel writes at `peak_rate / (1 - skew)`. Real codes'
    /// kernels are not uniform, and it is this sawtooth envelope that
    /// makes the iteration period detectable at run time (§6.2).
    pub kernel_skew: f64,
    /// Estimated per-iteration communication time, used to size the
    /// quiet tail so that burst + communication + tail lands on the
    /// calibrated period.
    pub comm_budget: SimDuration,
    /// Allocation behaviour.
    pub alloc: AllocMode,
    /// Initialization write rate, bytes/second (the first-touch burst).
    pub init_rate: f64,
    /// Seed for the model's private PRNG.
    pub seed: u64,
}

impl PhasedConfig {
    /// Burst duration: `touches / peak_rate`.
    pub fn burst(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.touches_per_iter as f64 / self.peak_rate)
    }

    /// Quiet tail: `period - burst - comm_budget` (zero when compute
    /// plus communication fills the whole period).
    pub fn quiet(&self) -> SimDuration {
        let busy = self.burst() + self.comm_budget;
        if busy.0 >= self.period.0 {
            SimDuration::ZERO
        } else {
            self.period - busy
        }
    }
}

impl CommSpec {
    /// Rough per-iteration communication time in seconds, used by
    /// workload constructors to budget compute so the total iteration
    /// period lands near the calibrated value. `nic_bw` in bytes/s.
    pub fn estimate_seconds_per_iter(
        &self,
        rank: usize,
        nranks: usize,
        kernels: u32,
        nic_bw: f64,
    ) -> f64 {
        let per_kernel = match self {
            CommSpec::None => 0.0,
            CommSpec::Neighbors { shape, bytes, rounds } => {
                let n = neighbors(rank, nranks, *shape).len() as f64;
                n * *rounds as f64 * (*bytes as f64 / nic_bw + 10e-6)
            }
            CommSpec::AllToAll { bytes_per_pair } => {
                (nranks as f64 - 1.0).max(0.0) * (*bytes_per_pair as f64 / nic_bw + 10e-6)
            }
        };
        per_kernel * kernels as f64
    }
}

/// Compute the near-square 2D factorization of `n` (rows ≤ cols).
fn grid_dims(n: usize) -> (usize, usize) {
    let mut r = (n as f64).sqrt() as usize;
    while r > 1 && !n.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), n / r.max(1))
}

/// Neighbor ranks for `rank` in the given topology (deduplicated; empty
/// for single-rank worlds).
pub fn neighbors(rank: usize, nranks: usize, shape: NeighborShape) -> Vec<usize> {
    if nranks <= 1 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(4);
    match shape {
        NeighborShape::Ring => {
            out.push((rank + 1) % nranks);
            out.push((rank + nranks - 1) % nranks);
        }
        NeighborShape::Grid2D => {
            let (rows, cols) = grid_dims(nranks);
            let (r, c) = (rank / cols, rank % cols);
            out.push(((r + 1) % rows) * cols + c);
            out.push(((r + rows - 1) % rows) * cols + c);
            out.push(r * cols + (c + 1) % cols);
            out.push(r * cols + (c + cols - 1) % cols);
        }
    }
    out.sort_unstable();
    out.dedup();
    out.retain(|&n| n != rank);
    out
}

/// The generic phased application.
pub struct PhasedApp {
    cfg: PhasedConfig,
    rng: SplitMix64,
    heap_range: Option<PageRange>,
    /// Permanent mmap blocks: (base size in pages, current mapping).
    perm: Vec<(u64, PageRange)>,
    /// Temporary workspace mapped for the current burst.
    temp: Option<PageRange>,
    /// Global sweep cursor (flat pages) so coverage cycles across
    /// kernels and iterations.
    sweep_offset: u64,
    iter: u64,
    /// false → next phase is the burst; true → next phase is the tail.
    in_tail: bool,
    initialized: bool,
}

impl PhasedApp {
    /// Build from configuration.
    pub fn new(cfg: PhasedConfig) -> Self {
        assert!(cfg.kernels > 0, "at least one kernel per iteration");
        assert!(cfg.peak_rate > 0.0 && cfg.init_rate > 0.0);
        assert!(cfg.ws_bytes > 0 && cfg.ws_bytes <= cfg.array_bytes * 2);
        let rng = SplitMix64::for_rank(cfg.seed, cfg.rank);
        Self {
            cfg,
            rng,
            heap_range: None,
            perm: Vec::new(),
            temp: None,
            sweep_offset: 0,
            iter: 0,
            in_tail: false,
            initialized: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PhasedConfig {
        &self.cfg
    }

    /// All currently mapped array ranges (including the burst
    /// workspace, when mapped).
    fn array_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::with_capacity(2 + self.perm.len());
        if let Some(t) = self.temp {
            out.push(t);
        }
        if let Some(h) = self.heap_range {
            out.push(h);
        }
        out.extend(self.perm.iter().map(|&(_, r)| r));
        out
    }

    /// Permanent array ranges (heap + perm blocks), excluding the
    /// transient workspace.
    fn permanent_ranges(&self) -> Vec<PageRange> {
        let mut out = Vec::with_capacity(1 + self.perm.len());
        if let Some(h) = self.heap_range {
            out.push(h);
        }
        out.extend(self.perm.iter().map(|&(_, r)| r));
        out
    }

    /// The working set: the first `ws_bytes` of the *permanent* arrays.
    /// The burst workspace is deliberately excluded — it is unmapped at
    /// iteration end, so its writes would vanish under memory
    /// exclusion; the persistent solution arrays are what an iteration
    /// overwrites (Table 3).
    fn working_set(&self) -> WorkingSet {
        let all = WorkingSet::new(self.permanent_ranges());
        let ws_pages = pages_for_bytes(self.cfg.ws_bytes).min(all.total_pages());
        let frac = ws_pages as f64 / all.total_pages() as f64;
        all.slice_frac(0.0, frac)
    }

    /// Ghost-cell target for exchanges from direction `dir`: a small
    /// slice at the start of the permanent arrays.
    fn ghost_range(&self, dir: usize, bytes: u64) -> Option<PageRange> {
        let pages = pages_for_bytes(bytes).max(1);
        let base = self.heap_range.or(self.perm.first().map(|&(_, r)| r))?;
        let offset = (dir as u64 * pages) % base.len.max(1);
        let len = pages.min(base.len - offset);
        (len > 0).then_some(PageRange::new(base.start + offset, len))
    }

    /// Communication steps after kernel `k`.
    fn comm_steps(&self, k: u32) -> Vec<Step> {
        match &self.cfg.comm {
            CommSpec::None => Vec::new(),
            CommSpec::Neighbors { shape, bytes, rounds } => {
                let nbrs = neighbors(self.cfg.rank, self.cfg.nranks, *shape);
                let mut steps = Vec::with_capacity(nbrs.len() * 2 * *rounds as usize);
                for round in 0..*rounds {
                    let tag = k * 64 + round;
                    for &nb in &nbrs {
                        steps.push(Step::Send { to: nb, tag, bytes: *bytes });
                    }
                    for (d, &nb) in nbrs.iter().enumerate() {
                        steps.push(Step::Recv { from: nb, tag, into: self.ghost_range(d, *bytes) });
                    }
                }
                steps
            }
            CommSpec::AllToAll { bytes_per_pair } => {
                vec![Step::AllToAll {
                    bytes_per_pair: *bytes_per_pair,
                    into: self.ghost_range(0, bytes_per_pair * (self.cfg.nranks as u64 - 1).max(1)),
                }]
            }
        }
    }

    /// Perform Sage's per-iteration dynamic memory work: churn some
    /// permanent blocks and map the temporary workspace.
    fn burst_alloc(&mut self, space: &mut dyn AddressSpace) -> Result<(), MemError> {
        if let AllocMode::SageChurn { temp_frac, churn_blocks, jitter, .. } = self.cfg.alloc {
            // Churn: free + re-map a few permanent blocks with jittered
            // sizes (Fortran 90 allocate/deallocate between cycles).
            for _ in 0..churn_blocks.min(self.perm.len() as u32) {
                let idx = self.rng.next_below(self.perm.len() as u64) as usize;
                let (base, old) = self.perm[idx];
                space.munmap(old)?;
                let factor = 1.0 + jitter * (2.0 * self.rng.next_f64() - 1.0);
                let new_pages = ((base as f64 * factor) as u64).max(1);
                let new = space.mmap(new_pages)?;
                self.perm[idx] = (base, new);
            }
            // Map the burst workspace.
            debug_assert!(self.temp.is_none(), "temp block leaked");
            let temp_pages = pages_for_bytes((self.cfg.array_bytes as f64 * temp_frac) as u64);
            if temp_pages > 0 {
                self.temp = Some(space.mmap(temp_pages)?);
            }
        }
        Ok(())
    }

    /// Free the burst workspace at the end of the burst.
    fn burst_free(&mut self, space: &mut dyn AddressSpace) -> Result<(), MemError> {
        if let Some(t) = self.temp.take() {
            space.munmap(t)?;
        }
        Ok(())
    }
}

impl AppModel for PhasedApp {
    fn name(&self) -> String {
        self.cfg.name.clone()
    }

    fn init(&mut self, space: &mut dyn AddressSpace) -> Result<Phase, MemError> {
        assert!(!self.initialized, "init called twice");
        let total_pages = pages_for_bytes(self.cfg.array_bytes);
        match self.cfg.alloc {
            AllocMode::StaticHeap => {
                self.heap_range = Some(space.heap_grow(total_pages)?);
            }
            AllocMode::SageChurn { perm_blocks, .. } => {
                // ~25 % heap (F77-style base arrays), rest in mmap
                // blocks (F90 allocatables), as §4.1 describes for the
                // Intel compilers.
                let heap_pages = total_pages / 4;
                self.heap_range = Some(space.heap_grow(heap_pages)?);
                let blocks = perm_blocks.max(1) as u64;
                let per_block = (total_pages - heap_pages) / blocks;
                for _ in 0..blocks {
                    let r = space.mmap(per_block.max(1))?;
                    self.perm.push((per_block.max(1), r));
                }
            }
        }
        self.initialized = true;
        // First-touch initialization sweep over everything mapped.
        let all = WorkingSet::new(self.array_ranges());
        let duration =
            SimDuration::from_secs_f64((all.total_pages() * PAGE_SIZE) as f64 / self.cfg.init_rate);
        Ok(Phase::continuing(vec![Step::Compute {
            duration,
            pattern: AccessPattern::Sweep {
                total_pages: all.total_pages(),
                set: all,
                start_offset: 0,
            },
        }]))
    }

    fn next_phase(&mut self, space: &mut dyn AddressSpace) -> Result<Phase, MemError> {
        assert!(self.initialized, "next_phase before init");
        if !self.in_tail {
            // ---- burst phase ----
            self.burst_alloc(space)?;
            let ws = self.working_set();
            let total_touch_pages = pages_for_bytes(self.cfg.touches_per_iter);
            let per_kernel = (total_touch_pages / self.cfg.kernels as u64).max(1);
            let mean_dur = (per_kernel * PAGE_SIZE) as f64 / self.cfg.peak_rate;
            let mut steps = Vec::with_capacity(self.cfg.kernels as usize * 6 + 1);
            // The workspace is first-touched once when it is mapped
            // (filled with scratch data); those writes show up in the
            // IWS but are later memory-excluded from checkpoints.
            if let Some(t) = self.temp {
                steps.push(Step::Compute {
                    duration: SimDuration::from_secs_f64(
                        (t.len * PAGE_SIZE) as f64 / self.cfg.peak_rate,
                    ),
                    pattern: AccessPattern::Sweep {
                        set: WorkingSet::new(vec![t]),
                        total_pages: t.len,
                        start_offset: 0,
                    },
                });
            }
            for k in 0..self.cfg.kernels {
                // Ramp kernel durations across the iteration (fast
                // kernels first): the sawtooth envelope is what makes
                // the *iteration* — not the kernel pair — the dominant
                // period in the IWS series.
                let ramp = if self.cfg.kernels > 1 {
                    2.0 * k as f64 / (self.cfg.kernels - 1) as f64 - 1.0
                } else {
                    0.0
                };
                let dur = mean_dur * (1.0 + self.cfg.kernel_skew * ramp);
                steps.push(Step::Compute {
                    duration: SimDuration::from_secs_f64(dur),
                    pattern: AccessPattern::Sweep {
                        set: ws.clone(),
                        total_pages: per_kernel,
                        start_offset: self.sweep_offset,
                    },
                });
                self.sweep_offset = (self.sweep_offset + per_kernel) % ws.total_pages().max(1);
                steps.extend(self.comm_steps(k));
            }
            self.in_tail = true;
            Ok(Phase::continuing(steps))
        } else {
            // ---- tail phase ----
            self.burst_free(space)?;
            let mut steps = Vec::new();
            if self.cfg.allreduce_bytes > 0 {
                steps.push(Step::Allreduce { bytes: self.cfg.allreduce_bytes });
            }
            let quiet = self.cfg.quiet();
            if !quiet.is_zero() {
                steps.push(Step::Compute { duration: quiet, pattern: AccessPattern::None });
            }
            self.in_tail = false;
            self.iter += 1;
            Ok(Phase::ending(steps))
        }
    }

    fn iterations_done(&self) -> u64 {
        self.iter
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.iter);
        w.put_u64(self.in_tail as u64);
        w.put_u64(self.sweep_offset);
        w.put_u64(self.rng_state());
        w.put_u64(self.heap_range.map_or(u64::MAX, |r| r.start));
        w.put_u64(self.heap_range.map_or(0, |r| r.len));
        w.put_u64(self.perm.len() as u64);
        for &(base, r) in &self.perm {
            w.put_u64(base);
            w.put_u64(r.start);
            w.put_u64(r.len);
        }
        match self.temp {
            Some(t) => {
                w.put_u64(1);
                w.put_u64(t.start);
                w.put_u64(t.len);
            }
            None => w.put_u64(0),
        }
        w.into_vec()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(state);
        self.iter = r.get_u64()?;
        self.in_tail = r.get_u64()? != 0;
        self.sweep_offset = r.get_u64()?;
        let rng_state = r.get_u64()?;
        self.rng = SplitMix64::new(0);
        self.set_rng_state(rng_state);
        let hs = r.get_u64()?;
        let hl = r.get_u64()?;
        self.heap_range = (hs != u64::MAX).then_some(PageRange::new(hs, hl));
        let n = r.get_u64()? as usize;
        self.perm.clear();
        for _ in 0..n {
            let base = r.get_u64()?;
            let start = r.get_u64()?;
            let len = r.get_u64()?;
            self.perm.push((base, PageRange::new(start, len)));
        }
        self.temp = if r.get_u64()? == 1 {
            let start = r.get_u64()?;
            let len = r.get_u64()?;
            Some(PageRange::new(start, len))
        } else {
            None
        };
        self.initialized = true;
        Ok(())
    }
}

impl PhasedApp {
    fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    fn set_rng_state(&mut self, s: u64) {
        self.rng.set_state(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_mem::{LayoutBuilder, SparseSpace};

    fn test_cfg(alloc: AllocMode, nranks: usize) -> PhasedConfig {
        PhasedConfig {
            name: "test".into(),
            rank: 0,
            nranks,
            array_bytes: 16 << 20, // 16 MiB
            ws_bytes: 8 << 20,
            period: SimDuration::from_secs(10),
            kernels: 4,
            touches_per_iter: 32 << 20,
            peak_rate: 16e6,
            comm: CommSpec::Neighbors { shape: NeighborShape::Ring, bytes: 4096, rounds: 1 },
            allreduce_bytes: 64,
            kernel_skew: 0.0,
            comm_budget: SimDuration::ZERO,
            alloc,
            init_rate: 100e6,
            seed: 7,
        }
    }

    fn space() -> SparseSpace {
        SparseSpace::new(
            LayoutBuilder::new()
                .static_bytes(1 << 20)
                .heap_capacity_bytes(64 << 20)
                .mmap_capacity_bytes(128 << 20)
                .build(),
        )
    }

    #[test]
    fn grid_dims_factorizations() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(6), (2, 3));
        assert_eq!(grid_dims(7), (1, 7));
        assert_eq!(grid_dims(64), (8, 8));
    }

    #[test]
    fn neighbor_topologies() {
        assert!(neighbors(0, 1, NeighborShape::Ring).is_empty());
        assert_eq!(neighbors(0, 2, NeighborShape::Ring), vec![1]);
        assert_eq!(neighbors(0, 4, NeighborShape::Ring), vec![1, 3]);
        let n = neighbors(5, 16, NeighborShape::Grid2D);
        assert_eq!(n.len(), 4);
        assert!(n.iter().all(|&x| x < 16 && x != 5));
    }

    #[test]
    fn init_allocates_and_first_touches() {
        let mut app = PhasedApp::new(test_cfg(AllocMode::StaticHeap, 4));
        let mut sp = space();
        let phase = app.init(&mut sp).unwrap();
        assert_eq!(sp.heap_pages(), pages_for_bytes(16 << 20));
        assert_eq!(phase.steps.len(), 1);
        match &phase.steps[0] {
            Step::Compute { pattern: AccessPattern::Sweep { total_pages, .. }, .. } => {
                assert_eq!(*total_pages, pages_for_bytes(16 << 20));
            }
            other => panic!("unexpected init step {other:?}"),
        }
    }

    #[test]
    fn burst_then_tail_structure() {
        let mut app = PhasedApp::new(test_cfg(AllocMode::StaticHeap, 4));
        let mut sp = space();
        app.init(&mut sp).unwrap();
        let burst = app.next_phase(&mut sp).unwrap();
        assert!(!burst.ends_iteration);
        let computes = burst.steps.iter().filter(|s| matches!(s, Step::Compute { .. })).count();
        assert_eq!(computes, 4, "one compute per kernel");
        let sends = burst.steps.iter().filter(|s| matches!(s, Step::Send { .. })).count();
        assert_eq!(sends, 8, "two ring neighbors x four kernels");
        let tail = app.next_phase(&mut sp).unwrap();
        assert!(tail.ends_iteration);
        assert!(matches!(tail.steps[0], Step::Allreduce { .. }));
        // Quiet tail: 32MiB at 16e6 B/s ≈ 2.1 s burst of a 10 s period.
        match tail.steps.last().unwrap() {
            Step::Compute { duration, pattern: AccessPattern::None } => {
                assert!(duration.as_secs_f64() > 7.0);
            }
            other => panic!("expected quiet tail, got {other:?}"),
        }
        assert_eq!(app.iterations_done(), 1);
    }

    #[test]
    fn sage_churn_maps_temp_during_burst_only() {
        let alloc =
            AllocMode::SageChurn { perm_blocks: 4, temp_frac: 0.25, churn_blocks: 1, jitter: 0.2 };
        let mut app = PhasedApp::new(test_cfg(alloc, 2));
        let mut sp = space();
        app.init(&mut sp).unwrap();
        let base_fp = sp.mapped_pages();
        app.next_phase(&mut sp).unwrap(); // burst: temp mapped
        assert!(sp.mapped_pages() > base_fp, "temp block mapped during burst");
        app.next_phase(&mut sp).unwrap(); // tail: temp freed
        let after = sp.mapped_pages();
        // Churn jitters one block, so footprint is near but not
        // necessarily equal to the base.
        let drift = (after as f64 - base_fp as f64).abs() / base_fp as f64;
        assert!(drift < 0.25, "footprint drift {drift}");
    }

    #[test]
    fn sweep_offset_advances_across_kernels() {
        let mut cfg = test_cfg(AllocMode::StaticHeap, 1);
        // 24 MiB of touches over an 8 MiB working set with 4 kernels:
        // 0.75 of a pass per kernel, so offsets rotate.
        cfg.touches_per_iter = 24 << 20;
        let mut app = PhasedApp::new(cfg);
        let mut sp = space();
        app.init(&mut sp).unwrap();
        let burst = app.next_phase(&mut sp).unwrap();
        let offsets: Vec<u64> = burst
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Compute { pattern: AccessPattern::Sweep { start_offset, .. }, .. } => {
                    Some(*start_offset)
                }
                _ => None,
            })
            .collect();
        assert_eq!(offsets.len(), 4);
        assert!(offsets.windows(2).all(|w| w[0] != w[1]), "kernels continue the sweep");
    }

    #[test]
    fn state_roundtrip_preserves_trajectory() {
        let alloc =
            AllocMode::SageChurn { perm_blocks: 3, temp_frac: 0.2, churn_blocks: 1, jitter: 0.2 };
        let mut a = PhasedApp::new(test_cfg(alloc.clone(), 2));
        let mut sp_a = space();
        a.init(&mut sp_a).unwrap();
        for _ in 0..4 {
            a.next_phase(&mut sp_a).unwrap();
        }
        let blob = a.save_state();

        // A freshly-built model restored from the blob, driving a clone
        // of the space, must generate the identical next phases.
        let mut b = PhasedApp::new(test_cfg(alloc, 2));
        b.restore_state(&blob).unwrap();
        let mut sp_b = sp_a.clone();
        for _ in 0..4 {
            let pa = a.next_phase(&mut sp_a).unwrap();
            let pb = b.next_phase(&mut sp_b).unwrap();
            assert_eq!(pa, pb);
        }
        assert_eq!(a.iterations_done(), b.iterations_done());
    }

    #[test]
    fn alltoall_comm() {
        let mut cfg = test_cfg(AllocMode::StaticHeap, 8);
        cfg.comm = CommSpec::AllToAll { bytes_per_pair: 1 << 20 };
        let mut app = PhasedApp::new(cfg);
        let mut sp = space();
        app.init(&mut sp).unwrap();
        let burst = app.next_phase(&mut sp).unwrap();
        let a2a = burst.steps.iter().filter(|s| matches!(s, Step::AllToAll { .. })).count();
        assert_eq!(a2a, 4, "one transpose per kernel");
    }
}
