//! Calibration constants: the paper's measurements as model inputs.
//!
//! Tables 2–4 of the paper characterize each application. We use those
//! numbers as *inputs* so our models write the right amount of memory
//! at the right rhythm; everything the reproduction then measures
//! (IB-vs-timeslice curves, ratios, scaling) is derived behaviour.
//!
//! | app          | footprint max/avg (MB) | period (s) | overwritten | IB max/avg (MB/s) |
//! |--------------|------------------------|-----------:|------------:|-------------------|
//! | Sage-1000MB  | 954.6 / 779.5          | 145        | 53 %        | 274.9 / 78.8      |
//! | Sage-500MB   | 497.3 / 407.3          | 80         | 54 %        | 186.9 / 49.9      |
//! | Sage-100MB   | 103.7 / 86.9           | 38         | 56 %        | 42.6 / 15         |
//! | Sage-50MB    | 55 / 45.2              | 20         | 57 %        | 24.9 / 9.6        |
//! | Sweep3D      | 105.5 / 105.5          | 7          | 52 %        | 79.1 / 49.5       |
//! | SP           | 40.1 / 40.1            | 0.16       | 72 %        | 32.6 / 32.6       |
//! | LU           | 16.6 / 16.6            | 0.7        | 72 %        | 12.5 / 12.5       |
//! | BT           | 76.5 / 76.5            | 0.4        | 92 %        | 72.7 / 68.6       |
//! | FT           | 118 / 118              | 1.2        | 57 %        | 101 / 92.1        |
//!
//! (MB = 10⁶ bytes, the paper's device-bandwidth convention.)

/// One application's paper-measured characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppCalib {
    /// Application name as used in the paper.
    pub name: &'static str,
    /// Maximum memory footprint (Table 2), MB.
    pub footprint_max_mb: f64,
    /// Average memory footprint (Table 2), MB.
    pub footprint_avg_mb: f64,
    /// Main-iteration period (Table 3), seconds.
    pub period_s: f64,
    /// Fraction of the footprint overwritten per iteration (Table 3).
    pub overwrite_frac: f64,
    /// Maximum IB at a 1 s timeslice (Table 4), MB/s.
    pub max_ib_mbps: f64,
    /// Average IB at a 1 s timeslice (Table 4), MB/s.
    pub avg_ib_mbps: f64,
}

impl AppCalib {
    /// Per-iteration working set in bytes: `overwrite_frac × avg
    /// footprint`.
    pub fn ws_bytes(&self) -> u64 {
        (self.overwrite_frac * self.footprint_avg_mb * 1e6) as u64
    }

    /// Total page-touch volume per iteration in bytes. At least one
    /// full pass over the working set (Table 3's overwrite), more when
    /// the measured average IB implies intra-iteration reuse
    /// (`avg_ib × period` exceeds the working set).
    pub fn touches_per_iter_bytes(&self) -> u64 {
        let by_ib = (self.avg_ib_mbps * self.period_s * 1e6) as u64;
        by_ib.max(self.ws_bytes())
    }

    /// Number of passes over the working set per iteration.
    pub fn passes_per_iter(&self) -> f64 {
        self.touches_per_iter_bytes() as f64 / self.ws_bytes() as f64
    }

    /// A copy with footprint, rates and volumes scaled by `factor`
    /// (periods unchanged) — used to run the same *shape* at test-size
    /// footprints.
    pub fn scaled(&self, factor: f64) -> AppCalib {
        AppCalib {
            footprint_max_mb: self.footprint_max_mb * factor,
            footprint_avg_mb: self.footprint_avg_mb * factor,
            max_ib_mbps: self.max_ib_mbps * factor,
            avg_ib_mbps: self.avg_ib_mbps * factor,
            ..*self
        }
    }
}

/// Sage with a ~1000 MB per-process footprint.
pub const SAGE_1000: AppCalib = AppCalib {
    name: "Sage-1000MB",
    footprint_max_mb: 954.6,
    footprint_avg_mb: 779.5,
    period_s: 145.0,
    overwrite_frac: 0.53,
    max_ib_mbps: 274.9,
    avg_ib_mbps: 78.8,
};

/// Sage with a ~500 MB footprint.
pub const SAGE_500: AppCalib = AppCalib {
    name: "Sage-500MB",
    footprint_max_mb: 497.3,
    footprint_avg_mb: 407.3,
    period_s: 80.0,
    overwrite_frac: 0.54,
    max_ib_mbps: 186.9,
    avg_ib_mbps: 49.9,
};

/// Sage with a ~100 MB footprint.
pub const SAGE_100: AppCalib = AppCalib {
    name: "Sage-100MB",
    footprint_max_mb: 103.7,
    footprint_avg_mb: 86.9,
    period_s: 38.0,
    overwrite_frac: 0.56,
    max_ib_mbps: 42.6,
    avg_ib_mbps: 15.0,
};

/// Sage with a ~50 MB footprint.
pub const SAGE_50: AppCalib = AppCalib {
    name: "Sage-50MB",
    footprint_max_mb: 55.0,
    footprint_avg_mb: 45.2,
    period_s: 20.0,
    overwrite_frac: 0.57,
    max_ib_mbps: 24.9,
    avg_ib_mbps: 9.6,
};

/// Sweep3D, 1000×1000×50 grid points.
pub const SWEEP3D: AppCalib = AppCalib {
    name: "Sweep3D",
    footprint_max_mb: 105.5,
    footprint_avg_mb: 105.5,
    period_s: 7.0,
    overwrite_frac: 0.52,
    max_ib_mbps: 79.1,
    avg_ib_mbps: 49.5,
};

/// NAS SP, class C.
pub const NAS_SP: AppCalib = AppCalib {
    name: "SP",
    footprint_max_mb: 40.1,
    footprint_avg_mb: 40.1,
    period_s: 0.16,
    overwrite_frac: 0.72,
    max_ib_mbps: 32.6,
    avg_ib_mbps: 32.6,
};

/// NAS LU, class C.
pub const NAS_LU: AppCalib = AppCalib {
    name: "LU",
    footprint_max_mb: 16.6,
    footprint_avg_mb: 16.6,
    period_s: 0.7,
    overwrite_frac: 0.72,
    max_ib_mbps: 12.5,
    avg_ib_mbps: 12.5,
};

/// NAS BT, class C.
pub const NAS_BT: AppCalib = AppCalib {
    name: "BT",
    footprint_max_mb: 76.5,
    footprint_avg_mb: 76.5,
    period_s: 0.4,
    overwrite_frac: 0.92,
    max_ib_mbps: 72.7,
    avg_ib_mbps: 68.6,
};

/// NAS FT, class C.
pub const NAS_FT: AppCalib = AppCalib {
    name: "FT",
    footprint_max_mb: 118.0,
    footprint_avg_mb: 118.0,
    period_s: 1.2,
    overwrite_frac: 0.57,
    max_ib_mbps: 101.0,
    avg_ib_mbps: 92.1,
};

/// All nine configurations in the paper's table order.
pub const ALL: [AppCalib; 9] =
    [SAGE_1000, SAGE_500, SAGE_100, SAGE_50, SWEEP3D, NAS_SP, NAS_LU, NAS_BT, NAS_FT];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_sets_match_paper_fractions() {
        let ws = SAGE_1000.ws_bytes() as f64 / 1e6;
        assert!((ws - 0.53 * 779.5).abs() < 0.1);
        let ws = NAS_BT.ws_bytes() as f64 / 1e6;
        assert!((ws - 0.92 * 76.5).abs() < 0.1);
    }

    #[test]
    fn touch_volume_is_at_least_one_pass() {
        for c in ALL {
            assert!(c.touches_per_iter_bytes() >= c.ws_bytes(), "{}", c.name);
            assert!(c.passes_per_iter() >= 1.0, "{}", c.name);
        }
    }

    #[test]
    fn sage_has_heavy_intra_iteration_reuse() {
        // 78.8 MB/s × 145 s ≈ 11.4 GB of touches over a 413 MB set.
        let passes = SAGE_1000.passes_per_iter();
        assert!(passes > 20.0 && passes < 35.0, "passes = {passes}");
    }

    #[test]
    fn nas_sp_is_single_pass() {
        // 32.6 × 0.16 = 5.2 MB < 28.9 MB working set → one pass.
        assert!((NAS_SP.passes_per_iter() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_period_and_fractions() {
        let s = SAGE_1000.scaled(0.01);
        assert_eq!(s.period_s, SAGE_1000.period_s);
        assert_eq!(s.overwrite_frac, SAGE_1000.overwrite_frac);
        assert!((s.footprint_avg_mb - 7.795).abs() < 1e-9);
        assert!((s.passes_per_iter() - SAGE_1000.passes_per_iter()).abs() < 1e-6);
    }
}
