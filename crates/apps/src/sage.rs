//! The Sage model.
//!
//! SAGE (SAIC's Adaptive Grid Eulerian hydrocode) is "a large-scale
//! parallel code written in Fortran90 and is representative of the ASCI
//! workload" (§5). The paper runs it at four per-process footprints
//! (50/100/500/1000 MB, set via cells-per-processor in the input deck)
//! and highlights two behaviours our model must reproduce:
//!
//! * **Dynamic memory**: "Sage dynamically allocates and deallocates a
//!   large part of its data structures" through both the heap and mmap
//!   (Fortran90 allocatables, §4.1). Modeled as
//!   [`AllocMode::SageChurn`]: permanent arrays split 25 % heap / 75 %
//!   mmap blocks, a temporary workspace mapped for each processing
//!   burst (which is why Table 2's max footprint exceeds the average),
//!   and per-iteration reallocation churn.
//! * **Long peaked iterations**: write bursts every 145 s (Fig 1a) with
//!   a peak write rate far above the period average (Table 4:
//!   274.9 max vs 78.8 avg MB/s at 1 s), i.e. a processing burst of
//!   roughly `touches / peak ≈ 42 s` followed by a long tail dominated
//!   by cache-resident solves and communication.
//!
//! Communication: ghost-cell ring exchanges after each kernel pass,
//! with `log₂ P` rounds (Sage's AMR gather/scatter works across levels)
//! plus a global conservation-sum allreduce per cycle — this is the
//! traffic visible in Fig 1(b).

use crate::calib::AppCalib;
use crate::phased::{AllocMode, CommSpec, NeighborShape, PhasedApp, PhasedConfig};
use ickpt_sim::SimDuration;

/// Ghost-exchange payload per neighbor per round (bytes, unscaled).
pub const EXCHANGE_BYTES: u64 = 512 * 1024;

/// Number of permanent mmap blocks.
pub const PERM_BLOCKS: u32 = 16;

/// First-touch initialization rate (bytes/s).
pub const INIT_RATE: f64 = 400e6;

/// Build a Sage model for one of the four footprint calibrations.
/// `scale` shrinks the footprint (and all write volumes) for test-sized
/// runs; 1.0 reproduces the paper configuration.
pub fn model(calib: &AppCalib, rank: usize, nranks: usize, scale: f64, seed: u64) -> PhasedApp {
    assert!(calib.name.starts_with("Sage"), "not a Sage calibration: {}", calib.name);
    let c = calib.scaled(scale);
    let ws = c.ws_bytes();
    let touches = c.touches_per_iter_bytes();
    // Peaked burst: the *fast* kernels (skewed short, see
    // `kernel_skew`) write at the measured peak rate, so the mean
    // kernel rate is `max_ib × (1 - skew)`; idle-ish tail after.
    let skew = 0.25;
    let peak_rate = c.max_ib_mbps * 1e6 * (1.0 - skew);
    let burst_s = touches as f64 / peak_rate;
    let duty = (burst_s / c.period_s).min(1.0);
    // The temporary workspace accounts for the max-vs-avg footprint gap
    // (Table 2); it is mapped only during the burst.
    let temp_bytes = ((c.footprint_max_mb - c.footprint_avg_mb) * 1e6).max(0.0);
    let array_bytes = (c.footprint_avg_mb * 1e6 - duty * temp_bytes).max(ws as f64) as u64;
    let temp_frac = temp_bytes / array_bytes as f64;
    let kernels = (c.passes_per_iter().round() as u32).clamp(1, 32);
    let rounds = (nranks as f64).log2().ceil().max(1.0) as u32;
    let comm = CommSpec::Neighbors {
        shape: NeighborShape::Ring,
        bytes: (EXCHANGE_BYTES as f64 * scale) as u64,
        rounds,
    };
    let comm_budget =
        SimDuration::from_secs_f64(comm.estimate_seconds_per_iter(rank, nranks, kernels, 340e6));
    PhasedApp::new(PhasedConfig {
        name: c.name.to_string(),
        rank,
        nranks,
        array_bytes,
        ws_bytes: ws,
        period: SimDuration::from_secs_f64(c.period_s),
        kernels,
        touches_per_iter: touches,
        peak_rate,
        comm,
        allreduce_bytes: 64 * 1024,
        kernel_skew: skew,
        comm_budget,
        alloc: AllocMode::SageChurn {
            perm_blocks: PERM_BLOCKS,
            temp_frac,
            churn_blocks: 2,
            jitter: 0.15,
        },
        init_rate: INIT_RATE * scale.max(0.05),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib;

    #[test]
    fn sage_1000_derivation_matches_paper_arithmetic() {
        let app = model(&calib::SAGE_1000, 0, 64, 1.0, 1);
        let cfg = app.config();
        // Working set ≈ 53% of 779.5 MB.
        assert!((cfg.ws_bytes as f64 / 1e6 - 413.1).abs() < 1.0);
        // ~28 kernel passes (11.4 GB of touches / 413 MB).
        assert_eq!(cfg.kernels, 28);
        // Burst ≈ 55 s of a 145 s period (mean rate = 0.75 × peak).
        assert!((cfg.burst().as_secs_f64() - 55.4).abs() < 1.5);
        assert!(cfg.quiet().as_secs_f64() > 85.0);
        // Temp workspace ≈ 175 MB (max - avg footprint).
        match cfg.alloc {
            AllocMode::SageChurn { temp_frac, .. } => {
                let temp_mb = temp_frac * cfg.array_bytes as f64 / 1e6;
                assert!((temp_mb - 175.1).abs() < 2.0, "temp = {temp_mb} MB");
            }
            _ => panic!("Sage must churn"),
        }
        // Average footprint ≈ arrays + duty × temp ≈ 779.5 MB.
        let duty = cfg.burst().as_secs_f64() / cfg.period.as_secs_f64();
        let avg = (cfg.array_bytes as f64 + duty * 175.1e6) / 1e6;
        assert!((avg - 779.5).abs() < 15.0, "avg footprint = {avg} MB");
    }

    #[test]
    fn rounds_grow_with_rank_count() {
        let p8 = model(&calib::SAGE_50, 0, 8, 1.0, 1);
        let p64 = model(&calib::SAGE_50, 0, 64, 1.0, 1);
        let r = |app: &PhasedApp| match app.config().comm {
            CommSpec::Neighbors { rounds, .. } => rounds,
            _ => 0,
        };
        assert_eq!(r(&p8), 3);
        assert_eq!(r(&p64), 6);
    }

    #[test]
    fn scaling_shrinks_memory_not_period() {
        let full = model(&calib::SAGE_100, 0, 4, 1.0, 1);
        let small = model(&calib::SAGE_100, 0, 4, 0.05, 1);
        assert_eq!(full.config().period, small.config().period);
        let ratio = full.config().array_bytes as f64 / small.config().array_bytes as f64;
        assert!((ratio - 20.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "not a Sage calibration")]
    fn rejects_non_sage_calibration() {
        model(&calib::NAS_FT, 0, 4, 1.0, 1);
    }
}
