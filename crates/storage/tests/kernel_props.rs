//! Property suite for the dispatched kernels (`ickpt_storage::kernels`).
//!
//! The contract is bit-identity: every backend the host can run must
//! compute exactly the function the scalar reference computes, on
//! every length class and alignment. The suite drives deterministic
//! SplitMix64-filled buffers through each table from
//! `kernels::available()` — on an AVX-512 x86_64 host that exercises
//! scalar, portable, sse2(+pclmul), avx2(+pclmul), and
//! avx512vl(+pclmul).

use ickpt_storage::hash::{
    hash64, page_block_hashes, page_hash_of_blocks, BLOCKS_PER_PAGE, BLOCK_SIZE,
};
use ickpt_storage::kernels::{self, BackendChoice};
use ickpt_storage::CHUNK_PAGE_SIZE;

fn splitmix_buf(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Lengths that cross every stride the kernels use (8/16/32/64/128-byte
/// inner loops, 256-byte blocks, 4 KiB pages) plus odd stragglers.
const LENGTHS: &[usize] = &[
    0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512,
    1023, 4096, 4097, 16384, 16411,
];

/// Misalignment offsets applied to a shared backing buffer.
const OFFSETS: &[usize] = &[0, 1, 3, 8, 13];

#[test]
fn all_backends_agree_is_zero_and_bytes_eq() {
    for table in kernels::available() {
        for &len in LENGTHS {
            for &off in OFFSETS {
                let buf = splitmix_buf(0xA11 ^ len as u64, len + off);
                let data = &buf[off..];
                // Random data: equality with itself, not with a flipped copy.
                assert!(!(table.is_zero)(data) || data.iter().all(|&b| b == 0));
                assert!((table.bytes_eq)(data, data), "{}: self-eq len {len}", table.name);
                let zeros = vec![0u8; len + off];
                assert!((table.is_zero)(&zeros[off..]), "{}: zeros len {len}", table.name);
                if len > 0 {
                    // Flip one byte at every stride boundary the SIMD
                    // loops care about, front, middle and back.
                    for pos in [0, len / 2, len - 1, len.saturating_sub(17).min(len - 1)] {
                        let mut one = zeros.clone();
                        one[off + pos] = 1;
                        assert!(
                            !(table.is_zero)(&one[off..]),
                            "{}: missed byte at {pos}/{len}",
                            table.name
                        );
                        let mut other = buf.clone();
                        other[off + pos] ^= 0x80;
                        assert!(
                            !(table.bytes_eq)(data, &other[off..]),
                            "{}: missed diff at {pos}/{len}",
                            table.name
                        );
                    }
                }
                // Length mismatch is never equal.
                if len > 0 {
                    assert!(!(table.bytes_eq)(data, &data[..len - 1]), "{}", table.name);
                }
            }
        }
    }
}

#[test]
fn all_backends_agree_xor_acc() {
    for table in kernels::available() {
        for &len in LENGTHS {
            for &off in OFFSETS {
                let acc0 = splitmix_buf(0xACC ^ len as u64, len + off);
                let data = splitmix_buf(0xDA7A ^ len as u64, len + off);
                let mut got = acc0.clone();
                (table.xor_acc)(&mut got[off..], &data[off..]);
                let mut want = acc0.clone();
                for i in off..off + len {
                    want[i] ^= data[i];
                }
                assert_eq!(got, want, "{}: xor len {len} off {off}", table.name);
                // XOR twice round-trips to the original.
                (table.xor_acc)(&mut got[off..], &data[off..]);
                assert_eq!(got, acc0, "{}: xor involution len {len}", table.name);
            }
        }
    }
}

#[test]
fn all_backends_agree_crc32() {
    for table in kernels::available() {
        for &len in LENGTHS {
            for &off in OFFSETS {
                let buf = splitmix_buf(0xC4C ^ len as u64, len + off);
                let data = &buf[off..];
                let want = (kernels::SCALAR.crc32_advance)(0xFFFF_FFFF, data);
                let got = (table.crc32_advance)(0xFFFF_FFFF, data);
                assert_eq!(got, want, "{}: crc len {len} off {off}", table.name);
                // Streaming splits must agree with one-shot, at split
                // points that land mid-way through the folding strides.
                for split in [1usize, 15, 16, 63, 64, 65, 129] {
                    if split <= len {
                        let s1 = (table.crc32_advance)(0xFFFF_FFFF, &data[..split]);
                        let s2 = (table.crc32_advance)(s1, &data[split..]);
                        assert_eq!(s2, want, "{}: split {split} len {len}", table.name);
                    }
                }
            }
        }
    }
}

#[test]
fn all_backends_agree_fused_scan() {
    for table in kernels::available() {
        // Block counts that hit the AVX2 pair loop (even), the odd
        // trailing block, the empty input, and full pages.
        for &blocks in &[0usize, 1, 2, 3, 4, 7, 15, 16, 64] {
            for &off in OFFSETS {
                let len = blocks * BLOCK_SIZE;
                let buf = splitmix_buf(0xF5D ^ blocks as u64, len + off);
                let data = &buf[off..];
                let mut got = vec![0u64; blocks];
                let scan = (table.fused_scan)(data, &mut got);
                let mut want = vec![0u64; blocks];
                let want_scan = (kernels::SCALAR.fused_scan)(data, &mut want);
                assert_eq!(got, want, "{}: blocks {blocks} off {off}", table.name);
                assert_eq!(scan, want_scan, "{}: blocks {blocks} off {off}", table.name);
                // And against the primitive calls directly.
                assert_eq!(scan.page_hash, page_hash_of_blocks(&want), "{}", table.name);
                assert_eq!(scan.is_zero, data.iter().all(|&b| b == 0), "{}", table.name);
                for (i, h) in got.iter().enumerate() {
                    assert_eq!(
                        *h,
                        hash64(&data[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]),
                        "{}: block {i}",
                        table.name
                    );
                }
            }
        }
    }
}

#[test]
fn fused_scan_zero_pages_report_zero() {
    for table in kernels::available() {
        let zeros = vec![0u8; CHUNK_PAGE_SIZE];
        let mut hashes = vec![0u64; BLOCKS_PER_PAGE];
        let scan = (table.fused_scan)(&zeros, &mut hashes);
        assert!(scan.is_zero, "{}", table.name);
        assert_eq!(scan.page_hash, page_hash_of_blocks(&hashes), "{}", table.name);
        // One bit anywhere flips is_zero, including in the last block
        // (the odd-tail path on SIMD backends with odd block counts).
        for pos in [0usize, 255, 256, 4095] {
            let mut page = zeros.clone();
            page[pos] = 2;
            let scan = (table.fused_scan)(&page, &mut hashes);
            assert!(!scan.is_zero, "{}: bit at {pos}", table.name);
        }
    }
}

/// The satellite contract verbatim: fused-scan output equals the
/// (zero-scan, `page_hash_of_blocks`, `page_block_hashes`) triple on
/// whole pages, through the public facade (whatever backend is
/// active).
#[test]
fn facade_fused_scan_matches_the_triple() {
    for seed in 0..8u64 {
        let page = splitmix_buf(seed, CHUNK_PAGE_SIZE);
        let mut fused = [0u64; BLOCKS_PER_PAGE];
        let scan = kernels::fused_scan(&page, &mut fused);
        let mut separate = [0u64; BLOCKS_PER_PAGE];
        page_block_hashes(&page, &mut separate);
        assert_eq!(fused, separate);
        assert_eq!(scan.page_hash, page_hash_of_blocks(&separate));
        assert_eq!(scan.is_zero, page.iter().all(|&b| b == 0));
        assert_eq!(scan.is_zero, kernels::is_zero(&page));
    }
}

#[test]
fn facade_rejects_mismatched_fused_lengths() {
    let data = [0u8; BLOCK_SIZE];
    let mut out = [0u64; 2];
    let err = std::panic::catch_unwind(move || {
        let mut out = out;
        kernels::fused_scan(&data, &mut out);
    });
    assert!(err.is_err(), "one block of data cannot fill two hash slots");
    let mut one = [0u64; 1];
    kernels::fused_scan(&data, &mut one);
    let _ = &mut out;
}

#[test]
fn env_knob_parses_strictly() {
    // Mirrors `knob_parsing_is_strict` in ickpt-bench: the parse is a
    // pure function so strictness is testable without a subprocess;
    // the process-exit path in `active()` wraps exactly this parser.
    assert_eq!(kernels::parse_backend("scalar"), Ok(BackendChoice::Scalar));
    assert_eq!(kernels::parse_backend("auto"), Ok(BackendChoice::Auto));
    assert!(kernels::parse_backend("fast").is_err());
    assert!(kernels::parse_backend("").is_err());
    let msg = kernels::parse_backend("avx512").unwrap_err();
    assert!(msg.contains("ICKPT_KERNELS=\"avx512\""), "{msg}");
    assert!(msg.contains("expected"), "{msg}");
}
