//! Checkpoint-chain merging and compaction.
//!
//! Incremental checkpointing trades write bandwidth (the paper's IB,
//! which it shows is small) for restore complexity: recovery must apply
//! a base snapshot plus every increment since. Left unchecked the chain
//! grows without bound, so production systems periodically *compact*:
//! merge the chain into a fresh base and drop the history. The paper
//! leaves this engineering to future systems; we implement it because a
//! usable library needs it, and the `chain_length` ablation bench
//! quantifies the restore-cost trade-off.

use std::collections::BTreeMap;

use crate::chunk::{Chunk, ChunkKind, PageRecord, CHUNK_PAGE_SIZE};
use crate::store::{ChunkKey, StableStorage, StorageError};

/// Merge an ordered checkpoint chain (base full chunk first, then each
/// increment in generation order) into a single full chunk carrying the
/// newest mapping state and the latest version of every page.
///
/// `keep` filters pages into the merged result; pass the mapped-state
/// predicate of the final generation to apply the paper's memory
/// exclusion (§4.2) during compaction, or `None` to keep everything.
pub fn merge_chain(chunks: &[Chunk], keep: Option<&dyn Fn(u64) -> bool>) -> Chunk {
    assert!(!chunks.is_empty(), "cannot merge an empty chain");
    assert_eq!(chunks[0].kind, ChunkKind::Full, "chain must start with a full chunk");
    for w in chunks.windows(2) {
        assert_eq!(w[1].kind, ChunkKind::Incremental, "only the first chunk may be full");
        assert_eq!(
            w[1].parent,
            Some(w[0].generation),
            "chain generations must be contiguous parent links"
        );
        assert_eq!(w[0].rank, w[1].rank, "chain must belong to one rank");
    }

    // Later records overwrite earlier ones page by page; elided zero
    // pages count as explicit zero content at their chunk's position
    // in the chain.
    let mut pages: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for chunk in chunks {
        for &(start, len) in &chunk.zero_ranges {
            for page in start..start + len {
                pages.insert(page, vec![0u8; CHUNK_PAGE_SIZE]);
            }
        }
        for rec in &chunk.records {
            for (i, page_bytes) in rec.data.chunks_exact(CHUNK_PAGE_SIZE).enumerate() {
                let page = rec.start_page + i as u64;
                pages.insert(page, page_bytes.to_vec());
            }
        }
    }
    if let Some(keep) = keep {
        pages.retain(|&p, _| keep(p));
    }

    // Re-coalesce into maximal contiguous records.
    let mut records: Vec<PageRecord> = Vec::new();
    for (page, data) in pages {
        match records.last_mut() {
            Some(last) if last.start_page + last.page_count() == page => {
                last.data.extend_from_slice(&data);
            }
            _ => records.push(PageRecord { start_page: page, data }),
        }
    }

    let newest = chunks.last().unwrap();
    Chunk {
        kind: ChunkKind::Full,
        rank: newest.rank,
        generation: newest.generation,
        parent: None,
        capture_time_ns: newest.capture_time_ns,
        heap_pages: newest.heap_pages,
        mmap_blocks: newest.mmap_blocks.clone(),
        zero_ranges: Vec::new(), // zeros re-materialized as content
        records,
        app_state: newest.app_state.clone(),
    }
}

/// Compact one rank's chain ending at `upto_gen` in `store`: replaces
/// the chunk at `upto_gen` with the merged full chunk and deletes the
/// superseded older generations. Returns the list of deleted
/// generations.
pub fn compact_rank_chain(
    store: &dyn StableStorage,
    rank: u32,
    chain_gens: &[u64],
    keep: Option<&dyn Fn(u64) -> bool>,
) -> Result<Vec<u64>, StorageError> {
    assert!(!chain_gens.is_empty());
    let mut chunks = Vec::with_capacity(chain_gens.len());
    for &g in chain_gens {
        let data = store.get_chunk(ChunkKey::new(rank, g))?;
        chunks.push(Chunk::decode(&data)?);
    }
    let merged = merge_chain(&chunks, keep);
    let upto = *chain_gens.last().unwrap();
    store.put_chunk(ChunkKey::new(rank, upto), &merged.encode())?;
    let mut deleted = Vec::new();
    for &g in &chain_gens[..chain_gens.len() - 1] {
        store.delete_chunk(ChunkKey::new(rank, g))?;
        deleted.push(g);
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; CHUNK_PAGE_SIZE]
    }

    fn full(rank: u32, generation: u64, recs: Vec<(u64, Vec<u8>)>) -> Chunk {
        Chunk {
            kind: ChunkKind::Full,
            rank,
            generation,
            parent: None,
            capture_time_ns: generation * 10,
            heap_pages: 8,
            mmap_blocks: vec![],
            zero_ranges: vec![],
            records: recs
                .into_iter()
                .map(|(start_page, data)| PageRecord { start_page, data })
                .collect(),
            app_state: vec![generation as u8],
        }
    }

    fn incr(rank: u32, generation: u64, parent: u64, recs: Vec<(u64, Vec<u8>)>) -> Chunk {
        Chunk { kind: ChunkKind::Incremental, parent: Some(parent), ..full(rank, generation, recs) }
    }

    #[test]
    fn later_pages_win() {
        let base = full(0, 1, vec![(0, [page(1), page(2)].concat())]);
        let inc = incr(0, 2, 1, vec![(1, page(9))]);
        let merged = merge_chain(&[base, inc], None);
        assert_eq!(merged.kind, ChunkKind::Full);
        assert_eq!(merged.generation, 2);
        assert_eq!(merged.payload_pages(), 2);
        // One coalesced record with page 0 = old, page 1 = new.
        assert_eq!(merged.records.len(), 1);
        assert_eq!(merged.records[0].data[..CHUNK_PAGE_SIZE], page(1)[..]);
        assert_eq!(merged.records[0].data[CHUNK_PAGE_SIZE..], page(9)[..]);
    }

    #[test]
    fn increments_add_new_pages_and_records_coalesce() {
        let base = full(0, 1, vec![(0, page(1))]);
        let inc1 = incr(0, 2, 1, vec![(2, page(2))]);
        let inc2 = incr(0, 3, 2, vec![(1, page(3))]);
        let merged = merge_chain(&[base, inc1, inc2], None);
        assert_eq!(merged.payload_pages(), 3);
        assert_eq!(merged.records.len(), 1, "pages 0,1,2 coalesce");
    }

    #[test]
    fn keep_filter_applies_memory_exclusion() {
        let base = full(0, 1, vec![(0, [page(1), page(2), page(3)].concat())]);
        let keep = |p: u64| p != 1;
        let merged = merge_chain(&[base], Some(&keep));
        assert_eq!(merged.payload_pages(), 2);
        assert_eq!(merged.records.len(), 2, "hole splits the record");
        assert_eq!(merged.records[0].start_page, 0);
        assert_eq!(merged.records[1].start_page, 2);
    }

    #[test]
    #[should_panic(expected = "chain must start with a full chunk")]
    fn chain_must_start_full() {
        let inc = incr(0, 2, 1, vec![]);
        merge_chain(&[inc], None);
    }

    #[test]
    #[should_panic(expected = "contiguous parent links")]
    fn chain_links_must_be_contiguous() {
        let base = full(0, 1, vec![]);
        let inc = incr(0, 5, 3, vec![]);
        merge_chain(&[base, inc], None);
    }

    #[test]
    fn compaction_in_store_roundtrip() {
        let store = MemStore::new();
        let base = full(7, 1, vec![(0, page(1))]);
        let inc = incr(7, 2, 1, vec![(0, page(5)), (4, page(6))]);
        store.put_chunk(ChunkKey::new(7, 1), &base.encode()).unwrap();
        store.put_chunk(ChunkKey::new(7, 2), &inc.encode()).unwrap();

        let deleted = compact_rank_chain(&store, 7, &[1, 2], None).unwrap();
        assert_eq!(deleted, vec![1]);
        assert!(store.get_chunk(ChunkKey::new(7, 1)).is_err());
        let merged = Chunk::decode(&store.get_chunk(ChunkKey::new(7, 2)).unwrap()).unwrap();
        assert_eq!(merged.kind, ChunkKind::Full);
        assert_eq!(merged.payload_pages(), 2);
        assert_eq!(merged.records[0].data[..CHUNK_PAGE_SIZE], page(5)[..]);
    }

    #[test]
    fn mapping_state_comes_from_newest() {
        let mut base = full(0, 1, vec![]);
        base.heap_pages = 4;
        let mut inc = incr(0, 2, 1, vec![]);
        inc.heap_pages = 12;
        inc.mmap_blocks = vec![(50, 2)];
        let merged = merge_chain(&[base, inc], None);
        assert_eq!(merged.heap_pages, 12);
        assert_eq!(merged.mmap_blocks, vec![(50, 2)]);
    }
}
