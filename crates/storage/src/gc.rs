//! Checkpoint-chain merging and compaction.
//!
//! Incremental checkpointing trades write bandwidth (the paper's IB,
//! which it shows is small) for restore complexity: recovery must apply
//! a base snapshot plus every increment since. Left unchecked the chain
//! grows without bound, so production systems periodically *compact*:
//! merge the chain into a fresh base and drop the history. The paper
//! leaves this engineering to future systems; we implement it because a
//! usable library needs it, and the `chain_length` ablation bench
//! quantifies the restore-cost trade-off.
//!
//! Compaction executes a [`RestorePlan`]: the chain is walked once,
//! each live page is copied once from the single newest record that
//! contains it, and elided zero runs stay elided in the merged base
//! (they are re-emitted as `zero_ranges`, not materialized as 4 KiB of
//! zero content).

use crate::chunk::{Chunk, ChunkKind, PageRecord, CHUNK_PAGE_SIZE};
use crate::plan::{DeltaBase, RestorePlan, SegmentSource};
use crate::store::{ChunkKey, StableStorage, StorageError};

/// Merge an ordered checkpoint chain (base full chunk first, then each
/// increment in generation order) into a single full chunk carrying the
/// newest mapping state and the latest version of every page.
///
/// `keep` filters pages into the merged result; pass the mapped-state
/// predicate of the final generation to apply the paper's memory
/// exclusion (§4.2) during compaction, or `None` to keep everything.
pub fn merge_chain(chunks: &[Chunk], keep: Option<&dyn Fn(u64) -> bool>) -> Chunk {
    assert!(!chunks.is_empty(), "cannot merge an empty chain");
    assert_eq!(chunks[0].kind, ChunkKind::Full, "chain must start with a full chunk");
    for w in chunks.windows(2) {
        assert_eq!(w[1].kind, ChunkKind::Incremental, "only the first chunk may be full");
        assert_eq!(
            w[1].parent,
            Some(w[0].generation),
            "chain generations must be contiguous parent links"
        );
        assert_eq!(w[0].rank, w[1].rank, "chain must belong to one rank");
    }

    // One planning walk assigns each live page to the newest record
    // that contains it; executing the sorted segments copies each live
    // page exactly once and emits maximal coalesced records.
    let plan = RestorePlan::build(chunks, keep);
    let mut records: Vec<PageRecord> = Vec::new();
    let mut zero_ranges: Vec<(u64, u64)> = Vec::new();
    for seg in &plan.segments {
        match seg.source {
            SegmentSource::Zero => match zero_ranges.last_mut() {
                Some(last) if last.0 + last.1 == seg.start_page => last.1 += seg.pages,
                _ => zero_ranges.push((seg.start_page, seg.pages)),
            },
            SegmentSource::Record { rec, rec_page_offset } => {
                let bytes = &chunks[seg.chunk].records[rec].data
                    [rec_page_offset as usize * CHUNK_PAGE_SIZE..]
                    [..seg.pages as usize * CHUNK_PAGE_SIZE];
                match records.last_mut() {
                    Some(last) if last.start_page + last.page_count() == seg.start_page => {
                        last.data.extend_from_slice(bytes);
                    }
                    _ => records
                        .push(PageRecord { start_page: seg.start_page, data: bytes.to_vec() }),
                }
            }
            // A delta-encoded page is materialized whole into the
            // merged base: unchanged blocks from its base page,
            // changed blocks overlaid from the delta record. Merged
            // chains therefore carry no delta records at all.
            SegmentSource::Delta { rec, base } => {
                let mut page = [0u8; CHUNK_PAGE_SIZE];
                if let DeltaBase::Record { chunk, rec: brec, rec_page_offset } = base {
                    page.copy_from_slice(
                        &chunks[chunk].records[brec].data
                            [rec_page_offset as usize * CHUNK_PAGE_SIZE..][..CHUNK_PAGE_SIZE],
                    );
                }
                for (block, bytes) in chunks[seg.chunk].delta_records[rec].blocks() {
                    let off = block * crate::hash::BLOCK_SIZE;
                    page[off..off + crate::hash::BLOCK_SIZE].copy_from_slice(bytes);
                }
                match records.last_mut() {
                    Some(last) if last.start_page + last.page_count() == seg.start_page => {
                        last.data.extend_from_slice(&page);
                    }
                    _ => {
                        records.push(PageRecord { start_page: seg.start_page, data: page.to_vec() })
                    }
                }
            }
        }
    }

    let newest = chunks.last().unwrap();
    Chunk {
        kind: ChunkKind::Full,
        rank: newest.rank,
        generation: newest.generation,
        parent: None,
        capture_time_ns: newest.capture_time_ns,
        heap_pages: newest.heap_pages,
        mmap_blocks: newest.mmap_blocks.clone(),
        zero_ranges,
        records,
        delta_records: vec![],
        // Content-layer accounting survives compaction: the merged
        // base remembers how many silent-same pages the chain dropped.
        dropped_pages: chunks.iter().map(|c| c.dropped_pages).sum(),
        app_state: newest.app_state.clone(),
    }
}

/// Compact one rank's chain ending at `upto_gen` in `store`: replaces
/// the chunk at `upto_gen` with the merged full chunk and deletes the
/// superseded older generations. Returns the list of deleted
/// generations.
pub fn compact_rank_chain(
    store: &dyn StableStorage,
    rank: u32,
    chain_gens: &[u64],
    keep: Option<&dyn Fn(u64) -> bool>,
) -> Result<Vec<u64>, StorageError> {
    assert!(!chain_gens.is_empty());
    let mut chunks = Vec::with_capacity(chain_gens.len());
    for &g in chain_gens {
        let data = store.get_chunk(ChunkKey::new(rank, g))?;
        chunks.push(Chunk::decode(&data)?);
    }
    let merged = merge_chain(&chunks, keep);
    let upto = *chain_gens.last().unwrap();
    store.put_chunk(ChunkKey::new(rank, upto), &merged.encode())?;
    let mut deleted = Vec::new();
    for &g in &chain_gens[..chain_gens.len() - 1] {
        store.delete_chunk(ChunkKey::new(rank, g))?;
        deleted.push(g);
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; CHUNK_PAGE_SIZE]
    }

    fn full(rank: u32, generation: u64, recs: Vec<(u64, Vec<u8>)>) -> Chunk {
        Chunk {
            kind: ChunkKind::Full,
            rank,
            generation,
            parent: None,
            capture_time_ns: generation * 10,
            heap_pages: 8,
            mmap_blocks: vec![],
            zero_ranges: vec![],
            records: recs
                .into_iter()
                .map(|(start_page, data)| PageRecord { start_page, data })
                .collect(),
            delta_records: vec![],
            dropped_pages: 0,
            app_state: vec![generation as u8],
        }
    }

    fn incr(rank: u32, generation: u64, parent: u64, recs: Vec<(u64, Vec<u8>)>) -> Chunk {
        Chunk { kind: ChunkKind::Incremental, parent: Some(parent), ..full(rank, generation, recs) }
    }

    #[test]
    fn later_pages_win() {
        let base = full(0, 1, vec![(0, [page(1), page(2)].concat())]);
        let inc = incr(0, 2, 1, vec![(1, page(9))]);
        let merged = merge_chain(&[base, inc], None);
        assert_eq!(merged.kind, ChunkKind::Full);
        assert_eq!(merged.generation, 2);
        assert_eq!(merged.payload_pages(), 2);
        // One coalesced record with page 0 = old, page 1 = new.
        assert_eq!(merged.records.len(), 1);
        assert_eq!(merged.records[0].data[..CHUNK_PAGE_SIZE], page(1)[..]);
        assert_eq!(merged.records[0].data[CHUNK_PAGE_SIZE..], page(9)[..]);
    }

    #[test]
    fn increments_add_new_pages_and_records_coalesce() {
        let base = full(0, 1, vec![(0, page(1))]);
        let inc1 = incr(0, 2, 1, vec![(2, page(2))]);
        let inc2 = incr(0, 3, 2, vec![(1, page(3))]);
        let merged = merge_chain(&[base, inc1, inc2], None);
        assert_eq!(merged.payload_pages(), 3);
        assert_eq!(merged.records.len(), 1, "pages 0,1,2 coalesce");
    }

    #[test]
    fn keep_filter_applies_memory_exclusion() {
        let base = full(0, 1, vec![(0, [page(1), page(2), page(3)].concat())]);
        let keep = |p: u64| p != 1;
        let merged = merge_chain(&[base], Some(&keep));
        assert_eq!(merged.payload_pages(), 2);
        assert_eq!(merged.records.len(), 2, "hole splits the record");
        assert_eq!(merged.records[0].start_page, 0);
        assert_eq!(merged.records[1].start_page, 2);
    }

    #[test]
    fn zero_runs_stay_elided_through_merge() {
        // Base: content at 0..2, elided zeros at 4..7. Increment
        // overwrites zero page 5 with content and zeroes page 1.
        let mut base = full(0, 1, vec![(0, [page(1), page(2)].concat())]);
        base.zero_ranges = vec![(4, 3)];
        let mut inc = incr(0, 2, 1, vec![(5, page(9))]);
        inc.zero_ranges = vec![(1, 1)];
        let merged = merge_chain(&[base, inc], None);
        assert_eq!(merged.payload_pages(), 2, "only pages 0 and 5 are content");
        assert_eq!(
            merged.zero_ranges,
            vec![(1, 1), (4, 1), (6, 1)],
            "zeros stay elided, split around the overwritten page"
        );
        assert_eq!(merged.records[0].start_page, 0);
        assert_eq!(merged.records[1].start_page, 5);
        assert_eq!(merged.records[1].data, page(9));
    }

    #[test]
    fn delta_pages_materialize_through_merge() {
        use crate::chunk::DeltaRecord;
        use crate::hash::BLOCK_SIZE;
        // Base stores page 0 whole and elides zero page 2; an increment
        // delta-encodes block 1 of page 0 and block 0 of zero page 2.
        let mut base = full(0, 1, vec![(0, page(1))]);
        base.zero_ranges = vec![(2, 1)];
        let mut inc = incr(0, 2, 1, vec![]);
        inc.delta_records = vec![
            DeltaRecord { page: 0, mask: 0b10, data: vec![7; BLOCK_SIZE] },
            DeltaRecord { page: 2, mask: 0b01, data: vec![9; BLOCK_SIZE] },
        ];
        inc.dropped_pages = 3;
        let merged = merge_chain(&[base, inc], None);
        assert!(merged.delta_records.is_empty(), "merged base stores pages whole");
        assert_eq!(merged.payload_pages(), 2);
        assert_eq!(merged.dropped_pages, 3, "content accounting survives compaction");
        let p0 = &merged.records[0].data[..CHUNK_PAGE_SIZE];
        assert!(p0[..BLOCK_SIZE].iter().all(|&b| b == 1), "unchanged block from base");
        assert!(p0[BLOCK_SIZE..2 * BLOCK_SIZE].iter().all(|&b| b == 7), "changed block");
        assert!(p0[2 * BLOCK_SIZE..].iter().all(|&b| b == 1));
        let rec2 = merged.records.iter().find(|r| r.start_page == 2).unwrap();
        assert!(rec2.data[..BLOCK_SIZE].iter().all(|&b| b == 9), "changed block over zero");
        assert!(rec2.data[BLOCK_SIZE..].iter().all(|&b| b == 0), "zero base preserved");
        assert!(merged.zero_ranges.is_empty(), "page 2 became content");
        // A merged chain must round-trip and re-merge cleanly.
        let again = merge_chain(std::slice::from_ref(&merged), None);
        assert_eq!(again.records, merged.records);
    }

    #[test]
    #[should_panic(expected = "chain must start with a full chunk")]
    fn chain_must_start_full() {
        let inc = incr(0, 2, 1, vec![]);
        merge_chain(&[inc], None);
    }

    #[test]
    #[should_panic(expected = "contiguous parent links")]
    fn chain_links_must_be_contiguous() {
        let base = full(0, 1, vec![]);
        let inc = incr(0, 5, 3, vec![]);
        merge_chain(&[base, inc], None);
    }

    #[test]
    fn compaction_in_store_roundtrip() {
        let store = MemStore::new();
        let base = full(7, 1, vec![(0, page(1))]);
        let inc = incr(7, 2, 1, vec![(0, page(5)), (4, page(6))]);
        store.put_chunk(ChunkKey::new(7, 1), &base.encode()).unwrap();
        store.put_chunk(ChunkKey::new(7, 2), &inc.encode()).unwrap();

        let deleted = compact_rank_chain(&store, 7, &[1, 2], None).unwrap();
        assert_eq!(deleted, vec![1]);
        assert!(store.get_chunk(ChunkKey::new(7, 1)).is_err());
        let merged = Chunk::decode(&store.get_chunk(ChunkKey::new(7, 2)).unwrap()).unwrap();
        assert_eq!(merged.kind, ChunkKind::Full);
        assert_eq!(merged.payload_pages(), 2);
        assert_eq!(merged.records[0].data[..CHUNK_PAGE_SIZE], page(5)[..]);
    }

    #[test]
    fn mapping_state_comes_from_newest() {
        let mut base = full(0, 1, vec![]);
        base.heap_pages = 4;
        let mut inc = incr(0, 2, 1, vec![]);
        inc.heap_pages = 12;
        inc.mmap_blocks = vec![(50, 2)];
        let merged = merge_chain(&[base, inc], None);
        assert_eq!(merged.heap_pages, 12);
        assert_eq!(merged.mmap_blocks, vec![(50, 2)]);
    }
}
