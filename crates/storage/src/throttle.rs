//! Virtual-time bandwidth accounting for checkpoint traffic.
//!
//! §3 of the paper frames feasibility as "required bandwidth vs
//! available bandwidth" on two devices: the interconnect (QsNet II,
//! 900 MB/s) and the storage array (SCSI, 320 MB/s). A
//! [`ThrottledStore`] wraps any [`StableStorage`] with a
//! [`BandwidthDevice`], so writing a checkpoint chunk *takes virtual
//! time*, and a checkpointing run directly exhibits the stall the
//! paper's analysis predicts.

use std::sync::Arc;

use ickpt_obs::{Event, Lane, Recorder};
use ickpt_sim::{BandwidthDevice, SimTime, Transfer};
use parking_lot::Mutex;

use crate::store::{ChunkKey, StableStorage, StorageError};

/// A device handle that several `ThrottledStore`s can serialize on —
/// the model of a *shared* storage path (one parallel-filesystem array
/// serving every rank) as opposed to per-rank local disks.
pub type SharedBandwidthDevice = Arc<Mutex<BandwidthDevice>>;

/// Wrap a device for sharing across ranks.
pub fn shared_device(device: BandwidthDevice) -> SharedBandwidthDevice {
    Arc::new(Mutex::new(device))
}

/// A bandwidth-limited path to stable storage.
///
/// Each rank owns its own `ThrottledStore`. With [`ThrottledStore::new`]
/// the device is private (a per-rank disk path, deterministic
/// completion times); with [`ThrottledStore::with_shared_device`]
/// several ranks contend on one device (a shared storage array, FIFO
/// completion — per-rank service order depends on arrival order).
pub struct ThrottledStore {
    inner: Arc<dyn StableStorage>,
    device: SharedBandwidthDevice,
    obs: Recorder,
    rank_lane: Lane,
    dev_lane: Lane,
}

impl ThrottledStore {
    /// Wrap `inner` behind a private `device`.
    pub fn new(inner: Arc<dyn StableStorage>, device: BandwidthDevice) -> Self {
        Self {
            inner,
            device: Arc::new(Mutex::new(device)),
            obs: Recorder::disabled(),
            rank_lane: Lane::Run,
            dev_lane: Lane::Run,
        }
    }

    /// Wrap `inner` behind a device shared with other ranks.
    pub fn with_shared_device(
        inner: Arc<dyn StableStorage>,
        device: SharedBandwidthDevice,
    ) -> Self {
        Self { inner, device, obs: Recorder::disabled(), rank_lane: Lane::Run, dev_lane: Lane::Run }
    }

    /// Attach a flight recorder: chunk/manifest traffic is recorded on
    /// `rank_lane`, device occupancy on `dev_lane`.
    pub fn observed(mut self, obs: Recorder, rank_lane: Lane, dev_lane: Lane) -> Self {
        self.obs = obs;
        self.rank_lane = rank_lane;
        self.dev_lane = dev_lane;
        self
    }

    /// Record one device transfer on the device lane (occupancy span)
    /// and return the breakdown for the caller's traffic event.
    #[inline]
    fn charge_device(&self, now: SimTime, bytes: u64) -> Transfer {
        let t = self.device.lock().transfer_detailed(now, bytes);
        self.obs.emit_span(
            self.dev_lane,
            t.start,
            t.service,
            Event::DeviceTransfer { bytes, queue_wait_ns: t.queue_wait.0, service_ns: t.service.0 },
        );
        t
    }

    /// Write a chunk at virtual time `now`; returns the instant the
    /// write completes on the device.
    pub fn put_chunk_timed(
        &self,
        now: SimTime,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        self.inner.put_chunk(key, data)?;
        let t = self.charge_device(now, data.len() as u64);
        self.obs.emit_span(
            self.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ChunkPut {
                generation: key.generation,
                bytes: data.len() as u64,
                queue_wait_ns: t.queue_wait.0,
                service_ns: t.service.0,
            },
        );
        Ok(t.done)
    }

    /// Write a manifest at virtual time `now`; returns completion time.
    pub fn put_manifest_timed(
        &self,
        now: SimTime,
        generation: u64,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        self.inner.put_manifest(generation, data)?;
        let t = self.charge_device(now, data.len() as u64);
        self.obs.emit_span(
            self.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ManifestPut { generation, bytes: data.len() as u64 },
        );
        Ok(t.done)
    }

    /// Read a chunk at virtual time `now`; returns the data and the
    /// instant the read completes (restores cost time too).
    pub fn get_chunk_timed(
        &self,
        now: SimTime,
        key: ChunkKey,
    ) -> Result<(Vec<u8>, SimTime), StorageError> {
        let data = self.inner.get_chunk(key)?;
        let t = self.charge_device(now, data.len() as u64);
        self.obs.emit_span(
            self.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ChunkGet {
                generation: key.generation,
                bytes: data.len() as u64,
                queue_wait_ns: t.queue_wait.0,
                service_ns: t.service.0,
            },
        );
        Ok((data, t.done))
    }

    /// Read a manifest at virtual time `now`; returns the data and the
    /// instant the read completes. Resume paths use this so the
    /// manifest lookup that picks the restore generation is charged
    /// device time like every other restore read.
    pub fn get_manifest_timed(
        &self,
        now: SimTime,
        generation: u64,
    ) -> Result<(Vec<u8>, SimTime), StorageError> {
        let data = self.inner.get_manifest(generation)?;
        let t = self.charge_device(now, data.len() as u64);
        Ok((data, t.done))
    }

    /// Total bytes pushed through this path.
    pub fn bytes_total(&self) -> u64 {
        self.device.lock().bytes_total()
    }

    /// The wrapped untimed store.
    pub fn inner(&self) -> &Arc<dyn StableStorage> {
        &self.inner
    }

    /// A [`StableStorage`] view of this path whose reads (and writes)
    /// advance an internal virtual clock starting at `start`. This lets
    /// code written against plain `StableStorage` — the restore path —
    /// be charged device time per byte exactly like checkpoint writes,
    /// so restart-time verdicts use the same 320 MB/s disk model as
    /// capture. Inspect the accumulated cost with [`TimedReads::now`].
    pub fn timed_reads(&self, start: SimTime) -> TimedReads<'_> {
        TimedReads { store: self, clock: Mutex::new(start) }
    }
}

/// See [`ThrottledStore::timed_reads`].
pub struct TimedReads<'a> {
    store: &'a ThrottledStore,
    clock: Mutex<SimTime>,
}

impl TimedReads<'_> {
    /// Virtual instant the last charged transfer completed.
    pub fn now(&self) -> SimTime {
        *self.clock.lock()
    }

    fn charge(&self, bytes: u64) -> (SimTime, Transfer) {
        let mut clock = self.clock.lock();
        let now = *clock;
        let t = self.store.charge_device(now, bytes);
        *clock = t.done;
        (now, t)
    }
}

impl StableStorage for TimedReads<'_> {
    fn put_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        self.store.inner.put_chunk(key, data)?;
        let (now, t) = self.charge(data.len() as u64);
        self.store.obs.emit_span(
            self.store.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ChunkPut {
                generation: key.generation,
                bytes: data.len() as u64,
                queue_wait_ns: t.queue_wait.0,
                service_ns: t.service.0,
            },
        );
        Ok(())
    }

    fn get_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        let data = self.store.inner.get_chunk(key)?;
        let (now, t) = self.charge(data.len() as u64);
        self.store.obs.emit_span(
            self.store.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ChunkGet {
                generation: key.generation,
                bytes: data.len() as u64,
                queue_wait_ns: t.queue_wait.0,
                service_ns: t.service.0,
            },
        );
        Ok(data)
    }

    fn delete_chunk(&self, key: ChunkKey) -> Result<(), StorageError> {
        self.store.inner.delete_chunk(key)
    }

    fn list_generations(&self, rank: u32) -> Result<Vec<u64>, StorageError> {
        self.store.inner.list_generations(rank)
    }

    fn put_manifest(&self, generation: u64, data: &[u8]) -> Result<(), StorageError> {
        self.store.inner.put_manifest(generation, data)?;
        let (now, t) = self.charge(data.len() as u64);
        self.store.obs.emit_span(
            self.store.rank_lane,
            now,
            t.done.saturating_sub(now),
            Event::ManifestPut { generation, bytes: data.len() as u64 },
        );
        Ok(())
    }

    fn get_manifest(&self, generation: u64) -> Result<Vec<u8>, StorageError> {
        let data = self.store.inner.get_manifest(generation)?;
        self.charge(data.len() as u64);
        Ok(data)
    }

    fn delete_manifest(&self, generation: u64) -> Result<(), StorageError> {
        self.store.inner.delete_manifest(generation)
    }

    fn list_manifests(&self) -> Result<Vec<u64>, StorageError> {
        self.store.inner.list_manifests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use ickpt_sim::SimDuration;

    fn throttled(bw: u64) -> ThrottledStore {
        ThrottledStore::new(Arc::new(MemStore::new()), BandwidthDevice::new(bw, SimDuration::ZERO))
    }

    #[test]
    fn writes_cost_virtual_time() {
        let s = throttled(1_000_000); // 1 MB/s
        let done = s.put_chunk_timed(SimTime::ZERO, ChunkKey::new(0, 0), &[0u8; 500_000]).unwrap();
        assert_eq!(done, SimTime::from_secs_f64(0.5));
        // A second write queues behind the first.
        let done2 = s.put_chunk_timed(SimTime::ZERO, ChunkKey::new(0, 1), &[0u8; 500_000]).unwrap();
        assert_eq!(done2, SimTime::from_secs(1));
        assert_eq!(s.bytes_total(), 1_000_000);
    }

    #[test]
    fn data_lands_in_inner_store() {
        let s = throttled(1_000_000);
        s.put_chunk_timed(SimTime::ZERO, ChunkKey::new(1, 2), b"abc").unwrap();
        assert_eq!(s.inner().get_chunk(ChunkKey::new(1, 2)).unwrap(), b"abc");
        let (data, done) = s.get_chunk_timed(SimTime::from_secs(1), ChunkKey::new(1, 2)).unwrap();
        assert_eq!(data, b"abc");
        assert!(done > SimTime::from_secs(1));
    }

    #[test]
    fn shared_device_serializes_across_stores() {
        let inner: Arc<dyn StableStorage> = Arc::new(MemStore::new());
        let dev = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let a = ThrottledStore::with_shared_device(inner.clone(), dev.clone());
        let b = ThrottledStore::with_shared_device(inner, dev);
        let t1 = a.put_chunk_timed(SimTime::ZERO, ChunkKey::new(0, 0), &[0u8; 500_000]).unwrap();
        let t2 = b.put_chunk_timed(SimTime::ZERO, ChunkKey::new(1, 0), &[0u8; 500_000]).unwrap();
        assert_eq!(t1, SimTime::from_secs_f64(0.5));
        assert_eq!(t2, SimTime::from_secs(1), "second store queues on the shared array");
    }

    #[test]
    fn timed_reads_charge_restore_traffic() {
        let s = throttled(1_000_000); // 1 MB/s
        s.inner().put_chunk(ChunkKey::new(0, 0), &[7u8; 250_000]).unwrap();
        s.inner().put_manifest(0, &[1u8; 250_000]).unwrap();
        let reader = s.timed_reads(SimTime::from_secs(1));
        assert_eq!(reader.now(), SimTime::from_secs(1));
        let data = reader.get_chunk(ChunkKey::new(0, 0)).unwrap();
        assert_eq!(data.len(), 250_000);
        assert_eq!(reader.now(), SimTime::from_secs_f64(1.25), "chunk read costs device time");
        reader.get_manifest(0).unwrap();
        assert_eq!(reader.now(), SimTime::from_secs_f64(1.5), "manifest read queues behind it");
        // Untimed metadata ops are free.
        assert_eq!(reader.list_generations(0).unwrap(), vec![0]);
        assert_eq!(reader.now(), SimTime::from_secs_f64(1.5));
        assert_eq!(s.bytes_total(), 500_000, "restore reads show up in device totals");
    }

    #[test]
    fn manifest_reads_timed_too() {
        let s = throttled(100);
        s.inner().put_manifest(5, &[0u8; 50]).unwrap();
        let (data, done) = s.get_manifest_timed(SimTime::from_secs(2), 5).unwrap();
        assert_eq!(data.len(), 50);
        assert_eq!(done, SimTime::from_secs_f64(2.5));
        assert!(matches!(
            s.get_manifest_timed(SimTime::ZERO, 99),
            Err(StorageError::ManifestNotFound(99))
        ));
    }

    #[test]
    fn manifest_writes_timed_too() {
        let s = throttled(100);
        let done = s.put_manifest_timed(SimTime::ZERO, 3, &[0u8; 100]).unwrap();
        assert_eq!(done, SimTime::from_secs(1));
        assert!(s.inner().get_manifest(3).is_ok());
    }
}
