//! Checkpoint manifests: global commit records.
//!
//! A *coordinated* checkpoint (the strategy the paper's bulk-synchronous
//! observation enables, §6.2) is only usable for recovery if **every**
//! rank's chunk of that generation reached stable storage. The manifest
//! is the commit record written after all chunks land; recovery restores
//! from the newest generation with a manifest, ignoring any newer
//! partially-written chunks.
//!
//! Format (little-endian, CRC-closed like chunks):
//!
//! ```text
//! magic "ICKM" | version u16 | reserved u16 | generation u64 |
//! commit virtual time u64 | nranks u32 | entries u32 |
//! entries × (rank u32, kind u8, pad u8 u8 u8, parent u64, payload_bytes u64) |
//! crc32
//! ```

use bytes::{Buf, BufMut};

use crate::chunk::ChunkKind;
use crate::crc::{crc32, Crc32};
use crate::store::StorageError;

const MAGIC: &[u8; 4] = b"ICKM";
const VERSION: u16 = 1;

/// Per-rank entry of a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankEntry {
    /// The rank.
    pub rank: u32,
    /// Kind of the rank's chunk in this generation.
    pub kind: ChunkKind,
    /// Parent generation for incremental chunks.
    pub parent: Option<u64>,
    /// Saved payload bytes (for bandwidth accounting/reporting).
    pub payload_bytes: u64,
}

/// A committed checkpoint generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Generation number (monotonic across the run).
    pub generation: u64,
    /// Virtual time of the commit.
    pub commit_time_ns: u64,
    /// Number of ranks in the job.
    pub nranks: u32,
    /// One entry per rank, ascending by rank.
    pub entries: Vec<RankEntry>,
}

impl Manifest {
    /// Whether the manifest covers every rank exactly once.
    pub fn is_complete(&self) -> bool {
        if self.entries.len() != self.nranks as usize {
            return false;
        }
        self.entries.iter().enumerate().all(|(i, e)| e.rank == i as u32)
    }

    /// Total payload across ranks.
    pub fn total_payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.payload_bytes).sum()
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.entries.len() * 24 + 4);
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u16_le(0);
        out.put_u64_le(self.generation);
        out.put_u64_le(self.commit_time_ns);
        out.put_u32_le(self.nranks);
        out.put_u32_le(self.entries.len() as u32);
        for e in &self.entries {
            out.put_u32_le(e.rank);
            out.put_u8(match e.kind {
                ChunkKind::Full => 0,
                ChunkKind::Incremental => 1,
            });
            out.put_u8(0);
            out.put_u8(0);
            out.put_u8(0);
            out.put_u64_le(e.parent.unwrap_or(u64::MAX));
            out.put_u64_le(e.payload_bytes);
        }
        let crc = crc32(&out);
        out.put_u32_le(crc);
        out
    }

    /// Decode and verify.
    pub fn decode(buf: &[u8]) -> Result<Manifest, StorageError> {
        if buf.len() < 36 {
            return Err(StorageError::Corrupt("manifest too short".into()));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let mut c = Crc32::new();
        c.update(body);
        if c.finalize() != stored {
            return Err(StorageError::Corrupt("manifest CRC mismatch".into()));
        }
        let mut b = body;
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StorageError::Corrupt("bad manifest magic".into()));
        }
        if b.get_u16_le() != VERSION {
            return Err(StorageError::Corrupt("unsupported manifest version".into()));
        }
        let _pad = b.get_u16_le();
        let generation = b.get_u64_le();
        let commit_time_ns = b.get_u64_le();
        let nranks = b.get_u32_le();
        let n = b.get_u32_le() as usize;
        if b.remaining() != n * 24 {
            return Err(StorageError::Corrupt("manifest entry table size mismatch".into()));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = b.get_u32_le();
            let kind = match b.get_u8() {
                0 => ChunkKind::Full,
                1 => ChunkKind::Incremental,
                k => return Err(StorageError::Corrupt(format!("bad entry kind {k}"))),
            };
            b.advance(3);
            let parent_raw = b.get_u64_le();
            let payload_bytes = b.get_u64_le();
            entries.push(RankEntry {
                rank,
                kind,
                parent: if parent_raw == u64::MAX { None } else { Some(parent_raw) },
                payload_bytes,
            });
        }
        Ok(Manifest { generation, commit_time_ns, nranks, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 4,
            commit_time_ns: 99,
            nranks: 3,
            entries: vec![
                RankEntry { rank: 0, kind: ChunkKind::Full, parent: None, payload_bytes: 4096 },
                RankEntry {
                    rank: 1,
                    kind: ChunkKind::Incremental,
                    parent: Some(3),
                    payload_bytes: 8192,
                },
                RankEntry {
                    rank: 2,
                    kind: ChunkKind::Incremental,
                    parent: Some(3),
                    payload_bytes: 0,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn completeness_check() {
        let mut m = sample();
        assert!(m.is_complete());
        m.entries.pop();
        assert!(!m.is_complete());
        let mut m2 = sample();
        m2.entries[1].rank = 5;
        assert!(!m2.is_complete());
    }

    #[test]
    fn totals() {
        assert_eq!(sample().total_payload_bytes(), 12288);
    }

    #[test]
    fn corruption_detected() {
        let enc = sample().encode();
        for pos in [2usize, 12, 30, enc.len() - 6] {
            let mut bad = enc.clone();
            bad[pos] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "flip at {pos}");
        }
        assert!(Manifest::decode(&enc[..10]).is_err());
    }
}
