//! Asynchronous drain of node-local checkpoints to the shared array.
//!
//! SCR's `SCR_FLUSH` model: checkpoints live in the node-local tier
//! and only every `drain_every`-th committed generation is copied to
//! the shared parallel-filesystem array, together with whatever
//! earlier undrained generations its incremental lineage needs — the
//! durable tier always holds complete restore chains. The copy is
//! asynchronous from the application's point of view: it is charged on
//! the shared array's FIFO [`BandwidthDevice`](ickpt_sim::BandwidthDevice)
//! starting at the commit instant, but no rank blocks on it.
//!
//! A generation only counts as *durable* once its drain transfer
//! completed on the device. A failure at virtual time `t` therefore
//! recovers (at worst) to [`DrainQueue::fully_drained_before`]`(t)`;
//! generations whose drain was still in flight at `t` are rolled back
//! out of the shared store.
//!
//! ## Determinism
//!
//! Every rank enqueues its commit notification at the same
//! barrier-released instant; the last arrival (under one lock, from
//! one thread) performs the whole flush in canonical (generation,
//! rank) order, so device charges and stored bytes are independent of
//! thread scheduling.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use ickpt_obs::{DeviceKind, Event, Lane, Recorder};
use ickpt_sim::{SimDuration, SimTime};

use crate::store::{ChunkKey, StableStorage, StorageError};
use crate::throttle::SharedBandwidthDevice;

use super::LocalStores;

/// Cumulative drain accounting for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Bytes copied to the shared array (chunks + manifests).
    pub drained_bytes: u64,
    /// Generations whose chunks were copied (targets and lineage).
    pub drained_generations: u64,
    /// Newest generation with a manifest on the shared array.
    pub last_drained: Option<u64>,
    /// Generations skipped because a local source chunk was already
    /// gone (wiped by a node loss before the next drain tick).
    pub abandoned_generations: u64,
    /// Time the shared array spent busy on drain and durable-recovery
    /// traffic (filled from the device when the report is assembled).
    pub array_busy: SimDuration,
}

/// One flushed batch: the manifest-carrying target generation plus the
/// lineage generations copied with it.
struct Batch {
    completed_at: SimTime,
    generations: Vec<u64>,
}

#[derive(Default)]
struct DrainState {
    /// Commit notifications per generation (flush fires at `nranks`).
    arrivals: HashMap<u64, usize>,
    /// Committed generations not yet on the shared array.
    undrained: BTreeSet<u64>,
    /// Flushed batches keyed by target generation.
    batches: BTreeMap<u64, Batch>,
    stats: DrainStats,
}

/// See the module docs.
pub struct DrainQueue {
    nranks: usize,
    drain_every: u64,
    state: Mutex<DrainState>,
    /// Flight recorder for batch lifecycle / queue-depth events. The
    /// flush runs on whichever rank thread notified last, but always
    /// under the state lock in canonical order, so its events are
    /// deterministic; they land on the dedicated drain lane.
    obs: Mutex<Recorder>,
}

impl DrainQueue {
    /// Drain every `drain_every`-th committed generation (1 = every
    /// generation, the synchronous-durable limit).
    pub fn new(nranks: usize, drain_every: u64) -> Self {
        assert!(drain_every >= 1);
        Self {
            nranks,
            drain_every,
            state: Mutex::new(DrainState::default()),
            obs: Mutex::new(Recorder::disabled()),
        }
    }

    /// Attach a flight recorder (call before the run starts writing).
    pub fn attach_obs(&self, obs: Recorder) {
        *self.obs.lock() = obs;
    }

    /// The configured drain period.
    pub fn drain_every(&self) -> u64 {
        self.drain_every
    }

    /// A rank's commit notification for `generation` at the (global)
    /// commit instant. The last notifier flushes if the generation is
    /// a drain target.
    pub fn note_committed(
        &self,
        generation: u64,
        commit_time: SimTime,
        locals: &LocalStores,
        shared: &Arc<dyn StableStorage>,
        array: &SharedBandwidthDevice,
    ) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        let arrivals = state.arrivals.entry(generation).or_insert(0);
        *arrivals += 1;
        if *arrivals < self.nranks {
            return Ok(());
        }
        state.arrivals.remove(&generation);
        state.undrained.insert(generation);
        let obs = self.obs.lock().clone();
        obs.emit(
            Lane::Drain,
            commit_time,
            Event::DrainQueueDepth { depth: state.undrained.len() as u64 },
        );
        if (generation + 1).is_multiple_of(self.drain_every) {
            self.flush(&mut state, generation, commit_time, locals, shared, array, &obs)?;
            obs.emit(
                Lane::Drain,
                commit_time,
                Event::DrainQueueDepth { depth: state.undrained.len() as u64 },
            );
        }
        Ok(())
    }

    /// Copy every undrained generation up to and including `target` to
    /// the shared array, in canonical (generation, rank) order, then
    /// the target's manifest. Charges the array device from
    /// `commit_time`.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        &self,
        state: &mut DrainState,
        target: u64,
        commit_time: SimTime,
        locals: &LocalStores,
        shared: &Arc<dyn StableStorage>,
        array: &SharedBandwidthDevice,
        obs: &Recorder,
    ) -> Result<(), StorageError> {
        let gens: Vec<u64> = state.undrained.range(..=target).copied().collect();
        let mut flushed = Vec::new();
        let mut batch_chunks = 0u64;
        let mut batch_bytes = 0u64;
        for &gen in &gens {
            // Gather first: a generation with any missing local chunk
            // (wiped by a node loss, never re-deposited) is abandoned
            // whole rather than written torn to the durable tier.
            let mut chunks = Vec::with_capacity(self.nranks);
            for (rank, local) in locals.iter().enumerate().take(self.nranks) {
                match local.get_chunk(ChunkKey::new(rank as u32, gen)) {
                    Ok(data) => chunks.push(data),
                    Err(_) => {
                        chunks.clear();
                        break;
                    }
                }
            }
            state.undrained.remove(&gen);
            if chunks.is_empty() {
                state.stats.abandoned_generations += 1;
                continue;
            }
            for (rank, data) in chunks.iter().enumerate() {
                shared.put_chunk(ChunkKey::new(rank as u32, gen), data)?;
                let t = array.lock().transfer_detailed(commit_time, data.len() as u64);
                obs.emit_span(
                    Lane::Device(DeviceKind::Array, 0),
                    t.start,
                    t.service,
                    Event::DeviceTransfer {
                        bytes: data.len() as u64,
                        queue_wait_ns: t.queue_wait.0,
                        service_ns: t.service.0,
                    },
                );
                state.stats.drained_bytes += data.len() as u64;
                batch_chunks += 1;
                batch_bytes += data.len() as u64;
            }
            state.stats.drained_generations += 1;
            flushed.push(gen);
        }
        if flushed.contains(&target) {
            // The manifest is replicated on every surviving local
            // store; take the first copy found.
            let manifest = (0..self.nranks)
                .find_map(|r| locals[r].get_manifest(target).ok())
                .ok_or(StorageError::ManifestNotFound(target))?;
            shared.put_manifest(target, &manifest)?;
            // The array is FIFO, so the manifest (charged last)
            // completes after every chunk of the batch.
            let t = array.lock().transfer_detailed(commit_time, manifest.len() as u64);
            let done = t.done;
            obs.emit_span(
                Lane::Device(DeviceKind::Array, 0),
                t.start,
                t.service,
                Event::DeviceTransfer {
                    bytes: manifest.len() as u64,
                    queue_wait_ns: t.queue_wait.0,
                    service_ns: t.service.0,
                },
            );
            state.stats.drained_bytes += manifest.len() as u64;
            batch_bytes += manifest.len() as u64;
            state.stats.last_drained = Some(target);
            obs.emit_span(
                Lane::Drain,
                commit_time,
                done.saturating_sub(commit_time),
                Event::DrainBatch {
                    generations: flushed.len() as u64,
                    chunks: batch_chunks,
                    bytes: batch_bytes,
                },
            );
            state.batches.insert(target, Batch { completed_at: done, generations: flushed });
        }
        Ok(())
    }

    /// Newest generation whose drain had fully completed by `t`.
    pub fn fully_drained_before(&self, t: SimTime) -> Option<u64> {
        self.state
            .lock()
            .batches
            .iter()
            .filter(|(_, b)| b.completed_at <= t)
            .map(|(&gen, _)| gen)
            .next_back()
    }

    /// Roll the drain state back after a failure at `fail_time` with
    /// resume target `resume_gen`: batches still in flight at the
    /// failure are deleted from the shared array (their writes never
    /// finished), and generations newer than the resume target are
    /// forgotten — re-execution will commit them again.
    pub fn rollback(
        &self,
        resume_gen: Option<u64>,
        fail_time: SimTime,
        shared: &Arc<dyn StableStorage>,
    ) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        state.arrivals.clear();
        let in_flight: Vec<u64> = state
            .batches
            .iter()
            .filter(|(_, b)| b.completed_at > fail_time)
            .map(|(&gen, _)| gen)
            .collect();
        for target in in_flight {
            let batch = state.batches.remove(&target).unwrap();
            shared.delete_manifest(target)?;
            for gen in batch.generations {
                for rank in 0..self.nranks {
                    shared.delete_chunk(ChunkKey::new(rank as u32, gen))?;
                }
                // Still-committed generations get another chance at
                // the next drain tick; rolled-back ones are dropped.
                if resume_gen.is_some_and(|g| gen <= g) {
                    state.undrained.insert(gen);
                }
            }
            state.stats.last_drained = state.batches.keys().next_back().copied();
        }
        let stale: Vec<u64> = match resume_gen {
            Some(g) => state.undrained.range(g + 1..).copied().collect(),
            None => state.undrained.iter().copied().collect(),
        };
        for gen in stale {
            state.undrained.remove(&gen);
        }
        Ok(())
    }

    /// Snapshot of the accounting (array-busy time is filled by the
    /// caller, which owns the device).
    pub fn stats(&self) -> DrainStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::store::MemStore;
    use crate::throttle::shared_device;
    use ickpt_sim::BandwidthDevice;

    fn setup(nranks: usize) -> (Vec<Arc<dyn StableStorage>>, Arc<dyn StableStorage>) {
        let locals: Vec<Arc<dyn StableStorage>> =
            (0..nranks).map(|_| Arc::new(MemStore::new()) as Arc<dyn StableStorage>).collect();
        (locals, Arc::new(MemStore::new()))
    }

    fn commit_gen(locals: &[Arc<dyn StableStorage>], gen: u64, bytes: usize) {
        for (r, store) in locals.iter().enumerate() {
            store.put_chunk(ChunkKey::new(r as u32, gen), &vec![r as u8; bytes]).unwrap();
            let m = Manifest {
                generation: gen,
                commit_time_ns: 0,
                nranks: locals.len() as u32,
                entries: vec![],
            };
            store.put_manifest(gen, &m.encode()).unwrap();
        }
    }

    #[test]
    fn drains_every_kth_generation_with_lineage() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 2);
        for gen in 0..4u64 {
            commit_gen(&locals, gen, 1000);
            let t = SimTime::from_secs(gen + 1);
            for _ in 0..2 {
                q.note_committed(gen, t, &locals, &shared, &array).unwrap();
            }
        }
        // Targets are gens 1 and 3; gens 0 and 2 ride along as lineage.
        assert_eq!(shared.list_manifests().unwrap(), vec![1, 3]);
        assert_eq!(shared.list_generations(0).unwrap(), vec![0, 1, 2, 3]);
        let stats = q.stats();
        assert_eq!(stats.drained_generations, 4);
        assert_eq!(stats.last_drained, Some(3));
        assert!(stats.drained_bytes > 8000, "chunks plus manifests");
    }

    #[test]
    fn durability_is_gated_on_transfer_completion() {
        let (locals, shared) = setup(2);
        // 1 kB/s: draining 2 kB takes 2 virtual seconds.
        let array = shared_device(BandwidthDevice::new(1_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 1);
        commit_gen(&locals, 0, 1000);
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(10), &locals, &shared, &array).unwrap();
        }
        assert_eq!(q.fully_drained_before(SimTime::from_secs(10)), None, "still in flight");
        assert_eq!(q.fully_drained_before(SimTime::from_secs(20)), Some(0));
    }

    #[test]
    fn rollback_removes_in_flight_batches() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 1);
        commit_gen(&locals, 0, 1000);
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(10), &locals, &shared, &array).unwrap();
        }
        // Fail at t=11s: the drain (finishing ~12s) was in flight.
        q.rollback(Some(0), SimTime::from_secs(11), &shared).unwrap();
        assert!(shared.list_manifests().unwrap().is_empty());
        assert!(shared.list_generations(0).unwrap().is_empty());
        // The generation is committed and still local: it drains again
        // at the next tick.
        commit_gen(&locals, 1, 500);
        for _ in 0..2 {
            q.note_committed(1, SimTime::from_secs(30), &locals, &shared, &array).unwrap();
        }
        assert_eq!(shared.list_generations(0).unwrap(), vec![0, 1]);
        assert_eq!(q.fully_drained_before(SimTime::from_secs(60)), Some(1));
    }

    #[test]
    fn abandons_generations_with_wiped_sources() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 2);
        commit_gen(&locals, 0, 100);
        for _ in 0..2 {
            q.note_committed(0, SimTime::ZERO, &locals, &shared, &array).unwrap();
        }
        // Wipe rank 1's chunk of gen 0 before the drain tick at gen 1.
        locals[1].delete_chunk(ChunkKey::new(1, 0)).unwrap();
        commit_gen(&locals, 1, 100);
        for _ in 0..2 {
            q.note_committed(1, SimTime::ZERO, &locals, &shared, &array).unwrap();
        }
        assert_eq!(q.stats().abandoned_generations, 1);
        assert_eq!(shared.list_generations(0).unwrap(), vec![1]);
        assert_eq!(shared.list_manifests().unwrap(), vec![1]);
    }
}
