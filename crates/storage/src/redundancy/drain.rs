//! Asynchronous drain of node-local checkpoints to the shared array.
//!
//! SCR's `SCR_FLUSH` model: checkpoints live in the node-local tier
//! and only every `drain_every`-th committed generation is copied to
//! the shared parallel-filesystem array, together with whatever
//! earlier undrained generations its incremental lineage needs — the
//! durable tier always holds complete restore chains. The copy is
//! asynchronous from the application's point of view: it is charged on
//! the shared array's FIFO [`BandwidthDevice`](ickpt_sim::BandwidthDevice)
//! starting at the commit instant, but no rank blocks on it.
//!
//! A generation only counts as *durable* once its drain transfer
//! completed on the device. A failure at virtual time `t` therefore
//! recovers (at worst) to [`DrainQueue::fully_drained_before`]`(t)`;
//! generations whose drain was still in flight at `t` are rolled back
//! out of the shared store.
//!
//! ## Determinism
//!
//! Every rank enqueues its commit notification at the same
//! barrier-released instant; the last arrival (under one lock, from
//! one thread) performs the whole flush in canonical (generation,
//! rank) order, so device charges and stored bytes are independent of
//! thread scheduling.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use ickpt_obs::{DeviceKind, Event, Lane, Recorder};
use ickpt_sim::reduce::fanin_group;
use ickpt_sim::{SimDuration, SimTime, StripedArray};

use crate::store::{ChunkKey, StableStorage, StorageError};
use crate::throttle::SharedBandwidthDevice;

use super::LocalStores;

/// How drain traffic reaches the shared array.
///
/// [`DrainTopology::Tree`] models SCR-style I/O forwarding: ranks
/// funnel their chunks through `ceil(nranks / arity)` aggregator
/// nodes (one per contiguous [`fanin_group`]), and the array is
/// charged one batched transfer per aggregator instead of one per
/// rank — at 16k ranks that is 512 array requests per generation
/// instead of 16384. Stored bytes, chunk keys, manifests and (because
/// the FIFO array pipelines its per-transfer latency) the batch
/// completion time are identical in both topologies; what changes is
/// the request pattern the array sees: transfer counts, queue-wait
/// distribution and the per-transfer spans on the flight recorder's
/// array lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainTopology {
    /// Every rank's chunk is charged as its own array transfer.
    #[default]
    Flat,
    /// Chunks are batched per contiguous group of `arity` ranks.
    Tree {
        /// Ranks per aggregator; clamped to >= 2 like
        /// [`tree_reduce`](ickpt_sim::tree_reduce)'s arity, so the
        /// charge groups always match the reduction's first level.
        arity: usize,
    },
}

/// Cumulative drain accounting for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Bytes copied to the shared array (chunks + manifests).
    pub drained_bytes: u64,
    /// Generations whose chunks were copied (targets and lineage).
    pub drained_generations: u64,
    /// Newest generation with a manifest on the shared array.
    pub last_drained: Option<u64>,
    /// Generations skipped because a local source chunk was already
    /// gone (wiped by a node loss before the next drain tick).
    pub abandoned_generations: u64,
    /// Generations whose drain was torn mid-flight by a failure: their
    /// batch was rolled back out of the shared array, so they were
    /// charged on the device but never became durable. Disjoint from
    /// `drained_generations`, which counts only batches that stayed.
    pub torn_generations: u64,
    /// Bytes charged on the array for batches later torn by a
    /// rollback (disjoint from `drained_bytes`).
    pub torn_bytes: u64,
    /// Time the shared array spent busy on drain and durable-recovery
    /// traffic (filled from the device when the report is assembled).
    pub array_busy: SimDuration,
}

/// One flushed batch: the manifest-carrying target generation plus the
/// lineage generations copied with it.
struct Batch {
    completed_at: SimTime,
    generations: Vec<u64>,
    /// Array bytes this batch charged (chunks + manifest), so a
    /// rollback can move the batch from drained to torn accounting.
    bytes: u64,
}

#[derive(Default)]
struct DrainState {
    /// Commit notifications per generation (flush fires at `nranks`).
    arrivals: HashMap<u64, usize>,
    /// Committed generations not yet on the shared array.
    undrained: BTreeSet<u64>,
    /// Flushed batches keyed by target generation.
    batches: BTreeMap<u64, Batch>,
    stats: DrainStats,
}

/// See the module docs.
pub struct DrainQueue {
    nranks: usize,
    drain_every: u64,
    /// Array charging pattern; behind a lock because the queue is
    /// already shared (inside an `Arc`ed topology) when the run
    /// config picks the topology.
    topology: Mutex<DrainTopology>,
    /// When set, drain traffic is charged on this striped multi-device
    /// array (chunk-split, round-robin) instead of the single FIFO
    /// device the caller passes to [`DrainQueue::note_committed`].
    stripe: Mutex<Option<Arc<Mutex<StripedArray>>>>,
    state: Mutex<DrainState>,
    /// Flight recorder for batch lifecycle / queue-depth events. The
    /// flush runs on whichever rank thread notified last, but always
    /// under the state lock in canonical order, so its events are
    /// deterministic; they land on the dedicated drain lane.
    obs: Mutex<Recorder>,
}

impl DrainQueue {
    /// Drain every `drain_every`-th committed generation (1 = every
    /// generation, the synchronous-durable limit).
    pub fn new(nranks: usize, drain_every: u64) -> Self {
        assert!(drain_every >= 1);
        Self {
            nranks,
            drain_every,
            topology: Mutex::new(DrainTopology::Flat),
            stripe: Mutex::new(None),
            state: Mutex::new(DrainState::default()),
            obs: Mutex::new(Recorder::disabled()),
        }
    }

    /// Select the array charging pattern (call before the run starts
    /// writing, like [`DrainQueue::attach_obs`]).
    pub fn set_topology(&self, topology: DrainTopology) {
        *self.topology.lock() = topology;
    }

    /// The configured array charging pattern.
    pub fn topology(&self) -> DrainTopology {
        *self.topology.lock()
    }

    /// Route drain traffic onto a striped multi-device array instead
    /// of the caller's single FIFO device (call before the run starts
    /// writing). Stored bytes and accounting are identical; what
    /// changes is where the bytes are charged — split into stripe
    /// chunks round-robined across the stripe's devices, each chunk a
    /// span on that device's flight-recorder lane.
    pub fn set_stripe(&self, stripe: Arc<Mutex<StripedArray>>) {
        *self.stripe.lock() = Some(stripe);
    }

    /// Attach a flight recorder (call before the run starts writing).
    pub fn attach_obs(&self, obs: Recorder) {
        *self.obs.lock() = obs;
    }

    /// The configured drain period.
    pub fn drain_every(&self) -> u64 {
        self.drain_every
    }

    /// A rank's commit notification for `generation` at the (global)
    /// commit instant. The last notifier flushes if the generation is
    /// a drain target.
    pub fn note_committed(
        &self,
        generation: u64,
        commit_time: SimTime,
        locals: &LocalStores,
        shared: &Arc<dyn StableStorage>,
        array: &SharedBandwidthDevice,
    ) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        let arrivals = state.arrivals.entry(generation).or_insert(0);
        *arrivals += 1;
        if *arrivals < self.nranks {
            return Ok(());
        }
        state.arrivals.remove(&generation);
        state.undrained.insert(generation);
        let obs = self.obs.lock().clone();
        obs.emit(
            Lane::Drain,
            commit_time,
            Event::DrainQueueDepth { depth: state.undrained.len() as u64 },
        );
        if (generation + 1).is_multiple_of(self.drain_every) {
            self.flush(&mut state, generation, commit_time, locals, shared, array, &obs)?;
            obs.emit(
                Lane::Drain,
                commit_time,
                Event::DrainQueueDepth { depth: state.undrained.len() as u64 },
            );
        }
        Ok(())
    }

    /// Copy every undrained generation up to and including `target` to
    /// the shared array, in canonical (generation, rank) order, then
    /// the target's manifest. Charges the array device from
    /// `commit_time`.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        &self,
        state: &mut DrainState,
        target: u64,
        commit_time: SimTime,
        locals: &LocalStores,
        shared: &Arc<dyn StableStorage>,
        array: &SharedBandwidthDevice,
        obs: &Recorder,
    ) -> Result<(), StorageError> {
        let topology = self.topology();
        let gens: Vec<u64> = state.undrained.range(..=target).copied().collect();
        let mut flushed = Vec::new();
        let mut batch_chunks = 0u64;
        let mut batch_bytes = 0u64;
        let mut batch_done = commit_time;
        for &gen in &gens {
            // Gather first: a generation with any missing local chunk
            // (wiped by a node loss, never re-deposited) is abandoned
            // whole rather than written torn to the durable tier.
            let mut chunks = Vec::with_capacity(self.nranks);
            for (rank, local) in locals.iter().enumerate().take(self.nranks) {
                match local.get_chunk(ChunkKey::new(rank as u32, gen)) {
                    Ok(data) => chunks.push(data),
                    Err(_) => {
                        chunks.clear();
                        break;
                    }
                }
            }
            state.undrained.remove(&gen);
            if chunks.is_empty() {
                state.stats.abandoned_generations += 1;
                continue;
            }
            // Store every chunk, but charge the array according to
            // the topology: flat = one transfer per rank, tree = one
            // batched transfer per contiguous aggregator group.
            let group_of = |rank: usize| match topology {
                DrainTopology::Flat => rank,
                DrainTopology::Tree { arity } => fanin_group(rank, arity),
            };
            let mut pending_group: Option<(usize, u64)> = None;
            let mut charge = |state: &mut DrainState, bytes: u64| {
                let done = self.charge_array(array, obs, commit_time, bytes);
                state.stats.drained_bytes += bytes;
                batch_bytes += bytes;
                batch_done = batch_done.max(done);
            };
            for (rank, data) in chunks.iter().enumerate() {
                shared.put_chunk(ChunkKey::new(rank as u32, gen), data)?;
                batch_chunks += 1;
                match pending_group {
                    Some((group, bytes)) if group == group_of(rank) => {
                        pending_group = Some((group, bytes + data.len() as u64));
                    }
                    Some((_, bytes)) => {
                        charge(state, bytes);
                        pending_group = Some((group_of(rank), data.len() as u64));
                    }
                    None => pending_group = Some((group_of(rank), data.len() as u64)),
                }
            }
            if let Some((_, bytes)) = pending_group {
                charge(state, bytes);
            }
            state.stats.drained_generations += 1;
            flushed.push(gen);
        }
        if flushed.contains(&target) {
            // The manifest is replicated on every surviving local
            // store; take the first copy found.
            let manifest = (0..self.nranks)
                .find_map(|r| locals[r].get_manifest(target).ok())
                .ok_or(StorageError::ManifestNotFound(target))?;
            shared.put_manifest(target, &manifest)?;
            // The batch is durable once its slowest charge lands. On
            // the single FIFO device the manifest (charged last)
            // completes after every chunk; on a striped array another
            // device may still be finishing an earlier chunk, so the
            // batch tracks the max over every charge.
            let done =
                batch_done.max(self.charge_array(array, obs, commit_time, manifest.len() as u64));
            state.stats.drained_bytes += manifest.len() as u64;
            batch_bytes += manifest.len() as u64;
            state.stats.last_drained = Some(target);
            obs.emit_span(
                Lane::Drain,
                commit_time,
                done.saturating_sub(commit_time),
                Event::DrainBatch {
                    generations: flushed.len() as u64,
                    chunks: batch_chunks,
                    bytes: batch_bytes,
                },
            );
            state.batches.insert(
                target,
                Batch { completed_at: done, generations: flushed, bytes: batch_bytes },
            );
        }
        Ok(())
    }

    /// Charge `bytes` of drain traffic starting at `commit_time`: on
    /// the attached striped array when one is set (split into stripe
    /// chunks, round-robined across devices, one flight-recorder span
    /// per device charge), else as one transfer on the caller's FIFO
    /// device. Returns the completion instant of the slowest piece.
    fn charge_array(
        &self,
        array: &SharedBandwidthDevice,
        obs: &Recorder,
        commit_time: SimTime,
        bytes: u64,
    ) -> SimTime {
        let stripe = self.stripe.lock().clone();
        if let Some(stripe) = stripe {
            let mut stripe = stripe.lock();
            let mut done = commit_time;
            let sizes: Vec<u64> = stripe.chunk_sizes(bytes).collect();
            for sz in sizes {
                let (dev, t) = stripe.write_chunk(commit_time, sz);
                obs.emit_span(
                    Lane::Device(DeviceKind::Array, dev as u32),
                    t.start,
                    t.service,
                    Event::DeviceTransfer {
                        bytes: sz,
                        queue_wait_ns: t.queue_wait.0,
                        service_ns: t.service.0,
                    },
                );
                done = done.max(t.done);
            }
            done
        } else {
            let t = array.lock().transfer_detailed(commit_time, bytes);
            obs.emit_span(
                Lane::Device(DeviceKind::Array, 0),
                t.start,
                t.service,
                Event::DeviceTransfer {
                    bytes,
                    queue_wait_ns: t.queue_wait.0,
                    service_ns: t.service.0,
                },
            );
            t.done
        }
    }

    /// Newest generation whose drain had fully completed by `t`.
    pub fn fully_drained_before(&self, t: SimTime) -> Option<u64> {
        self.state
            .lock()
            .batches
            .iter()
            .filter(|(_, b)| b.completed_at <= t)
            .map(|(&gen, _)| gen)
            .next_back()
    }

    /// Roll the drain state back after a failure at `fail_time` with
    /// resume target `resume_gen`: batches still in flight at the
    /// failure are deleted from the shared array (their writes never
    /// finished), and generations newer than the resume target are
    /// forgotten — re-execution will commit them again.
    pub fn rollback(
        &self,
        resume_gen: Option<u64>,
        fail_time: SimTime,
        shared: &Arc<dyn StableStorage>,
    ) -> Result<(), StorageError> {
        let obs = self.obs.lock().clone();
        let mut state = self.state.lock();
        state.arrivals.clear();
        let in_flight: Vec<u64> = state
            .batches
            .iter()
            .filter(|(_, b)| b.completed_at > fail_time)
            .map(|(&gen, _)| gen)
            .collect();
        for target in in_flight {
            let batch = state.batches.remove(&target).unwrap();
            shared.delete_manifest(target)?;
            // The batch never became durable: move it from drained to
            // torn accounting (its bytes *were* charged on the array
            // device, which is exactly what `torn_bytes` records).
            state.stats.drained_bytes -= batch.bytes;
            state.stats.drained_generations -= batch.generations.len() as u64;
            state.stats.torn_bytes += batch.bytes;
            state.stats.torn_generations += batch.generations.len() as u64;
            obs.emit(
                Lane::Drain,
                fail_time,
                Event::DrainTorn {
                    generations: batch.generations.len() as u64,
                    bytes: batch.bytes,
                },
            );
            for gen in batch.generations {
                for rank in 0..self.nranks {
                    shared.delete_chunk(ChunkKey::new(rank as u32, gen))?;
                }
                // Still-committed generations get another chance at
                // the next drain tick; rolled-back ones are dropped.
                if resume_gen.is_some_and(|g| gen <= g) {
                    state.undrained.insert(gen);
                }
            }
            state.stats.last_drained = state.batches.keys().next_back().copied();
        }
        let stale: Vec<u64> = match resume_gen {
            Some(g) => state.undrained.range(g + 1..).copied().collect(),
            None => state.undrained.iter().copied().collect(),
        };
        for gen in stale {
            state.undrained.remove(&gen);
        }
        Ok(())
    }

    /// Snapshot of the accounting (array-busy time is filled by the
    /// caller, which owns the device).
    pub fn stats(&self) -> DrainStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::store::MemStore;
    use crate::throttle::shared_device;
    use ickpt_sim::BandwidthDevice;

    fn setup(nranks: usize) -> (Vec<Arc<dyn StableStorage>>, Arc<dyn StableStorage>) {
        let locals: Vec<Arc<dyn StableStorage>> =
            (0..nranks).map(|_| Arc::new(MemStore::new()) as Arc<dyn StableStorage>).collect();
        (locals, Arc::new(MemStore::new()))
    }

    fn commit_gen(locals: &[Arc<dyn StableStorage>], gen: u64, bytes: usize) {
        for (r, store) in locals.iter().enumerate() {
            store.put_chunk(ChunkKey::new(r as u32, gen), &vec![r as u8; bytes]).unwrap();
            let m = Manifest {
                generation: gen,
                commit_time_ns: 0,
                nranks: locals.len() as u32,
                entries: vec![],
            };
            store.put_manifest(gen, &m.encode()).unwrap();
        }
    }

    #[test]
    fn drains_every_kth_generation_with_lineage() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 2);
        for gen in 0..4u64 {
            commit_gen(&locals, gen, 1000);
            let t = SimTime::from_secs(gen + 1);
            for _ in 0..2 {
                q.note_committed(gen, t, &locals, &shared, &array).unwrap();
            }
        }
        // Targets are gens 1 and 3; gens 0 and 2 ride along as lineage.
        assert_eq!(shared.list_manifests().unwrap(), vec![1, 3]);
        assert_eq!(shared.list_generations(0).unwrap(), vec![0, 1, 2, 3]);
        let stats = q.stats();
        assert_eq!(stats.drained_generations, 4);
        assert_eq!(stats.last_drained, Some(3));
        assert!(stats.drained_bytes > 8000, "chunks plus manifests");
    }

    #[test]
    fn durability_is_gated_on_transfer_completion() {
        let (locals, shared) = setup(2);
        // 1 kB/s: draining 2 kB takes 2 virtual seconds.
        let array = shared_device(BandwidthDevice::new(1_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 1);
        commit_gen(&locals, 0, 1000);
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(10), &locals, &shared, &array).unwrap();
        }
        assert_eq!(q.fully_drained_before(SimTime::from_secs(10)), None, "still in flight");
        assert_eq!(q.fully_drained_before(SimTime::from_secs(20)), Some(0));
    }

    #[test]
    fn rollback_removes_in_flight_batches() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 1);
        commit_gen(&locals, 0, 1000);
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(10), &locals, &shared, &array).unwrap();
        }
        // Fail at t=11s: the drain (finishing ~12s) was in flight.
        q.rollback(Some(0), SimTime::from_secs(11), &shared).unwrap();
        assert!(shared.list_manifests().unwrap().is_empty());
        assert!(shared.list_generations(0).unwrap().is_empty());
        // The generation is committed and still local: it drains again
        // at the next tick.
        commit_gen(&locals, 1, 500);
        for _ in 0..2 {
            q.note_committed(1, SimTime::from_secs(30), &locals, &shared, &array).unwrap();
        }
        assert_eq!(shared.list_generations(0).unwrap(), vec![0, 1]);
        assert_eq!(q.fully_drained_before(SimTime::from_secs(60)), Some(1));
    }

    /// Drain one 4-rank generation through a queue with the given
    /// topology; return (store, stats, array transfer count,
    /// completion time).
    fn drain_once(topology: DrainTopology) -> (Arc<dyn StableStorage>, DrainStats, u64, SimTime) {
        let (locals, shared) = setup(4);
        let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::from_millis(1)));
        let q = DrainQueue::new(4, 1);
        q.set_topology(topology);
        assert_eq!(q.topology(), topology);
        commit_gen(&locals, 0, 1000);
        for _ in 0..4 {
            q.note_committed(0, SimTime::ZERO, &locals, &shared, &array).unwrap();
        }
        let done = (0..1_000_000u64)
            .map(|ms| SimTime(ms * 1_000_000))
            .find(|&t| q.fully_drained_before(t) == Some(0))
            .expect("drain must complete");
        let transfers = array.lock().transfers();
        (shared, q.stats(), transfers, done)
    }

    #[test]
    fn tree_topology_stores_identical_data_in_fewer_transfers() {
        let (flat_store, flat_stats, flat_xfers, flat_done) = drain_once(DrainTopology::Flat);
        let (tree_store, tree_stats, tree_xfers, tree_done) =
            drain_once(DrainTopology::Tree { arity: 2 });
        // Same chunks, same manifests, same drained bytes, same
        // completion (the FIFO array pipelines per-transfer latency):
        // the topology only changes the request pattern.
        assert_eq!(
            flat_store.list_generations(0).unwrap(),
            tree_store.list_generations(0).unwrap()
        );
        assert_eq!(flat_store.list_manifests().unwrap(), tree_store.list_manifests().unwrap());
        for rank in 0..4u32 {
            assert_eq!(
                flat_store.get_chunk(ChunkKey::new(rank, 0)).unwrap(),
                tree_store.get_chunk(ChunkKey::new(rank, 0)).unwrap()
            );
        }
        assert_eq!(flat_stats.drained_bytes, tree_stats.drained_bytes);
        assert_eq!(flat_done, tree_done);
        // Flat: 4 chunk transfers + manifest. Tree arity 2: 2 batched
        // group transfers + manifest.
        assert_eq!(flat_xfers, 5);
        assert_eq!(tree_xfers, 3);
    }

    #[test]
    fn tree_arity_is_clamped_like_tree_reduce() {
        // Arity below 2 is clamped to 2 by `fanin_group`, mirroring
        // `tree_reduce`'s arity handling.
        let (_, two_stats, two_xfers, two_done) = drain_once(DrainTopology::Tree { arity: 2 });
        let (_, one_stats, one_xfers, one_done) = drain_once(DrainTopology::Tree { arity: 1 });
        assert_eq!(one_done, two_done);
        assert_eq!(one_stats, two_stats);
        assert_eq!(one_xfers, two_xfers);
    }

    #[test]
    fn rollback_moves_batches_from_drained_to_torn() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 1);
        let fr = ickpt_obs::FlightRecorder::new(64);
        q.attach_obs(Recorder::new(fr.clone()));
        commit_gen(&locals, 0, 1000);
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(10), &locals, &shared, &array).unwrap();
        }
        let flushed = q.stats();
        assert_eq!(flushed.drained_generations, 1);
        assert!(flushed.drained_bytes > 2000, "chunks plus manifest");
        // Fail while the batch is in flight: it is torn, not drained.
        q.rollback(Some(0), SimTime::from_secs(11), &shared).unwrap();
        let torn = q.stats();
        // The tear surfaces as a typed event on the drain lane.
        let snap = fr.snapshot();
        let tears: Vec<_> = snap
            .tracks
            .iter()
            .filter(|(k, _, _)| k.lane == Lane::Drain)
            .flat_map(|(_, evs, _)| evs.iter())
            .filter_map(|ev| match ev.event {
                Event::DrainTorn { generations, bytes } => Some((ev.ts, generations, bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(tears, vec![(SimTime::from_secs(11), 1, flushed.drained_bytes)]);
        assert_eq!(torn.drained_generations, 0);
        assert_eq!(torn.drained_bytes, 0);
        assert_eq!(torn.torn_generations, 1);
        assert_eq!(torn.torn_bytes, flushed.drained_bytes);
        assert_eq!(torn.last_drained, None);
        // The re-drain after recovery lands as a fresh completed
        // batch; the torn accounting stays.
        for _ in 0..2 {
            q.note_committed(0, SimTime::from_secs(30), &locals, &shared, &array).unwrap();
        }
        let redone = q.stats();
        assert_eq!(redone.drained_generations, 1);
        assert_eq!(redone.drained_bytes, flushed.drained_bytes);
        assert_eq!(redone.torn_generations, 1);
        assert_eq!(redone.torn_bytes, flushed.drained_bytes);
    }

    #[test]
    fn striped_drain_spreads_bytes_and_preserves_accounting() {
        use ickpt_sim::StripedArray;

        let run = |stripe_width: Option<usize>| {
            let (locals, shared) = setup(4);
            let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
            let q = DrainQueue::new(4, 1);
            let stripe = stripe_width.map(|w| {
                let s = Arc::new(Mutex::new(StripedArray::homogeneous(
                    w,
                    1_000_000,
                    SimDuration::ZERO,
                    512,
                )));
                q.set_stripe(s.clone());
                s
            });
            commit_gen(&locals, 0, 1000);
            for _ in 0..4 {
                q.note_committed(0, SimTime::ZERO, &locals, &shared, &array).unwrap();
            }
            (q, shared, array, stripe)
        };

        let (flat_q, flat_store, flat_array, _) = run(None);
        let (striped_q, striped_store, striped_array, stripe) = run(Some(2));
        let stripe = stripe.unwrap();

        // Stored data and drain accounting are identical either way.
        assert_eq!(
            flat_store.list_generations(0).unwrap(),
            striped_store.list_generations(0).unwrap()
        );
        assert_eq!(flat_q.stats().drained_bytes, striped_q.stats().drained_bytes);
        // With the stripe attached, the FIFO device saw nothing: every
        // byte landed on stripe devices, spread across both.
        assert_eq!(striped_array.lock().bytes_total(), 0);
        let per_dev = stripe.lock().device_bytes();
        assert_eq!(per_dev.len(), 2);
        assert_eq!(per_dev.iter().sum::<u64>(), striped_q.stats().drained_bytes);
        assert!(per_dev.iter().all(|&b| b > 0), "round-robin touches every device: {per_dev:?}");
        assert!(flat_array.lock().bytes_total() > 0);
        // Durability still gates on the slowest stripe chunk.
        assert!(striped_q.fully_drained_before(SimTime::from_secs(60)).is_some());
    }

    #[test]
    fn abandons_generations_with_wiped_sources() {
        let (locals, shared) = setup(2);
        let array = shared_device(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let q = DrainQueue::new(2, 2);
        commit_gen(&locals, 0, 100);
        for _ in 0..2 {
            q.note_committed(0, SimTime::ZERO, &locals, &shared, &array).unwrap();
        }
        // Wipe rank 1's chunk of gen 0 before the drain tick at gen 1.
        locals[1].delete_chunk(ChunkKey::new(1, 0)).unwrap();
        commit_gen(&locals, 1, 100);
        for _ in 0..2 {
            q.note_committed(1, SimTime::ZERO, &locals, &shared, &array).unwrap();
        }
        assert_eq!(q.stats().abandoned_generations, 1);
        assert_eq!(shared.list_generations(0).unwrap(), vec![1]);
        assert_eq!(shared.list_manifests().unwrap(), vec![1]);
    }
}
