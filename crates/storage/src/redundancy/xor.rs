//! XOR parity groups: RAID-5-style protection of the node-local tier.
//!
//! Ranks are partitioned into groups of `group_size` consecutive
//! ranks. Each checkpoint generation, the group's chunks are XORed
//! (zero-padded to the longest member) into one parity block held by a
//! rank *outside* the group — the first rank of the next group, ring
//! style — so the loss of any single node in the group is recoverable
//! from the survivors plus the parity. Storage overhead is
//! `1/group_size` of a full copy, against partner replication's 1x;
//! the price is that reconstruction must pull every survivor's chunk.
//!
//! Parity block format (little-endian, CRC-closed like chunks):
//!
//! ```text
//! magic "IXOR" | version u16 | reserved u16 | group u32 |
//! generation u64 | members u32 |
//! members × (rank u32, chunk length u64) |
//! parity bytes (max member length) | crc32
//! ```
//!
//! The per-member lengths let reconstruction truncate the padded XOR
//! back to the lost chunk's exact size, and the CRC guards the parity
//! block itself the way chunk CRCs guard data.
//!
//! Group members deposit their chunks into a per-(group, generation)
//! accumulator; the last depositor XORs and stores the block. XOR is
//! commutative, so the block's content is independent of thread
//! arrival order — one of the determinism invariants of this
//! subsystem.

use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use std::collections::HashMap;

use crate::crc::{crc32, Crc32};
use crate::kernels;
use crate::store::{ChunkKey, StorageError};

use super::{LocalStores, RedundancyScheme, SchemeSpec};

const MAGIC: &[u8; 4] = b"IXOR";
const VERSION: u16 = 1;

/// Parity blocks are keyed under a tagged rank namespace so they can
/// never collide with real rank chunks: `PARITY_RANK_BASE | group`.
pub const PARITY_RANK_BASE: u32 = 0x8000_0000;

/// Encode the parity block of one group generation. `members` are
/// `(rank, chunk bytes)` pairs; order does not affect the parity
/// content (XOR commutes), but the member table is sorted by rank so
/// the encoded block is byte-stable too.
pub fn xor_encode(group: u32, generation: u64, members: &[(u32, &[u8])]) -> Vec<u8> {
    assert!(!members.is_empty(), "parity of an empty group");
    let mut table: Vec<(u32, &[u8])> = members.to_vec();
    table.sort_by_key(|(rank, _)| *rank);
    let max_len = table.iter().map(|(_, d)| d.len()).max().unwrap();
    let mut out = Vec::with_capacity(28 + table.len() * 12 + max_len + 4);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(0);
    out.put_u32_le(group);
    out.put_u64_le(generation);
    out.put_u32_le(table.len() as u32);
    for (rank, data) in &table {
        out.put_u32_le(*rank);
        out.put_u64_le(data.len() as u64);
    }
    let parity_at = out.len();
    out.resize(parity_at + max_len, 0);
    for (_, data) in &table {
        // Shorter members fold into the zero-padded prefix only.
        kernels::xor_acc(&mut out[parity_at..parity_at + data.len()], data);
    }
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out
}

/// Decoded parity block header.
struct ParityView<'a> {
    /// `(rank, chunk length)` per member, ascending by rank.
    members: Vec<(u32, u64)>,
    parity: &'a [u8],
}

fn decode_parity(buf: &[u8]) -> Result<ParityView<'_>, StorageError> {
    if buf.len() < 32 {
        return Err(StorageError::Corrupt("parity block too short".into()));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let mut c = Crc32::new();
    c.update(body);
    if c.finalize() != stored {
        return Err(StorageError::Corrupt("parity block CRC mismatch".into()));
    }
    let mut b = body;
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad parity magic".into()));
    }
    if b.get_u16_le() != VERSION {
        return Err(StorageError::Corrupt("unsupported parity version".into()));
    }
    let _pad = b.get_u16_le();
    let _group = b.get_u32_le();
    let _generation = b.get_u64_le();
    let n = b.get_u32_le() as usize;
    if b.remaining() < n * 12 {
        return Err(StorageError::Corrupt("parity member table truncated".into()));
    }
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        let rank = b.get_u32_le();
        let len = b.get_u64_le();
        members.push((rank, len));
    }
    let max_len = members.iter().map(|&(_, l)| l).max().unwrap_or(0) as usize;
    if b.remaining() != max_len {
        return Err(StorageError::Corrupt("parity payload size mismatch".into()));
    }
    Ok(ParityView { members, parity: b })
}

/// Rebuild the lost member's chunk from the parity block and every
/// surviving member's chunk. `survivors` must contain exactly the
/// members listed in the block except `lost_rank`.
pub fn xor_reconstruct(
    parity_block: &[u8],
    survivors: &[(u32, &[u8])],
    lost_rank: u32,
) -> Result<Vec<u8>, StorageError> {
    let view = decode_parity(parity_block)?;
    let lost_len = view
        .members
        .iter()
        .find(|&&(r, _)| r == lost_rank)
        .map(|&(_, l)| l as usize)
        .ok_or_else(|| {
            StorageError::Corrupt(format!("rank {lost_rank} is not a member of this parity group"))
        })?;
    let mut acc = view.parity.to_vec();
    let mut seen = 0usize;
    for &(rank, expect_len) in &view.members {
        if rank == lost_rank {
            continue;
        }
        let data =
            survivors.iter().find(|&&(r, _)| r == rank).map(|&(_, d)| d).ok_or_else(|| {
                StorageError::Corrupt(format!("missing survivor chunk of rank {rank}"))
            })?;
        if data.len() as u64 != expect_len {
            return Err(StorageError::Corrupt(format!(
                "survivor chunk of rank {rank} has length {} but the parity block recorded {expect_len}",
                data.len()
            )));
        }
        kernels::xor_acc(&mut acc[..data.len()], data);
        seen += 1;
    }
    if seen + 1 != view.members.len() {
        return Err(StorageError::Corrupt(
            "survivor set does not match parity member table".into(),
        ));
    }
    acc.truncate(lost_len);
    Ok(acc)
}

/// Per-(group, generation) accumulator for in-flight parity builds.
struct GroupSlot {
    deposits: Vec<Option<Vec<u8>>>,
}

/// See the module docs.
pub struct XorParity {
    nranks: usize,
    group_size: usize,
    slots: Mutex<HashMap<(usize, u64), GroupSlot>>,
}

impl XorParity {
    /// Parity groups of `group_size` consecutive ranks over `nranks`.
    pub fn new(nranks: usize, group_size: usize) -> Self {
        assert!(group_size >= 2, "a parity group needs at least two members");
        assert!(nranks >= 2, "xor parity needs at least two ranks");
        Self { nranks, group_size, slots: Mutex::new(HashMap::new()) }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.nranks.div_ceil(self.group_size)
    }

    /// Group index of a rank.
    pub fn group_of(&self, rank: usize) -> usize {
        rank / self.group_size
    }

    /// Member ranks of a group (the last group may be short).
    pub fn members_of(&self, group: usize) -> std::ops::Range<usize> {
        let start = group * self.group_size;
        start..((start + self.group_size).min(self.nranks))
    }

    /// The rank holding a group's parity block: the first rank of the
    /// next group, ring style, so the holder is outside the group
    /// whenever there is more than one group. With a single group the
    /// holder is unavoidably a member; losing that node then falls
    /// through to the durable tier.
    pub fn holder_of(&self, group: usize) -> usize {
        self.members_of((group + 1) % self.groups()).start
    }

    /// The storage key of a group's parity block for a generation.
    pub fn parity_key(&self, group: usize, generation: u64) -> ChunkKey {
        ChunkKey::new(PARITY_RANK_BASE | group as u32, generation)
    }
}

impl RedundancyScheme for XorParity {
    fn spec(&self) -> SchemeSpec {
        SchemeSpec::XorParity { group_size: self.group_size }
    }

    fn publish(
        &self,
        locals: &LocalStores,
        rank: usize,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<u64, StorageError> {
        let group = self.group_of(rank);
        let members = self.members_of(group);
        let ready = {
            let mut slots = self.slots.lock();
            let slot = slots
                .entry((group, key.generation))
                .or_insert_with(|| GroupSlot { deposits: vec![None; members.len()] });
            slot.deposits[rank - members.start] = Some(data.to_vec());
            if slot.deposits.iter().all(Option::is_some) {
                slots.remove(&(group, key.generation))
            } else {
                None
            }
        };
        if let Some(slot) = ready {
            // Last depositor builds and stores the block. The store
            // itself is untimed: the holder's cost is covered by the
            // senders' NIC charges (store-and-forward model).
            let chunks: Vec<(u32, &[u8])> = members
                .clone()
                .zip(slot.deposits.iter())
                .map(|(r, d)| (r as u32, d.as_deref().unwrap()))
                .collect();
            let block = xor_encode(group as u32, key.generation, &chunks);
            locals[self.holder_of(group)]
                .put_chunk(self.parity_key(group, key.generation), &block)?;
        }
        // Each member pushes its chunk once toward the parity build.
        Ok(data.len() as u64)
    }

    fn reconstruct(
        &self,
        locals: &LocalStores,
        key: ChunkKey,
    ) -> Result<(Vec<u8>, u64), StorageError> {
        let lost = key.rank as usize;
        let group = self.group_of(lost);
        let holder = self.holder_of(group);
        let block = locals[holder].get_chunk(self.parity_key(group, key.generation))?;
        let mut pulled = block.len() as u64;
        let mut survivor_chunks = Vec::new();
        for r in self.members_of(group) {
            if r == lost {
                continue;
            }
            let data = locals[r].get_chunk(ChunkKey::new(r as u32, key.generation))?;
            pulled += data.len() as u64;
            survivor_chunks.push((r as u32, data));
        }
        let refs: Vec<(u32, &[u8])> =
            survivor_chunks.iter().map(|(r, d)| (*r, d.as_slice())).collect();
        let data = xor_reconstruct(&block, &refs, key.rank)?;
        Ok((data, pulled))
    }

    fn held_ranks(&self, holder: usize) -> Vec<u32> {
        let mut ranks = vec![holder as u32];
        for g in 0..self.groups() {
            if self.holder_of(g) == holder {
                ranks.push(PARITY_RANK_BASE | g as u32);
            }
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::StableStorage;
    use std::sync::Arc;

    fn locals(n: usize) -> Vec<Arc<dyn StableStorage>> {
        (0..n).map(|_| Arc::new(MemStore::new()) as Arc<dyn StableStorage>).collect()
    }

    #[test]
    fn encode_reconstruct_roundtrip_uneven_lengths() {
        let a = vec![0xAAu8; 100];
        let b = vec![0x5Bu8; 250];
        let c = vec![0x11u8; 17];
        let block = xor_encode(0, 3, &[(0, &a), (1, &b), (2, &c)]);
        for (lost, want) in [(0u32, &a), (1, &b), (2, &c)] {
            let survivors: Vec<(u32, &[u8])> = [(0, &a), (1, &b), (2, &c)]
                .into_iter()
                .filter(|(r, _)| *r != lost)
                .map(|(r, d): (u32, &Vec<u8>)| (r, d.as_slice()))
                .collect();
            assert_eq!(&xor_reconstruct(&block, &survivors, lost).unwrap(), want, "lost {lost}");
        }
    }

    #[test]
    fn corrupt_parity_detected() {
        let block = xor_encode(0, 0, &[(0, b"aaaa"), (1, b"bbbb")]);
        let mut bad = block.clone();
        bad[10] ^= 1;
        assert!(xor_reconstruct(&bad, &[(1, b"bbbb")], 0).is_err());
        // Wrong survivor length is refused rather than silently XORed.
        assert!(xor_reconstruct(&block, &[(1, b"bbb")], 0).is_err());
    }

    #[test]
    fn group_topology() {
        let x = XorParity::new(8, 2);
        assert_eq!(x.groups(), 4);
        assert_eq!(x.group_of(5), 2);
        assert_eq!(x.members_of(2), 4..6);
        assert_eq!(x.holder_of(2), 6);
        assert_eq!(x.holder_of(3), 0, "ring wraps");
        // Short last group.
        let y = XorParity::new(5, 2);
        assert_eq!(y.groups(), 3);
        assert_eq!(y.members_of(2), 4..5);
        assert_eq!(y.held_ranks(0), vec![0, PARITY_RANK_BASE | 2]);
    }

    #[test]
    fn scheme_publishes_and_reconstructs() {
        let stores = locals(4);
        let x = XorParity::new(4, 2);
        // Group 0 = {0, 1}, parity held by rank 2.
        for (r, data) in [(0usize, b"rank zero".as_slice()), (1, b"rank one, longer".as_slice())] {
            stores[r].put_chunk(ChunkKey::new(r as u32, 7), data).unwrap();
            x.publish(&stores, r, ChunkKey::new(r as u32, 7), data).unwrap();
        }
        assert!(stores[2].get_chunk(x.parity_key(0, 7)).is_ok(), "parity on the holder");
        // Lose rank 1: rebuild from rank 0 + parity.
        let (data, pulled) = x.reconstruct(&stores, ChunkKey::new(1, 7)).unwrap();
        assert_eq!(data, b"rank one, longer");
        assert!(pulled > data.len() as u64, "pulls survivors and the parity block");
    }

    #[test]
    fn reconstruct_without_parity_is_not_found() {
        let stores = locals(4);
        let x = XorParity::new(4, 2);
        assert!(matches!(
            x.reconstruct(&stores, ChunkKey::new(1, 3)),
            Err(StorageError::NotFound(_))
        ));
    }
}
