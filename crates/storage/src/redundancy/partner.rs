//! Partner replication: every chunk gets a full copy on a buddy node.
//!
//! SCR's `PARTNER` scheme: rank `r`'s checkpoint is mirrored into the
//! node-local store of rank `(r + offset) % nranks`, so losing any one
//! node leaves a complete copy of its chain on the partner. Storage
//! overhead is 1x and the publish cost is one chunk-sized NIC push;
//! recovery pulls the chain back over the recovering rank's NIC.
//!
//! Copies are stored under the *owner's* rank in the partner's store,
//! so they never collide with the partner's own chunks.

use crate::store::{ChunkKey, StorageError};

use super::{LocalStores, RedundancyScheme, SchemeSpec};

/// See the module docs.
pub struct Partner {
    nranks: usize,
    offset: usize,
}

impl Partner {
    /// Partner scheme over `nranks` ranks with the given buddy
    /// distance (reduced mod `nranks`; an effective offset of zero is
    /// rejected because a rank cannot protect itself).
    pub fn new(nranks: usize, offset: usize) -> Self {
        let offset = offset % nranks.max(1);
        assert!(nranks >= 2, "partner replication needs at least two ranks");
        assert!(offset != 0, "partner offset must not reduce to zero");
        Self { nranks, offset }
    }

    /// The rank holding `rank`'s copies.
    pub fn partner_of(&self, rank: usize) -> usize {
        (rank + self.offset) % self.nranks
    }
}

impl RedundancyScheme for Partner {
    fn spec(&self) -> SchemeSpec {
        SchemeSpec::Partner { offset: self.offset }
    }

    fn publish(
        &self,
        locals: &LocalStores,
        rank: usize,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<u64, StorageError> {
        locals[self.partner_of(rank)].put_chunk(key, data)?;
        Ok(data.len() as u64)
    }

    fn reconstruct(
        &self,
        locals: &LocalStores,
        key: ChunkKey,
    ) -> Result<(Vec<u8>, u64), StorageError> {
        let data = locals[self.partner_of(key.rank as usize)].get_chunk(key)?;
        let pulled = data.len() as u64;
        Ok((data, pulled))
    }

    fn held_ranks(&self, holder: usize) -> Vec<u32> {
        // The holder's own chunks plus the copies of the rank it
        // partners for: partner_of(source) == holder.
        let source = (holder + self.nranks - self.offset) % self.nranks;
        vec![holder as u32, source as u32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::StableStorage;
    use std::sync::Arc;

    fn locals(n: usize) -> Vec<Arc<dyn StableStorage>> {
        (0..n).map(|_| Arc::new(MemStore::new()) as Arc<dyn StableStorage>).collect()
    }

    #[test]
    fn copy_lands_on_partner_and_reconstructs() {
        let stores = locals(4);
        let p = Partner::new(4, 1);
        let key = ChunkKey::new(2, 7);
        let sent = p.publish(&stores, 2, key, b"payload").unwrap();
        assert_eq!(sent, 7);
        // The copy lives on rank 3 under rank 2's key.
        assert_eq!(stores[3].get_chunk(key).unwrap(), b"payload");
        assert!(stores[2].get_chunk(key).is_err(), "publish only writes the partner copy");
        let (data, pulled) = p.reconstruct(&stores, key).unwrap();
        assert_eq!(data, b"payload");
        assert_eq!(pulled, 7);
    }

    #[test]
    fn wraparound_partner() {
        let p = Partner::new(4, 1);
        assert_eq!(p.partner_of(3), 0);
        let p2 = Partner::new(8, 3);
        assert_eq!(p2.partner_of(6), 1);
        assert_eq!(p2.held_ranks(1), vec![1, 6]);
    }

    #[test]
    fn reconstruct_missing_is_not_found() {
        let stores = locals(2);
        let p = Partner::new(2, 1);
        assert!(matches!(
            p.reconstruct(&stores, ChunkKey::new(0, 0)),
            Err(StorageError::NotFound(_))
        ));
    }
}
