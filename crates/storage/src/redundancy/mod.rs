//! Multilevel redundant checkpoint storage.
//!
//! The paper's feasibility argument (§3) budgets incremental checkpoint
//! bandwidth against a network (900 MB/s) and a storage array
//! (320 MB/s). A single stable tier, however, makes every checkpoint
//! pay full array cost and makes any storage loss unrecoverable.
//! Production systems surveyed alongside the paper (SCR, stdchk) layer
//! the storage instead:
//!
//! 1. **Node-local tier** — each rank writes its chunk to fast local
//!    storage (RAM disk / local scratch). Cheap, but lost with the
//!    node.
//! 2. **Redundancy tier** — the chunk is protected across nodes over
//!    the interconnect: a full copy on a partner node
//!    ([`Partner`]), or an XOR parity block per small failure
//!    group ([`XorParity`]).
//! 3. **Durable tier** — an asynchronous [`DrainQueue`] copies every
//!    k-th committed generation (plus its incremental lineage) to the
//!    shared array in the background.
//!
//! Recovery tries the tiers in order: local (process restart on a
//! surviving node), then peer reconstruction over the network (node
//! loss), then the last generation *fully drained* to the shared
//! array (correlated loss of a rank's local data and its redundancy
//! peers).
//!
//! All traffic is charged in virtual time on the same
//! [`BandwidthDevice`](ickpt_sim::BandwidthDevice) models as the rest
//! of the system: local writes on a per-rank node-local device,
//! redundancy pushes and reconstruction pulls on a per-rank NIC rail,
//! drain and durable reads on the shared array device.
//!
//! ## Determinism
//!
//! Rank threads run concurrently, so every device is charged only at
//! instants that are equal across ranks (checkpoint captures happen at
//! the boundary-allreduce-equalized clock, commits at the
//! barrier-released instant) and only from the owning rank's thread —
//! except the shared array, which the drain charges in canonical rank
//! order under one lock, from one thread, at the commit instant.
//! Receiver-side devices are deliberately *not* charged for incoming
//! partner copies or parity deposits: the cost model is store-and-
//! forward absorbed by the sender's NIC charge, which keeps every
//! rank's clock a pure function of its own actions.

pub mod drain;
pub mod partner;
pub mod tiered;
pub mod xor;

use std::sync::Arc;

pub use drain::{DrainQueue, DrainStats, DrainTopology};
pub use partner::Partner;
pub use tiered::{RecoveryPlan, RecoverySource, TierReader, TierTopology, TierUsage, TieredStore};
pub use xor::{xor_encode, xor_reconstruct, XorParity, PARITY_RANK_BASE};

use crate::store::{ChunkKey, StableStorage, StorageError};

/// Which redundancy scheme protects the node-local tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// No cross-node redundancy: node loss falls back to the durable
    /// tier (the single-tier baseline with a local write cache).
    LocalOnly,
    /// Full copy on the partner rank `(r + offset) % nranks`.
    Partner {
        /// Partner distance; 1 pairs each rank with its neighbour.
        offset: usize,
    },
    /// XOR parity over groups of `group_size` consecutive ranks, the
    /// parity block held outside the group.
    XorParity {
        /// Ranks per parity group (the storage overhead is
        /// `1/group_size` instead of the partner scheme's `1x`).
        group_size: usize,
    },
}

impl SchemeSpec {
    /// Short scheme name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeSpec::LocalOnly => "local-only",
            SchemeSpec::Partner { .. } => "partner",
            SchemeSpec::XorParity { .. } => "xor-parity",
        }
    }

    /// Build the scheme implementation.
    pub fn build(&self, nranks: usize) -> Box<dyn RedundancyScheme> {
        match *self {
            SchemeSpec::LocalOnly => Box::new(NoRedundancy),
            SchemeSpec::Partner { offset } => Box::new(Partner::new(nranks, offset)),
            SchemeSpec::XorParity { group_size } => Box::new(XorParity::new(nranks, group_size)),
        }
    }
}

/// The node-local stores of every rank, indexed by rank. A scheme
/// reads survivors' stores and writes redundancy data into peers'
/// stores through this slice.
pub type LocalStores = [Arc<dyn StableStorage>];

/// A cross-node redundancy scheme over the node-local tier.
///
/// `publish` is called by the owning rank's thread right after the
/// chunk landed in its own local store; `reconstruct` is called during
/// recovery when the owner's local copy is gone.
pub trait RedundancyScheme: Send + Sync {
    /// The spec this scheme was built from.
    fn spec(&self) -> SchemeSpec;

    /// Record redundancy information for `data`, just written by
    /// `rank` under `key`. Returns the bytes `rank` pushes over its
    /// NIC for it.
    fn publish(
        &self,
        locals: &LocalStores,
        rank: usize,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<u64, StorageError>;

    /// Rebuild `key` (owned by the lost rank `key.rank`) from
    /// surviving local stores. Returns the chunk bytes and the bytes
    /// pulled over the recovering rank's NIC.
    fn reconstruct(
        &self,
        locals: &LocalStores,
        key: ChunkKey,
    ) -> Result<(Vec<u8>, u64), StorageError>;

    /// Chunk-key rank namespaces that may live in `holder`'s local
    /// store under this scheme (its own rank, ranks it holds partner
    /// copies for, parity tags). Used to wipe a node's local tier
    /// through the storage trait alone.
    fn held_ranks(&self, holder: usize) -> Vec<u32>;
}

/// The trivial scheme: nothing is published, nothing can be rebuilt.
struct NoRedundancy;

impl RedundancyScheme for NoRedundancy {
    fn spec(&self) -> SchemeSpec {
        SchemeSpec::LocalOnly
    }

    fn publish(
        &self,
        _locals: &LocalStores,
        _rank: usize,
        _key: ChunkKey,
        _data: &[u8],
    ) -> Result<u64, StorageError> {
        Ok(0)
    }

    fn reconstruct(
        &self,
        _locals: &LocalStores,
        key: ChunkKey,
    ) -> Result<(Vec<u8>, u64), StorageError> {
        Err(StorageError::NotFound(key))
    }

    fn held_ranks(&self, holder: usize) -> Vec<u32> {
        vec![holder as u32]
    }
}
