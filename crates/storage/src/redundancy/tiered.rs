//! The tiered store: node-local tier + redundancy scheme + durable
//! drain, with tiered recovery.
//!
//! A [`TierTopology`] is built once per run and shared by every rank
//! thread (and across recovery attempts — node-local data survives a
//! *process* restart, which is exactly what makes the local tier worth
//! having). Each rank writes through its [`TieredStore`] handle:
//!
//! * the chunk lands in the rank's node-local store, charged on the
//!   rank's node-local device;
//! * the redundancy scheme publishes it across the interconnect,
//!   charged on the rank's NIC rail (the two overlap — the returned
//!   completion is their max);
//! * at commit, the [`DrainQueue`](super::DrainQueue) copies drain
//!   targets to the shared array in the background.
//!
//! Recovery reads through a [`TierReader`]: local first, then peer
//! reconstruction (depositing rebuilt chunks back into the local tier
//! so later incrementals and drains find them), then the shared
//! array. [`TierTopology::plan_recovery`] picks the cluster-wide
//! resume generation the same way — local, reconstructable, else the
//! last *fully drained* durable generation, else a cold restart.
//!
//! The reader charges fresh device clones rather than the live run
//! devices: a restarted process finds its devices idle, and recovery
//! cost must not depend on how busy the devices were when the previous
//! attempt died mid-flight.

use parking_lot::Mutex;
use std::sync::Arc;

use ickpt_obs::{DeviceKind, Event, Lane, Recorder, RecoveryTier};
use ickpt_sim::{BandwidthDevice, SimDuration, SimTime};

use crate::chunk::{peek_lineage, ChunkKind};
use crate::store::{ChunkKey, MemStore, StableStorage, StorageError};
use crate::throttle::{shared_device, SharedBandwidthDevice};

use super::{DrainQueue, DrainStats, DrainTopology, RedundancyScheme, SchemeSpec};

/// Where a recovery got its data from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Node-local tier intact (process failure): restore in place.
    Local,
    /// Node-local tier lost; the chain was rebuilt from partner/parity
    /// peers over the network.
    Reconstructed,
    /// Reconstruction impossible; fall back to the last generation
    /// fully drained to the shared array.
    Durable,
    /// Nothing usable anywhere: restart from scratch.
    ColdRestart,
}

impl RecoverySource {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RecoverySource::Local => "local",
            RecoverySource::Reconstructed => "reconstructed",
            RecoverySource::Durable => "durable",
            RecoverySource::ColdRestart => "cold-restart",
        }
    }

    /// The flight recorder's view of this source.
    pub fn obs_tier(&self) -> RecoveryTier {
        match self {
            RecoverySource::Local => RecoveryTier::Local,
            RecoverySource::Reconstructed => RecoveryTier::Reconstructed,
            RecoverySource::Durable => RecoveryTier::Durable,
            RecoverySource::ColdRestart => RecoveryTier::ColdRestart,
        }
    }
}

/// The cluster-wide recovery decision after a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// Generation every rank restores (`None` = cold restart).
    pub generation: Option<u64>,
    /// Tier serving the failed rank.
    pub source: RecoverySource,
}

/// Per-rank, per-tier byte/time accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierUsage {
    /// Chunk + manifest bytes written to the node-local tier.
    pub local_bytes: u64,
    /// Node-local device busy time.
    pub local_busy: SimDuration,
    /// Bytes pushed over the NIC rail for redundancy (partner copies,
    /// parity contributions, manifest replication).
    pub redundancy_bytes: u64,
    /// NIC rail busy time.
    pub nic_busy: SimDuration,
    /// Recovery bytes served by the node-local tier.
    pub recovery_local_bytes: u64,
    /// Recovery bytes pulled over the network for reconstruction.
    pub recovery_net_bytes: u64,
    /// Recovery bytes read from the shared array.
    pub recovery_durable_bytes: u64,
    /// Virtual time this rank spent reading its recovery data.
    pub recovery_time: SimDuration,
}

/// The multilevel storage of one run. See the module docs.
pub struct TierTopology {
    nranks: usize,
    scheme: Box<dyn RedundancyScheme>,
    locals: Vec<Arc<dyn StableStorage>>,
    local_devices: Vec<SharedBandwidthDevice>,
    nics: Vec<SharedBandwidthDevice>,
    /// Prototypes for the fresh devices recovery readers charge.
    local_proto: BandwidthDevice,
    nic_proto: BandwidthDevice,
    array_proto: BandwidthDevice,
    shared: Arc<dyn StableStorage>,
    array: SharedBandwidthDevice,
    drain: DrainQueue,
    counters: Vec<Mutex<TierUsage>>,
    obs: Mutex<Recorder>,
}

impl TierTopology {
    /// Build a topology with in-memory node-local stores (the
    /// simulation default: a RAM-disk class cache per node).
    pub fn new(
        nranks: usize,
        spec: SchemeSpec,
        local_proto: BandwidthDevice,
        nic_proto: BandwidthDevice,
        array_proto: BandwidthDevice,
        shared: Arc<dyn StableStorage>,
        drain_every: u64,
    ) -> Arc<Self> {
        let locals =
            (0..nranks).map(|_| Arc::new(MemStore::new()) as Arc<dyn StableStorage>).collect();
        Self::with_local_stores(
            nranks,
            spec,
            local_proto,
            nic_proto,
            array_proto,
            shared,
            drain_every,
            locals,
        )
    }

    /// Build over caller-provided node-local stores (e.g. per-rank
    /// [`FileStore`](crate::FileStore) directories, so the tier layout
    /// is inspectable on disk).
    #[allow(clippy::too_many_arguments)]
    pub fn with_local_stores(
        nranks: usize,
        spec: SchemeSpec,
        local_proto: BandwidthDevice,
        nic_proto: BandwidthDevice,
        array_proto: BandwidthDevice,
        shared: Arc<dyn StableStorage>,
        drain_every: u64,
        locals: Vec<Arc<dyn StableStorage>>,
    ) -> Arc<Self> {
        assert!(nranks >= 1);
        assert_eq!(locals.len(), nranks);
        Arc::new(Self {
            nranks,
            scheme: spec.build(nranks),
            locals,
            local_devices: (0..nranks).map(|_| shared_device(local_proto.clone())).collect(),
            nics: (0..nranks).map(|_| shared_device(nic_proto.clone())).collect(),
            local_proto,
            nic_proto,
            array_proto: array_proto.clone(),
            shared,
            array: shared_device(array_proto),
            drain: DrainQueue::new(nranks, drain_every),
            counters: (0..nranks).map(|_| Mutex::new(TierUsage::default())).collect(),
            obs: Mutex::new(Recorder::disabled()),
        })
    }

    /// Attach a flight recorder to every tier (call before the run
    /// starts writing): rank handles, the drain queue, and recovery
    /// readers all record through it.
    pub fn attach_obs(&self, obs: Recorder) {
        self.drain.attach_obs(obs.clone());
        *self.obs.lock() = obs;
    }

    /// Select how drain traffic is charged on the shared array (call
    /// before the run starts writing, like [`TierTopology::attach_obs`]).
    pub fn set_drain_topology(&self, topology: DrainTopology) {
        self.drain.set_topology(topology);
    }

    /// Route drain traffic onto a striped multi-device array (call
    /// before the run starts writing). See [`DrainQueue::set_stripe`]:
    /// stored bytes and drain accounting are unchanged; the charges
    /// move from the single FIFO array device onto the stripe's
    /// devices, chunk-split and round-robined.
    pub fn set_array_stripe(&self, stripe: Arc<Mutex<ickpt_sim::StripedArray>>) {
        self.drain.set_stripe(stripe);
    }

    fn obs(&self) -> Recorder {
        self.obs.lock().clone()
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The configured scheme.
    pub fn spec(&self) -> SchemeSpec {
        self.scheme.spec()
    }

    /// A rank's write handle.
    pub fn handle(self: &Arc<Self>, rank: usize) -> TieredStore {
        assert!(rank < self.nranks);
        TieredStore { topo: self.clone(), rank }
    }

    /// A rank's recovery reader, starting its virtual clock at `start`.
    pub fn reader(self: &Arc<Self>, rank: usize, start: SimTime) -> TierReader {
        TierReader {
            topo: self.clone(),
            rank,
            clock: Mutex::new(start),
            local_dev: Mutex::new(self.local_proto.clone()),
            nic_dev: Mutex::new(self.nic_proto.clone()),
            array_dev: Mutex::new(self.array_proto.clone()),
        }
    }

    /// A rank's node-local store (inspection/tests).
    pub fn local(&self, rank: usize) -> &Arc<dyn StableStorage> {
        &self.locals[rank]
    }

    /// The durable shared store.
    pub fn shared(&self) -> &Arc<dyn StableStorage> {
        &self.shared
    }

    /// Wipe a rank's node-local tier — the effect of losing the node.
    /// Deletes every chunk namespace the scheme may have placed there
    /// (own chunks, partner copies, parity blocks) plus all manifests.
    pub fn wipe_local(&self, rank: usize) -> Result<(), StorageError> {
        let store = &self.locals[rank];
        for id in self.scheme.held_ranks(rank) {
            for gen in store.list_generations(id)? {
                store.delete_chunk(ChunkKey::new(id, gen))?;
            }
        }
        for gen in store.list_manifests()? {
            store.delete_manifest(gen)?;
        }
        Ok(())
    }

    /// Fetch a chunk without charging any device (bookkeeping reads,
    /// e.g. the wasted-time accounting between attempts): local tier,
    /// then reconstruction, then the shared array.
    pub fn fetch_chunk_untimed(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        let rank = key.rank as usize;
        if let Ok(data) = self.locals[rank].get_chunk(key) {
            return Ok(data);
        }
        if let Ok((data, _)) = self.scheme.reconstruct(&self.locals, key) {
            return Ok(data);
        }
        self.shared.get_chunk(key)
    }

    /// Whether the failed rank's whole chain ending at `generation`
    /// can be rebuilt from redundancy peers (dry run, nothing kept).
    fn chain_reconstructible(&self, rank: usize, generation: u64) -> bool {
        let mut gen = generation;
        loop {
            let Ok((data, _)) =
                self.scheme.reconstruct(&self.locals, ChunkKey::new(rank as u32, gen))
            else {
                return false;
            };
            let Ok(lineage) = peek_lineage(&data) else {
                return false;
            };
            match (lineage.kind, lineage.parent) {
                (ChunkKind::Full, _) => return true,
                (ChunkKind::Incremental, Some(parent)) => gen = parent,
                (ChunkKind::Incremental, None) => return false,
            }
        }
    }

    /// Decide the cluster-wide resume point after a failure at
    /// `fail_time`. `wiped` says whether the failed rank's node-local
    /// tier was lost (node loss) or survived (process failure);
    /// `last_committed` is the newest globally committed generation.
    pub fn plan_recovery(
        &self,
        failed_rank: usize,
        wiped: bool,
        last_committed: Option<u64>,
        fail_time: SimTime,
    ) -> RecoveryPlan {
        let Some(gen) = last_committed else {
            return RecoveryPlan { generation: None, source: RecoverySource::ColdRestart };
        };
        if !wiped {
            return RecoveryPlan { generation: Some(gen), source: RecoverySource::Local };
        }
        if self.chain_reconstructible(failed_rank, gen) {
            return RecoveryPlan { generation: Some(gen), source: RecoverySource::Reconstructed };
        }
        match self.drain.fully_drained_before(fail_time) {
            Some(drained) => {
                RecoveryPlan { generation: Some(drained), source: RecoverySource::Durable }
            }
            None => RecoveryPlan { generation: None, source: RecoverySource::ColdRestart },
        }
    }

    /// Roll the drain back after a failure (see
    /// [`DrainQueue::rollback`]).
    pub fn rollback_drain(
        &self,
        resume_gen: Option<u64>,
        fail_time: SimTime,
    ) -> Result<(), StorageError> {
        self.drain.rollback(resume_gen, fail_time, &self.shared)
    }

    /// Per-rank tier accounting, with device busy times filled in.
    pub fn usage(&self, rank: usize) -> TierUsage {
        let mut usage = *self.counters[rank].lock();
        usage.local_busy = self.local_devices[rank].lock().busy_total();
        usage.nic_busy = self.nics[rank].lock().busy_total();
        usage
    }

    /// Drain accounting, with the array busy time filled in.
    pub fn drain_stats(&self) -> DrainStats {
        let mut stats = self.drain.stats();
        stats.array_busy = self.array.lock().busy_total();
        stats
    }

    /// Fold a rank's recovery read cost into its accounting.
    pub fn note_recovery_time(&self, rank: usize, cost: SimDuration) {
        self.counters[rank].lock().recovery_time += cost;
    }
}

/// A rank's write path through the tiers. See the module docs.
pub struct TieredStore {
    topo: Arc<TierTopology>,
    rank: usize,
}

impl TieredStore {
    /// The topology this handle writes into.
    pub fn topology(&self) -> &Arc<TierTopology> {
        &self.topo
    }

    /// Write a chunk at virtual time `now`: node-local write and
    /// redundancy publish proceed in parallel; returns the later
    /// completion.
    pub fn put_chunk_timed(
        &self,
        now: SimTime,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        let t = &*self.topo;
        let obs = t.obs();
        let rank_lane = Lane::Rank(self.rank as u32);
        t.locals[self.rank].put_chunk(key, data)?;
        let local = t.local_devices[self.rank].lock().transfer_detailed(now, data.len() as u64);
        obs.emit_span(
            Lane::Device(DeviceKind::Local, self.rank as u32),
            local.start,
            local.service,
            Event::DeviceTransfer {
                bytes: data.len() as u64,
                queue_wait_ns: local.queue_wait.0,
                service_ns: local.service.0,
            },
        );
        let sent = t.scheme.publish(&t.locals, self.rank, key, data)?;
        let t_net = if sent > 0 {
            let net = t.nics[self.rank].lock().transfer_detailed(now, sent);
            obs.emit_span(
                Lane::Device(DeviceKind::Nic, self.rank as u32),
                net.start,
                net.service,
                Event::DeviceTransfer {
                    bytes: sent,
                    queue_wait_ns: net.queue_wait.0,
                    service_ns: net.service.0,
                },
            );
            obs.emit_span(
                rank_lane,
                now,
                net.done.saturating_sub(now),
                Event::RedundancyPublish { generation: key.generation, bytes: sent },
            );
            net.done
        } else {
            now
        };
        let done = local.done.max(t_net);
        obs.emit_span(
            rank_lane,
            now,
            done.saturating_sub(now),
            Event::ChunkPut {
                generation: key.generation,
                bytes: data.len() as u64,
                queue_wait_ns: local.queue_wait.0,
                service_ns: local.service.0,
            },
        );
        let mut c = t.counters[self.rank].lock();
        c.local_bytes += data.len() as u64;
        c.redundancy_bytes += sent;
        Ok(done)
    }

    /// Write the commit manifest at virtual time `now` (called by the
    /// committing rank): it lands on every node's local store so any
    /// survivor can serve it during recovery. The writer pays one
    /// local write plus `nranks - 1` NIC pushes.
    pub fn put_manifest_timed(
        &self,
        now: SimTime,
        generation: u64,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        let t = &*self.topo;
        let obs = t.obs();
        for local in &t.locals {
            local.put_manifest(generation, data)?;
        }
        let local = t.local_devices[self.rank].lock().transfer_detailed(now, data.len() as u64);
        obs.emit_span(
            Lane::Device(DeviceKind::Local, self.rank as u32),
            local.start,
            local.service,
            Event::DeviceTransfer {
                bytes: data.len() as u64,
                queue_wait_ns: local.queue_wait.0,
                service_ns: local.service.0,
            },
        );
        let push = data.len() as u64 * (t.nranks as u64 - 1);
        let t_net = if push > 0 {
            let net = t.nics[self.rank].lock().transfer_detailed(now, push);
            obs.emit_span(
                Lane::Device(DeviceKind::Nic, self.rank as u32),
                net.start,
                net.service,
                Event::DeviceTransfer {
                    bytes: push,
                    queue_wait_ns: net.queue_wait.0,
                    service_ns: net.service.0,
                },
            );
            net.done
        } else {
            now
        };
        let done = local.done.max(t_net);
        obs.emit_span(
            Lane::Rank(self.rank as u32),
            now,
            done.saturating_sub(now),
            Event::ManifestPut { generation, bytes: data.len() as u64 },
        );
        let mut c = t.counters[self.rank].lock();
        c.local_bytes += data.len() as u64;
        c.redundancy_bytes += push;
        Ok(done)
    }

    /// A rank's commit notification: feeds the drain (the last
    /// notifier flushes drain targets to the shared array).
    pub fn note_committed(
        &self,
        generation: u64,
        commit_time: SimTime,
    ) -> Result<(), StorageError> {
        let t = &*self.topo;
        t.drain.note_committed(generation, commit_time, &t.locals, &t.shared, &t.array)
    }
}

/// A rank's tiered recovery reader: a [`StableStorage`] view whose
/// reads advance an internal virtual clock, trying local → peer
/// reconstruction → shared array. See the module docs for why it
/// charges fresh device clones.
pub struct TierReader {
    topo: Arc<TierTopology>,
    rank: usize,
    clock: Mutex<SimTime>,
    local_dev: Mutex<BandwidthDevice>,
    nic_dev: Mutex<BandwidthDevice>,
    array_dev: Mutex<BandwidthDevice>,
}

enum ServedBy {
    Local,
    Net,
    Durable,
}

impl TierReader {
    /// Virtual instant the last charged read completed.
    pub fn now(&self) -> SimTime {
        *self.clock.lock()
    }

    fn charge(&self, tier: ServedBy, bytes: u64) {
        let mut clock = self.clock.lock();
        let now = *clock;
        let dev = match tier {
            ServedBy::Local => &self.local_dev,
            ServedBy::Net => &self.nic_dev,
            ServedBy::Durable => &self.array_dev,
        };
        let t = dev.lock().transfer_detailed(now, bytes);
        *clock = t.done;
        drop(clock);
        let obs_tier = match tier {
            ServedBy::Local => RecoveryTier::Local,
            ServedBy::Net => RecoveryTier::Reconstructed,
            ServedBy::Durable => RecoveryTier::Durable,
        };
        // Spans land on the rank lane with the reader's own clock —
        // the fresh per-reader devices keep them deterministic even
        // when the live run devices were mid-transfer at the failure.
        self.topo.obs().emit_span(
            Lane::Rank(self.rank as u32),
            now,
            t.done.saturating_sub(now),
            Event::RecoveryRead { tier: obs_tier, bytes },
        );
        let mut c = self.topo.counters[self.rank].lock();
        match tier {
            ServedBy::Local => c.recovery_local_bytes += bytes,
            ServedBy::Net => c.recovery_net_bytes += bytes,
            ServedBy::Durable => c.recovery_durable_bytes += bytes,
        }
    }
}

impl StableStorage for TierReader {
    fn put_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        self.topo.locals[self.rank].put_chunk(key, data)?;
        self.charge(ServedBy::Local, data.len() as u64);
        Ok(())
    }

    fn get_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        let t = &*self.topo;
        if let Ok(data) = t.locals[self.rank].get_chunk(key) {
            self.charge(ServedBy::Local, data.len() as u64);
            return Ok(data);
        }
        if let Ok((data, pulled)) = t.scheme.reconstruct(&t.locals, key) {
            self.charge(ServedBy::Net, pulled);
            t.obs().emit(
                Lane::Rank(self.rank as u32),
                self.now(),
                Event::RedundancyReconstruct {
                    generation: key.generation,
                    pieces: t.nranks as u32 - 1,
                    bytes: pulled,
                },
            );
            // Re-populate the local tier: later incrementals, drains
            // and a second failure all need the chain back in place.
            t.locals[self.rank].put_chunk(key, &data)?;
            return Ok(data);
        }
        let data = t.shared.get_chunk(key)?;
        self.charge(ServedBy::Durable, data.len() as u64);
        Ok(data)
    }

    fn delete_chunk(&self, key: ChunkKey) -> Result<(), StorageError> {
        self.topo.locals[self.rank].delete_chunk(key)
    }

    fn list_generations(&self, rank: u32) -> Result<Vec<u64>, StorageError> {
        self.topo.locals[self.rank].list_generations(rank)
    }

    fn put_manifest(&self, generation: u64, data: &[u8]) -> Result<(), StorageError> {
        self.topo.locals[self.rank].put_manifest(generation, data)?;
        self.charge(ServedBy::Local, data.len() as u64);
        Ok(())
    }

    fn get_manifest(&self, generation: u64) -> Result<Vec<u8>, StorageError> {
        let t = &*self.topo;
        if let Ok(data) = t.locals[self.rank].get_manifest(generation) {
            self.charge(ServedBy::Local, data.len() as u64);
            return Ok(data);
        }
        // The manifest is replicated on every node: pull it from the
        // first survivor that has it.
        for (r, local) in t.locals.iter().enumerate() {
            if r == self.rank {
                continue;
            }
            if let Ok(data) = local.get_manifest(generation) {
                self.charge(ServedBy::Net, data.len() as u64);
                return Ok(data);
            }
        }
        let data = t.shared.get_manifest(generation)?;
        self.charge(ServedBy::Durable, data.len() as u64);
        Ok(data)
    }

    fn delete_manifest(&self, generation: u64) -> Result<(), StorageError> {
        self.topo.locals[self.rank].delete_manifest(generation)
    }

    fn list_manifests(&self) -> Result<Vec<u64>, StorageError> {
        self.topo.locals[self.rank].list_manifests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::manifest::Manifest;

    const MB: u64 = 1_000_000;

    fn topo(spec: SchemeSpec, drain_every: u64) -> Arc<TierTopology> {
        TierTopology::new(
            4,
            spec,
            BandwidthDevice::new(1000 * MB, SimDuration::ZERO),
            BandwidthDevice::new(900 * MB, SimDuration::ZERO),
            BandwidthDevice::new(320 * MB, SimDuration::ZERO),
            Arc::new(MemStore::new()),
            drain_every,
        )
    }

    fn chunk(rank: u32, generation: u64, parent: Option<u64>, fill: u8) -> Vec<u8> {
        Chunk {
            kind: if parent.is_some() { ChunkKind::Incremental } else { ChunkKind::Full },
            rank,
            generation,
            parent,
            capture_time_ns: generation * 1_000_000,
            heap_pages: 4,
            mmap_blocks: vec![],
            zero_ranges: vec![],
            records: vec![crate::chunk::PageRecord {
                start_page: 0,
                data: vec![fill; crate::chunk::CHUNK_PAGE_SIZE],
            }],
            delta_records: vec![],
            dropped_pages: 0,
            app_state: vec![],
        }
        .encode()
    }

    /// Drive one committed generation through every rank's handle at
    /// time `now`, like the cluster runner does.
    fn commit_generation(topo: &Arc<TierTopology>, gen: u64, parent: Option<u64>, now: SimTime) {
        for rank in 0..4usize {
            let h = topo.handle(rank);
            h.put_chunk_timed(
                now,
                ChunkKey::new(rank as u32, gen),
                &chunk(rank as u32, gen, parent, rank as u8 + 1),
            )
            .unwrap();
        }
        let manifest =
            Manifest { generation: gen, commit_time_ns: now.0, nranks: 4, entries: vec![] };
        topo.handle(0).put_manifest_timed(now, gen, &manifest.encode()).unwrap();
        for rank in 0..4usize {
            topo.handle(rank).note_committed(gen, now).unwrap();
        }
    }

    #[test]
    fn writes_land_local_and_on_partner() {
        let topo = topo(SchemeSpec::Partner { offset: 1 }, 1);
        commit_generation(&topo, 0, None, SimTime::ZERO);
        let key = ChunkKey::new(2, 0);
        assert!(topo.local(2).get_chunk(key).is_ok(), "own local copy");
        assert!(topo.local(3).get_chunk(key).is_ok(), "partner copy");
        assert!(topo.local(1).get_manifest(0).is_ok(), "manifest replicated");
        let usage = topo.usage(2);
        assert!(usage.local_bytes > 0 && usage.redundancy_bytes > 0);
        assert!(usage.nic_busy > SimDuration::ZERO);
        // drain_every=1: the generation drained immediately.
        assert_eq!(topo.shared().list_manifests().unwrap(), vec![0]);
    }

    #[test]
    fn node_loss_recovers_by_reconstruction() {
        for spec in [SchemeSpec::Partner { offset: 1 }, SchemeSpec::XorParity { group_size: 2 }] {
            let topo = topo(spec, 8);
            commit_generation(&topo, 0, None, SimTime::from_secs(1));
            commit_generation(&topo, 1, Some(0), SimTime::from_secs(2));
            let original = topo.local(1).get_chunk(ChunkKey::new(1, 1)).unwrap();
            topo.wipe_local(1).unwrap();
            assert!(topo.local(1).get_chunk(ChunkKey::new(1, 1)).is_err());
            let plan = topo.plan_recovery(1, true, Some(1), SimTime::from_secs(3));
            assert_eq!(plan.source, RecoverySource::Reconstructed, "{spec:?}");
            assert_eq!(plan.generation, Some(1));
            let reader = topo.reader(1, SimTime::ZERO);
            let rebuilt = reader.get_chunk(ChunkKey::new(1, 1)).unwrap();
            assert_eq!(rebuilt, original, "byte-identical reconstruction ({spec:?})");
            assert!(reader.now() > SimTime::ZERO, "reconstruction costs virtual time");
            assert!(reader.get_manifest(1).is_ok(), "manifest from a survivor");
            // The rebuilt chunk was deposited back into the local tier.
            assert_eq!(topo.local(1).get_chunk(ChunkKey::new(1, 1)).unwrap(), original);
            assert!(topo.usage(1).recovery_net_bytes > 0);
        }
    }

    #[test]
    fn local_only_falls_back_to_drained_generation() {
        // A deliberately slow array (100 kB/s) so a batch drain takes
        // a noticeable fraction of a virtual second.
        let topo = TierTopology::new(
            4,
            SchemeSpec::LocalOnly,
            BandwidthDevice::new(1000 * MB, SimDuration::ZERO),
            BandwidthDevice::new(900 * MB, SimDuration::ZERO),
            BandwidthDevice::new(100_000, SimDuration::ZERO),
            Arc::new(MemStore::new()),
            2,
        );
        // Gens 0..=3; targets are 1 and 3. Fail right after gen 3's
        // commit, while its drain is still in flight on the slow
        // array: only gen 1 counts as durable.
        for gen in 0..4u64 {
            commit_generation(&topo, gen, (gen > 0).then(|| gen - 1), SimTime::from_secs(gen + 1));
        }
        topo.wipe_local(1).unwrap();
        let fail = SimTime::from_secs_f64(4.1);
        let plan = topo.plan_recovery(1, true, Some(3), fail);
        assert_eq!(plan.source, RecoverySource::Durable);
        assert_eq!(plan.generation, Some(1), "forced back to the last fully drained target");
        // The wiped rank restores that generation from the array.
        let reader = topo.reader(1, SimTime::ZERO);
        assert!(reader.get_chunk(ChunkKey::new(1, 1)).is_ok());
        assert!(topo.usage(1).recovery_durable_bytes > 0);
        // A survivor serves the same generation from its local tier.
        let reader0 = topo.reader(0, SimTime::ZERO);
        assert!(reader0.get_chunk(ChunkKey::new(0, 1)).is_ok());
        assert_eq!(topo.usage(0).recovery_durable_bytes, 0);
    }

    #[test]
    fn process_failure_restores_locally() {
        let topo = topo(SchemeSpec::Partner { offset: 1 }, 4);
        commit_generation(&topo, 0, None, SimTime::from_secs(1));
        let plan = topo.plan_recovery(2, false, Some(0), SimTime::from_secs(2));
        assert_eq!(plan.source, RecoverySource::Local);
        assert_eq!(plan.generation, Some(0));
    }

    #[test]
    fn cold_restart_when_nothing_anywhere() {
        let topo = topo(SchemeSpec::LocalOnly, 4);
        let plan = topo.plan_recovery(0, true, None, SimTime::from_secs(1));
        assert_eq!(plan.source, RecoverySource::ColdRestart);
        // Committed but neither reconstructible nor drained.
        commit_generation(&topo, 0, None, SimTime::from_secs(1));
        topo.wipe_local(0).unwrap();
        let plan = topo.plan_recovery(0, true, Some(0), SimTime::from_secs(2));
        assert_eq!(plan.source, RecoverySource::ColdRestart);
        assert_eq!(plan.generation, None);
    }

    #[test]
    fn tiered_writes_are_deterministic_across_thread_orders() {
        // Run the same two-generation schedule twice with rank threads
        // deliberately started in different orders; every returned
        // completion time and counter must match.
        let run = |reverse: bool| {
            let topo = topo(SchemeSpec::XorParity { group_size: 2 }, 2);
            let mut times = Vec::new();
            for gen in 0..2u64 {
                let now = SimTime::from_secs(gen + 1);
                let mut order: Vec<usize> = (0..4).collect();
                if reverse {
                    order.reverse();
                }
                let mut done: Vec<(usize, SimTime)> = std::thread::scope(|s| {
                    let topo = &topo;
                    let handles: Vec<_> = order
                        .iter()
                        .map(|&rank| {
                            s.spawn(move || {
                                let h = topo.handle(rank);
                                let t = h
                                    .put_chunk_timed(
                                        now,
                                        ChunkKey::new(rank as u32, gen),
                                        &chunk(
                                            rank as u32,
                                            gen,
                                            (gen > 0).then(|| gen - 1),
                                            rank as u8,
                                        ),
                                    )
                                    .unwrap();
                                (rank, t)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                done.sort_by_key(|&(r, _)| r);
                times.push(done);
                let manifest =
                    Manifest { generation: gen, commit_time_ns: now.0, nranks: 4, entries: vec![] };
                topo.handle(0).put_manifest_timed(now, gen, &manifest.encode()).unwrap();
                for rank in 0..4usize {
                    topo.handle(rank).note_committed(gen, now).unwrap();
                }
            }
            let parity = topo.local(2).get_chunk(ChunkKey::new(super::super::PARITY_RANK_BASE, 1));
            (times, parity.unwrap(), topo.drain_stats())
        };
        assert_eq!(run(false), run(true));
    }
}
