//! # ickpt-storage — stable storage for checkpoints
//!
//! Checkpointing and rollback recovery is "based on periodically saving
//! the process state to stable storage" (§1 of the paper). This crate
//! provides that stable storage:
//!
//! * [`crc`] — CRC-32 (IEEE) implemented locally so checkpoint chunks
//!   are integrity-checked without an external dependency.
//! * [`hash`] — the content layer's 4-lane multiply-xor 64-bit hash:
//!   sub-page block digests that detect silent same-value writes and
//!   drive delta encoding of partially-written pages.
//! * [`kernels`] — runtime-dispatched SIMD kernels for the byte-touching
//!   hot paths (fused single-pass page scan, zero detection, XOR
//!   accumulate, CRC folding, block compare), bit-identical to the
//!   scalar reference at every backend; `ICKPT_KERNELS=scalar|auto`.
//! * [`chunk`] — the on-disk checkpoint chunk format: a header
//!   describing rank/generation/lineage and the mapping state, followed
//!   by page records, closed with a CRC.
//! * [`store`] — the [`store::StableStorage`] trait with an in-memory
//!   backend ([`store::MemStore`]) and a real filesystem backend
//!   ([`store::FileStore`]).
//! * [`manifest`] — the commit records that make a set of per-rank
//!   chunks a globally consistent checkpoint generation.
//! * [`throttle`] — virtual-time bandwidth accounting used to charge
//!   checkpoint writes against the paper's device models (900 MB/s
//!   network, 320 MB/s disk, §3).
//! * [`plan`] — latest-wins restore planning: walk a checkpoint chain
//!   once and assign each live page to the single newest record that
//!   contains it, so restore and compaction touch each page exactly
//!   once regardless of chain length.
//! * [`gc`] — checkpoint-chain compaction: bounded-length incremental
//!   chains by executing the restore plan into a new base in one pass.
//! * [`redundancy`] — multilevel redundant storage: per-rank node-local
//!   tiers protected by partner replication or XOR parity groups over
//!   the interconnect, with an asynchronous drain to the shared array
//!   and tiered recovery (local → reconstruction → durable).

pub mod chunk;
pub mod crc;
pub mod gc;
pub mod hash;
pub mod kernels;
pub mod manifest;
pub mod plan;
pub mod redundancy;
pub mod store;
pub mod throttle;

pub use chunk::{
    peek_lineage, Chunk, ChunkKind, ChunkLineage, ChunkView, DeltaRecord, DeltaRef, PageRecord,
    RecordRef, CHUNK_PAGE_SIZE,
};
pub use hash::{hash64, page_block_hashes, zero_block_hash, BLOCKS_PER_PAGE, BLOCK_SIZE};
pub use kernels::FusedScan;
pub use manifest::{Manifest, RankEntry};
pub use plan::{
    shard_segments, ChunkPlanStats, DeltaBase, PlanSegment, PlanSource, RestorePlan, SegmentSource,
};
pub use redundancy::{
    xor_encode, xor_reconstruct, DrainQueue, DrainStats, DrainTopology, Partner, RecoveryPlan,
    RecoverySource, RedundancyScheme, SchemeSpec, TierReader, TierTopology, TierUsage, TieredStore,
    XorParity, PARITY_RANK_BASE,
};
pub use store::{ChunkKey, FileStore, MemStore, StableStorage, StorageError};
pub use throttle::{shared_device, SharedBandwidthDevice, ThrottledStore, TimedReads};
