//! aarch64 NEON kernel backend.
//!
//! NEON (ASIMD) is part of the aarch64 baseline, so no runtime
//! detection is needed — the table is always usable on this
//! architecture. The hash chains stay on the scalar multiplier (the
//! portable single-pass fused scan): aarch64 NEON has no 64×64→64
//! vector multiply either, and the scalar `mul` pipe is already the
//! binding resource, so vectorizing it would be emulation for its own
//! sake. The byte-parallel kernels (zero scan, XOR, compare) are where
//! NEON pays.

#![allow(unsafe_code)]

use std::arch::aarch64::{vceqq_u8, veorq_u8, vld1q_u8, vmaxvq_u8, vminvq_u8, vorrq_u8, vst1q_u8};

use super::{scalar, Kernels};

/// The NEON tier: always available on aarch64.
pub(crate) fn table() -> Kernels {
    Kernels {
        name: "neon",
        is_zero: is_zero_neon,
        fused_scan: scalar::fused_scan_onepass,
        xor_acc: xor_acc_neon,
        crc32_advance: crate::crc::update_slice8,
        bytes_eq: bytes_eq_neon,
    }
}

fn is_zero_neon(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        let p = chunk.as_ptr();
        // SAFETY: `chunk` is exactly 64 bytes, so all four 16-byte
        // loads are in bounds; vld1q_u8 has no alignment requirement;
        // NEON is aarch64 baseline.
        let max = unsafe {
            let a = vld1q_u8(p);
            let b = vld1q_u8(p.add(16));
            let c = vld1q_u8(p.add(32));
            let d = vld1q_u8(p.add(48));
            vmaxvq_u8(vorrq_u8(vorrq_u8(a, b), vorrq_u8(c, d)))
        };
        if max != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == 0)
}

fn xor_acc_neon(acc: &mut [u8], data: &[u8]) {
    debug_assert_eq!(acc.len(), data.len());
    let n = acc.len().min(data.len());
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n <= len` of both slices keeps the load
        // and store in bounds; the store goes through `acc`'s own
        // mutable pointer; NEON is aarch64 baseline.
        unsafe {
            let a = vld1q_u8(acc.as_ptr().add(i));
            let d = vld1q_u8(data.as_ptr().add(i));
            vst1q_u8(acc.as_mut_ptr().add(i), veorq_u8(a, d));
        }
        i += 16;
    }
    scalar::xor_acc(&mut acc[i..n], &data[i..n]);
}

fn bytes_eq_neon(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` = both slices' length, so both loads
        // are in bounds; NEON is aarch64 baseline.
        let min = unsafe {
            let va = vld1q_u8(a.as_ptr().add(i));
            let vb = vld1q_u8(b.as_ptr().add(i));
            vminvq_u8(vceqq_u8(va, vb))
        };
        if min != 0xFF {
            return false;
        }
        i += 16;
    }
    a[i..] == b[i..]
}
