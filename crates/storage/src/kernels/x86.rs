//! x86_64 kernel backends: SSE2 (baseline), AVX2, and PCLMULQDQ CRC.
//!
//! Dispatch safety contract: every `*_avx2` / `*_pclmul` wrapper in
//! this file is only ever installed into a [`Kernels`] table after
//! [`available`] has confirmed the matching CPUID feature at runtime,
//! so by the time a table entry is called the required instructions
//! are guaranteed present. SSE2 needs no detection — it is part of the
//! x86_64 baseline ABI.
//!
//! The fused scans are the interesting kernels. The hash is four
//! independent multiply-xor-rotate lanes per 256-byte block chain, and
//! the chains are independent across blocks, so a page's whole
//! identity triple (zero flag, block digests, derived page hash)
//! vectorizes freely. The multiply is 64-bit, which AVX2 lacks
//! (`vpmullq` is AVX-512), so the AVX2 tier emulates it with three
//! 32×32→64 `vpmuludq` multiplies per step:
//!
//! ```text
//! lo64(x · m) = (x_lo·m_lo) + ((x_lo·m_hi + x_hi·m_lo) << 32)
//! ```
//!
//! That chain is ~13 cycles of latency, so four block chains run
//! interleaved to hide it. The AVX-512VL tier replaces the whole
//! emulation with native `vpmullq`/`vprolq` (three instructions per
//! step) across eight interleaved chains.

#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi64, _mm256_castsi256_si128, _mm256_extracti128_si256,
    _mm256_loadu_si256, _mm256_mul_epu32, _mm256_mullo_epi64, _mm256_or_si256, _mm256_rol_epi64,
    _mm256_setr_epi64x, _mm256_setzero_si256, _mm256_slli_epi64, _mm256_srli_epi64,
    _mm256_storeu_si256, _mm256_testz_si256, _mm256_xor_si256, _mm512_loadu_si512,
    _mm512_mask_storeu_epi8, _mm512_storeu_si512, _mm512_xor_si512, _mm_and_si128,
    _mm_clmulepi64_si128, _mm_cmpeq_epi8, _mm_cvtsi128_si64, _mm_cvtsi32_si128, _mm_extract_epi32,
    _mm_extract_epi64, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set_epi32,
    _mm_set_epi64x, _mm_setzero_si128, _mm_srli_si128, _mm_storeu_si128, _mm_xor_si128,
};

use super::{scalar, FusedScan, Kernels, PORTABLE};
use crate::hash::{
    finish_lanes, hash64, page_hash_of_blocks, BLOCK_SIZE, M0, M1, M2, M3, S0, S1, S2, S3,
};

/// SSE2 tier: vectorized zero scan / XOR / compare (baseline on
/// x86_64), portable single-pass fused scan, slice-by-8 CRC.
pub(crate) static SSE2: Kernels = Kernels {
    name: "sse2",
    is_zero: is_zero_sse2,
    fused_scan: scalar::fused_scan_onepass,
    xor_acc: xor_acc_sse2,
    crc32_advance: crate::crc::update_slice8,
    bytes_eq: bytes_eq_sse2,
};

/// AVX2 tier: 32-byte-wide everything plus the fused SIMD scan.
static AVX2: Kernels = Kernels {
    name: "avx2",
    is_zero: is_zero_avx2,
    fused_scan: fused_scan_avx2,
    xor_acc: xor_acc_avx2,
    crc32_advance: crate::crc::update_slice8,
    bytes_eq: bytes_eq_avx2,
};

/// AVX-512VL tier: AVX2 data movement, but the fused scan's 64-bit
/// multiply and rotate become single native instructions
/// (`vpmullq`/`vprolq`) on 256-bit vectors.
static AVX512: Kernels = Kernels {
    name: "avx512vl",
    is_zero: is_zero_avx2,
    fused_scan: fused_scan_avx512,
    xor_acc: xor_acc_avx512,
    crc32_advance: crate::crc::update_slice8,
    bytes_eq: bytes_eq_avx2,
};

fn with_pclmul(mut base: Kernels, name: &'static str) -> Kernels {
    base.crc32_advance = crc32_advance_pclmul;
    base.name = name;
    base
}

/// Every tier this host can run, weakest first.
pub(crate) fn available() -> Vec<Kernels> {
    let mut tables = vec![SSE2];
    let pclmul = is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1");
    if pclmul {
        tables.push(with_pclmul(SSE2, "sse2+pclmul"));
    }
    if is_x86_feature_detected!("avx2") {
        tables.push(AVX2);
        if pclmul {
            tables.push(with_pclmul(AVX2, "avx2+pclmul"));
        }
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512dq")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
        {
            tables.push(AVX512);
            if pclmul {
                tables.push(with_pclmul(AVX512, "avx512vl+pclmul"));
            }
        }
    }
    tables
}

/// Best tier for this host.
pub(crate) fn best() -> Kernels {
    available().pop().unwrap_or(PORTABLE)
}

// ---------------------------------------------------------------- SSE2

fn is_zero_sse2(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        let p = chunk.as_ptr();
        // SAFETY: `chunk` is exactly 64 bytes, so the four 16-byte
        // unaligned loads below are in bounds; SSE2 is x86_64 baseline.
        let acc = unsafe {
            let a = _mm_loadu_si128(p.cast());
            let b = _mm_loadu_si128(p.add(16).cast());
            let c = _mm_loadu_si128(p.add(32).cast());
            let d = _mm_loadu_si128(p.add(48).cast());
            _mm_or_si128(_mm_or_si128(a, b), _mm_or_si128(c, d))
        };
        // SAFETY: SSE2 is x86_64 baseline.
        let all_zero = unsafe { _mm_movemask_epi8(_mm_cmpeq_epi8(acc, _mm_setzero_si128())) };
        if all_zero != 0xFFFF {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == 0)
}

fn xor_acc_sse2(acc: &mut [u8], data: &[u8]) {
    debug_assert_eq!(acc.len(), data.len());
    let n = acc.len().min(data.len());
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n <= len` of both slices, so the 16-byte
        // unaligned load/store pair stays in bounds; the store writes
        // through `acc`'s own mutable pointer. SSE2 is baseline.
        unsafe {
            let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
            let d = _mm_loadu_si128(data.as_ptr().add(i).cast());
            _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), _mm_xor_si128(a, d));
        }
        i += 16;
    }
    scalar::xor_acc(&mut acc[i..n], &data[i..n]);
}

fn bytes_eq_sse2(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` = both slices' length, so both 16-byte
        // unaligned loads are in bounds; SSE2 is x86_64 baseline.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))
        };
        if mask != 0xFFFF {
            return false;
        }
        i += 16;
    }
    a[i..] == b[i..]
}

// ---------------------------------------------------------------- AVX2

fn is_zero_avx2(data: &[u8]) -> bool {
    // SAFETY: this function is only installed in a dispatch table after
    // `is_x86_feature_detected!("avx2")` (see `available`).
    unsafe { is_zero_avx2_impl(data) }
}

/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn is_zero_avx2_impl(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(128);
    for chunk in &mut chunks {
        let p = chunk.as_ptr();
        let a = _mm256_loadu_si256(p.cast());
        let b = _mm256_loadu_si256(p.add(32).cast());
        let c = _mm256_loadu_si256(p.add(64).cast());
        let d = _mm256_loadu_si256(p.add(96).cast());
        let acc = _mm256_or_si256(_mm256_or_si256(a, b), _mm256_or_si256(c, d));
        if _mm256_testz_si256(acc, acc) == 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == 0)
}

fn xor_acc_avx2(acc: &mut [u8], data: &[u8]) {
    // SAFETY: only installed after runtime AVX2 detection (`available`).
    unsafe { xor_acc_avx2_impl(acc, data) }
}

/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn xor_acc_avx2_impl(acc: &mut [u8], data: &[u8]) {
    debug_assert_eq!(acc.len(), data.len());
    let n = acc.len().min(data.len());
    let mut i = 0;
    while i + 64 <= n {
        let a0 = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
        let a1 = _mm256_loadu_si256(acc.as_ptr().add(i + 32).cast());
        let d0 = _mm256_loadu_si256(data.as_ptr().add(i).cast());
        let d1 = _mm256_loadu_si256(data.as_ptr().add(i + 32).cast());
        _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), _mm256_xor_si256(a0, d0));
        _mm256_storeu_si256(acc.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(a1, d1));
        i += 64;
    }
    while i + 32 <= n {
        let a = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
        let d = _mm256_loadu_si256(data.as_ptr().add(i).cast());
        _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), _mm256_xor_si256(a, d));
        i += 32;
    }
    scalar::xor_acc(&mut acc[i..n], &data[i..n]);
}

fn bytes_eq_avx2(a: &[u8], b: &[u8]) -> bool {
    // SAFETY: only installed after runtime AVX2 detection (`available`).
    unsafe { bytes_eq_avx2_impl(a, b) }
}

/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn bytes_eq_avx2_impl(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    let mut i = 0;
    while i + 32 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
        let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
        let diff = _mm256_xor_si256(va, vb);
        if _mm256_testz_si256(diff, diff) == 0 {
            return false;
        }
        i += 32;
    }
    a[i..] == b[i..]
}

fn fused_scan_avx2(data: &[u8], out: &mut [u64]) -> FusedScan {
    // SAFETY: only installed after runtime AVX2 detection (`available`).
    unsafe { fused_scan_avx2_impl(data, out) }
}

/// One block-lane hash step on four packed 64-bit lanes:
/// `rotl23(lo64((acc ^ w) · m))` with the multiply emulated as three
/// 32×32→64 `vpmuludq` products.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lane_step_avx2(acc: __m256i, w: __m256i, m: __m256i, m_hi: __m256i) -> __m256i {
    let x = _mm256_xor_si256(acc, w);
    let lo = _mm256_mul_epu32(x, m);
    let mid_a = _mm256_mul_epu32(x, m_hi);
    let mid_b = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), m);
    let mid = _mm256_slli_epi64(_mm256_add_epi64(mid_a, mid_b), 32);
    let prod = _mm256_add_epi64(lo, mid);
    _mm256_or_si256(_mm256_slli_epi64(prod, 23), _mm256_srli_epi64(prod, 64 - 23))
}

/// Finalize one block chain: extract the four lanes and funnel through
/// the shared scalar finalization.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn finish_block_avx2(acc: __m256i) -> u64 {
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256::<1>(acc);
    let a0 = _mm_cvtsi128_si64(lo) as u64;
    let a1 = _mm_extract_epi64::<1>(lo) as u64;
    let a2 = _mm_cvtsi128_si64(hi) as u64;
    let a3 = _mm_extract_epi64::<1>(hi) as u64;
    finish_lanes(a0, a1, a2, a3, BLOCK_SIZE as u64)
}

/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn fused_scan_avx2_impl(data: &[u8], out: &mut [u64]) -> FusedScan {
    debug_assert_eq!(data.len(), out.len() * BLOCK_SIZE);
    let m = _mm256_setr_epi64x(M0 as i64, M1 as i64, M2 as i64, M3 as i64);
    let m_hi = _mm256_srli_epi64(m, 32);
    let seeds = _mm256_setr_epi64x(S0 as i64, S1 as i64, S2 as i64, S3 as i64);
    let mut zacc = _mm256_setzero_si256();
    let mut tail_nonzero = false;
    let blocks = out.len();
    let mut bi = 0;
    while bi + 4 <= blocks {
        let pa = data.as_ptr().add(bi * BLOCK_SIZE);
        let pb = pa.add(BLOCK_SIZE);
        let pc = pa.add(2 * BLOCK_SIZE);
        let pd = pa.add(3 * BLOCK_SIZE);
        let mut a = seeds;
        let mut b = seeds;
        let mut c = seeds;
        let mut d = seeds;
        let mut off = 0;
        // Four interleaved block chains hide the ~13-cycle emulated
        // multiply latency; the OR into `zacc` rides the same loads.
        while off < BLOCK_SIZE {
            let wa = _mm256_loadu_si256(pa.add(off).cast());
            let wb = _mm256_loadu_si256(pb.add(off).cast());
            let wc = _mm256_loadu_si256(pc.add(off).cast());
            let wd = _mm256_loadu_si256(pd.add(off).cast());
            let zab = _mm256_or_si256(wa, wb);
            let zcd = _mm256_or_si256(wc, wd);
            zacc = _mm256_or_si256(zacc, _mm256_or_si256(zab, zcd));
            a = lane_step_avx2(a, wa, m, m_hi);
            b = lane_step_avx2(b, wb, m, m_hi);
            c = lane_step_avx2(c, wc, m, m_hi);
            d = lane_step_avx2(d, wd, m, m_hi);
            off += 32;
        }
        out[bi] = finish_block_avx2(a);
        out[bi + 1] = finish_block_avx2(b);
        out[bi + 2] = finish_block_avx2(c);
        out[bi + 3] = finish_block_avx2(d);
        bi += 4;
    }
    while bi < blocks {
        // Trailing blocks: portable path, same math.
        let block = &data[bi * BLOCK_SIZE..(bi + 1) * BLOCK_SIZE];
        out[bi] = hash64(block);
        tail_nonzero |= !scalar::is_zero(block);
        bi += 1;
    }
    let is_zero = !tail_nonzero && _mm256_testz_si256(zacc, zacc) != 0;
    FusedScan { is_zero, page_hash: page_hash_of_blocks(out) }
}

// ----------------------------------------------------------- AVX-512VL

fn xor_acc_avx512(acc: &mut [u8], data: &[u8]) {
    // SAFETY: only installed after runtime AVX-512F/DQ/BW/VL detection
    // (`available`).
    unsafe { xor_acc_avx512_impl(acc, data) }
}

/// # Safety
/// Caller must ensure the CPU supports AVX-512F and AVX-512BW.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn xor_acc_avx512_impl(acc: &mut [u8], data: &[u8]) {
    debug_assert_eq!(acc.len(), data.len());
    let n = acc.len().min(data.len());
    if n < 128 {
        return xor_acc_avx2_impl(acc, data);
    }
    let mut i = 0;
    // A zmm store that splits a cache line costs double, and the store
    // port is the bottleneck of this kernel (two load ports absorb
    // split loads; the lone store stream cannot). One byte-masked head
    // store aligns every following store to `acc`'s cache line. XOR
    // accumulate is not idempotent, so the head must be masked exactly
    // — the overlapping-copy trick would fold the overlap twice.
    let mis = acc.as_ptr() as usize & 63;
    if mis != 0 {
        let head = 64 - mis;
        let a = _mm512_loadu_si512(acc.as_ptr().cast());
        let d = _mm512_loadu_si512(data.as_ptr().cast());
        // `head < 64`, so the shift cannot overflow; `n >= 128` keeps
        // the full-width loads above in bounds.
        let mask: u64 = (1u64 << head) - 1;
        _mm512_mask_storeu_epi8(acc.as_mut_ptr().cast(), mask, _mm512_xor_si512(a, d));
        i = head;
    }
    // Full-width zmm: one 64-byte lane per load-pair/store, four lanes
    // per iteration to keep both load ports saturated.
    while i + 256 <= n {
        let a0 = _mm512_loadu_si512(acc.as_ptr().add(i).cast());
        let a1 = _mm512_loadu_si512(acc.as_ptr().add(i + 64).cast());
        let a2 = _mm512_loadu_si512(acc.as_ptr().add(i + 128).cast());
        let a3 = _mm512_loadu_si512(acc.as_ptr().add(i + 192).cast());
        let d0 = _mm512_loadu_si512(data.as_ptr().add(i).cast());
        let d1 = _mm512_loadu_si512(data.as_ptr().add(i + 64).cast());
        let d2 = _mm512_loadu_si512(data.as_ptr().add(i + 128).cast());
        let d3 = _mm512_loadu_si512(data.as_ptr().add(i + 192).cast());
        _mm512_storeu_si512(acc.as_mut_ptr().add(i).cast(), _mm512_xor_si512(a0, d0));
        _mm512_storeu_si512(acc.as_mut_ptr().add(i + 64).cast(), _mm512_xor_si512(a1, d1));
        _mm512_storeu_si512(acc.as_mut_ptr().add(i + 128).cast(), _mm512_xor_si512(a2, d2));
        _mm512_storeu_si512(acc.as_mut_ptr().add(i + 192).cast(), _mm512_xor_si512(a3, d3));
        i += 256;
    }
    while i + 64 <= n {
        let a0 = _mm512_loadu_si512(acc.as_ptr().add(i).cast());
        let d0 = _mm512_loadu_si512(data.as_ptr().add(i).cast());
        _mm512_storeu_si512(acc.as_mut_ptr().add(i).cast(), _mm512_xor_si512(a0, d0));
        i += 64;
    }
    xor_acc_avx2_impl(&mut acc[i..n], &data[i..n]);
}

fn fused_scan_avx512(data: &[u8], out: &mut [u64]) -> FusedScan {
    // SAFETY: only installed after runtime AVX-512F/DQ/BW/VL detection
    // (`available`).
    unsafe { fused_scan_avx512_impl(data, out) }
}

/// One block-lane hash step on four packed 64-bit lanes, natively:
/// `vprolq(vpmullq(acc ^ w, m), 23)`. Three instructions against the
/// eleven of the AVX2 emulation.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F/DQ/VL.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn lane_step_avx512(acc: __m256i, w: __m256i, m: __m256i) -> __m256i {
    _mm256_rol_epi64::<23>(_mm256_mullo_epi64(_mm256_xor_si256(acc, w), m))
}

/// # Safety
/// Caller must ensure the CPU supports AVX-512F/DQ/VL.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fused_scan_avx512_impl(data: &[u8], out: &mut [u64]) -> FusedScan {
    debug_assert_eq!(data.len(), out.len() * BLOCK_SIZE);
    let m = _mm256_setr_epi64x(M0 as i64, M1 as i64, M2 as i64, M3 as i64);
    let seeds = _mm256_setr_epi64x(S0 as i64, S1 as i64, S2 as i64, S3 as i64);
    let mut zacc = _mm256_setzero_si256();
    let mut tail_nonzero = false;
    let blocks = out.len();
    let mut bi = 0;
    while bi + 8 <= blocks {
        let base = data.as_ptr().add(bi * BLOCK_SIZE);
        // Eight interleaved block chains: `vpmullq` is a multi-uop
        // instruction with double-digit latency, so we keep eight
        // independent multiplies in flight (AVX-512VL gives the
        // compiler ymm16..31 to hold them all).
        let mut accs = [seeds; 8];
        let mut off = 0;
        while off < BLOCK_SIZE {
            let mut j = 0;
            while j < 8 {
                let w = _mm256_loadu_si256(base.add(j * BLOCK_SIZE + off).cast());
                zacc = _mm256_or_si256(zacc, w);
                accs[j] = lane_step_avx512(accs[j], w, m);
                j += 1;
            }
            off += 32;
        }
        for (j, acc) in accs.iter().enumerate() {
            out[bi + j] = finish_block_avx2(*acc);
        }
        bi += 8;
    }
    while bi < blocks {
        // Trailing blocks: portable path, same math.
        let block = &data[bi * BLOCK_SIZE..(bi + 1) * BLOCK_SIZE];
        out[bi] = hash64(block);
        tail_nonzero |= !scalar::is_zero(block);
        bi += 1;
    }
    let is_zero = !tail_nonzero && _mm256_testz_si256(zacc, zacc) != 0;
    FusedScan { is_zero, page_hash: page_hash_of_blocks(out) }
}

// ------------------------------------------------------------- PCLMULQDQ

// Folding constants for the reflected IEEE CRC-32 polynomial
// (the classic Gopal et al. white-paper values, as used by zlib and
// crc32fast): K1/K2 fold 512 bits by 128, K3/K4 fold 128 by 128,
// K5 folds 96→64, MU/POLY are the Barrett reduction pair.
const K1: i64 = 0x01_5444_2bd4;
const K2: i64 = 0x01_c6e4_1596;
const K3: i64 = 0x01_7519_97d0;
const K4: i64 = 0x00_ccaa_009e;
const K5: i64 = 0x01_63cd_6124;
const MU: i64 = 0x01_f701_1641;
const POLY: i64 = 0x01_db71_0641;

fn crc32_advance_pclmul(state: u32, data: &[u8]) -> u32 {
    if data.len() < 64 {
        return crate::crc::update_slice8(state, data);
    }
    // SAFETY: only installed after runtime detection of pclmulqdq +
    // sse4.1 (see `available`), and `data.len() >= 64` holds here.
    unsafe { crc32_pclmul_impl(state, data) }
}

/// Fold `x` down by 128 bits against the next 128-bit word `next`.
///
/// # Safety
/// Caller must ensure the CPU supports PCLMULQDQ and SSE4.1.
#[inline]
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn fold16(x: __m128i, next: __m128i, k: __m128i) -> __m128i {
    let lo = _mm_clmulepi64_si128::<0x00>(x, k);
    let hi = _mm_clmulepi64_si128::<0x11>(x, k);
    _mm_xor_si128(_mm_xor_si128(lo, hi), next)
}

/// # Safety
/// Caller must ensure the CPU supports PCLMULQDQ and SSE4.1, and that
/// `data.len() >= 64`.
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn crc32_pclmul_impl(state: u32, data: &[u8]) -> u32 {
    let len = data.len();
    let p = data.as_ptr();
    // Prime four 128-bit accumulators with the first 64 bytes and fold
    // the incoming CRC state into the first word.
    let mut x3 = _mm_loadu_si128(p.cast());
    x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));
    let mut x2 = _mm_loadu_si128(p.add(16).cast());
    let mut x1 = _mm_loadu_si128(p.add(32).cast());
    let mut x0 = _mm_loadu_si128(p.add(48).cast());
    let mut off = 64;

    // Fold 64 bytes at a time: four independent carry-less multiply
    // chains, one per accumulator.
    let k1k2 = _mm_set_epi64x(K2, K1);
    while off + 64 <= len {
        x3 = fold16(x3, _mm_loadu_si128(p.add(off).cast()), k1k2);
        x2 = fold16(x2, _mm_loadu_si128(p.add(off + 16).cast()), k1k2);
        x1 = fold16(x1, _mm_loadu_si128(p.add(off + 32).cast()), k1k2);
        x0 = fold16(x0, _mm_loadu_si128(p.add(off + 48).cast()), k1k2);
        off += 64;
    }

    // Reduce the four accumulators to one, then fold any remaining
    // whole 16-byte words.
    let k3k4 = _mm_set_epi64x(K4, K3);
    let mut x = fold16(x3, x2, k3k4);
    x = fold16(x, x1, k3k4);
    x = fold16(x, x0, k3k4);
    while off + 16 <= len {
        x = fold16(x, _mm_loadu_si128(p.add(off).cast()), k3k4);
        off += 16;
    }

    // Fold 128 → 64 bits, then 96 → 64, then Barrett-reduce to 32.
    let mask32 = _mm_set_epi32(0, 0, 0, !0);
    let x = _mm_xor_si128(_mm_clmulepi64_si128::<0x10>(x, k3k4), _mm_srli_si128::<8>(x));
    let x = _mm_xor_si128(
        _mm_clmulepi64_si128::<0x00>(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5)),
        _mm_srli_si128::<4>(x),
    );
    let mu_poly = _mm_set_epi64x(MU, POLY);
    let t1 = _mm_clmulepi64_si128::<0x10>(_mm_and_si128(x, mask32), mu_poly);
    let t2 = _mm_xor_si128(_mm_clmulepi64_si128::<0x00>(_mm_and_si128(t1, mask32), mu_poly), x);
    let folded = _mm_extract_epi32::<1>(t2) as u32;

    // Trailing sub-16-byte bytes go through the scalar kernel.
    crate::crc::update_bytewise(folded, &data[off..])
}
