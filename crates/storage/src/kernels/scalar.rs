//! Scalar kernel backends: the always-available reference tier plus
//! the portable single-pass fused scan.
//!
//! `fused_scan_threepass` is the executable specification — it *is*
//! the pre-kernel capture sequence (zero scan, then block hashes, then
//! the derived page hash), composed from the original scalar
//! implementations. Every other backend is property-tested
//! bit-identical to it.

use super::FusedScan;
use crate::hash::{
    finish_lanes, hash64, lane, page_hash_of_blocks, BLOCK_SIZE, M0, M1, M2, M3, S0, S1, S2, S3,
};

/// Word-at-a-time zero scan with a 64-byte early-exit stride.
///
/// Scalar in the "no SIMD intrinsics" sense: `chunks_exact(8)` +
/// `from_le_bytes` compiles to plain 8-byte loads, preserving the
/// behavior (and speed) of the old `is_zero_page` word scan without
/// its `align_to` unsafe block.
pub(crate) fn is_zero(data: &[u8]) -> bool {
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        let mut acc = 0u64;
        for word in chunk.chunks_exact(8) {
            acc |= u64::from_le_bytes(word.try_into().unwrap());
        }
        if acc != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == 0)
}

/// Reference fused scan: literally the three separate passes — block
/// digests, zero scan, then the page hash derived from the digests.
pub(crate) fn fused_scan_threepass(data: &[u8], out: &mut [u64]) -> FusedScan {
    for (slot, block) in out.iter_mut().zip(data.chunks_exact(BLOCK_SIZE)) {
        *slot = hash64(block);
    }
    FusedScan { is_zero: is_zero(data), page_hash: page_hash_of_blocks(out) }
}

/// Portable single-pass fused scan: one sweep maintains the four block
/// hash lanes and an OR-accumulated zero probe together, so each byte
/// is loaded once; the page hash is derived from the block digests.
///
/// Each block chain finalizes through [`finish_lanes`] exactly as
/// `hash64` would — bit-identical output.
pub(crate) fn fused_scan_onepass(data: &[u8], out: &mut [u64]) -> FusedScan {
    debug_assert_eq!(data.len(), out.len() * BLOCK_SIZE);
    let mut zacc = 0u64;
    for (slot, block) in out.iter_mut().zip(data.chunks_exact(BLOCK_SIZE)) {
        let mut b0 = S0;
        let mut b1 = S1;
        let mut b2 = S2;
        let mut b3 = S3;
        for quad in block.chunks_exact(32) {
            let w0 = u64::from_le_bytes(quad[0..8].try_into().unwrap());
            let w1 = u64::from_le_bytes(quad[8..16].try_into().unwrap());
            let w2 = u64::from_le_bytes(quad[16..24].try_into().unwrap());
            let w3 = u64::from_le_bytes(quad[24..32].try_into().unwrap());
            zacc |= w0 | w1 | w2 | w3;
            b0 = lane(b0, w0, M0);
            b1 = lane(b1, w1, M1);
            b2 = lane(b2, w2, M2);
            b3 = lane(b3, w3, M3);
        }
        *slot = finish_lanes(b0, b1, b2, b3, BLOCK_SIZE as u64);
    }
    FusedScan { is_zero: zacc == 0, page_hash: page_hash_of_blocks(out) }
}

/// Byte-wise XOR accumulate (`acc[i] ^= data[i]`).
pub(crate) fn xor_acc(acc: &mut [u8], data: &[u8]) {
    for (a, b) in acc.iter_mut().zip(data.iter()) {
        *a ^= b;
    }
}

/// Slice equality via the standard library (memcmp under the hood).
pub(crate) fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    a == b
}
