//! Runtime-dispatched byte-touching kernels for the capture hot path.
//!
//! Every captured page used to be swept several times — zero scan, page
//! hash, 16 block hashes, CRC inside chunk encode, XOR for parity — and
//! every sweep was scalar. This module makes each sweep run at hardware
//! speed and, where it matters most, fuses them so each byte is touched
//! once:
//!
//! * [`fused_scan`] — the headline kernel: zero-page detection, all
//!   per-256 B-block hashes, and the page hash (derived merkle-style
//!   from the block digests, see
//!   [`crate::hash::page_hash_of_blocks`]) in **one** pass over the
//!   page, bit-identical to computing the triple separately.
//! * [`is_zero`] / [`bytes_eq`] / [`xor_acc`] — vectorized zero scan,
//!   silent-store block compare, and parity XOR accumulate.
//! * [`crc32_advance`] — dispatched CRC-32 state advance (PCLMULQDQ
//!   folding on x86_64 when available, slice-by-8 otherwise).
//!
//! # Dispatch
//!
//! CPU features are detected once and resolved into a function-pointer
//! table ([`Kernels`]) stored in a [`OnceLock`]. The tiers are:
//!
//! | table      | arch          | requires                          |
//! |------------|---------------|-----------------------------------|
//! | `scalar`   | any           | nothing — the reference backend   |
//! | `portable` | any           | nothing (single-pass fused scan)  |
//! | `sse2`     | x86_64        | baseline (always present)         |
//! | `avx2`     | x86_64        | runtime `avx2`                    |
//! | `avx512vl` | x86_64        | runtime `avx512f`+`dq`+`bw`+`vl`  |
//! | `+pclmul`  | x86_64        | runtime `pclmulqdq` + `sse4.1`    |
//! | `neon`     | aarch64       | baseline (always present)         |
//!
//! Every accelerated kernel computes the *identical function* to the
//! scalar reference — same hashes, same CRC, same bytes — pinned by the
//! property suite in `tests/kernel_props.rs` (misaligned slices, odd
//! lengths, all-backends-agree). `ICKPT_KERNELS=scalar` forces the
//! reference backend; `auto` (or unset) picks the best detected tier; a
//! malformed value exits with status 2, matching the `ICKPT_BENCH_*`
//! knob convention.

use std::sync::OnceLock;

use crate::hash::BLOCK_SIZE;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Environment knob selecting the kernel backend.
pub const KERNELS_ENV: &str = "ICKPT_KERNELS";

/// Result of the fused single-pass page scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedScan {
    /// True iff every scanned byte was zero.
    pub is_zero: bool,
    /// Page identity digest, derived from the block digests
    /// ([`crate::hash::page_hash_of_blocks`]).
    pub page_hash: u64,
}

/// One resolved backend: a table of kernel function pointers.
///
/// All entries compute bit-identical results across backends; only the
/// instructions differ. The table is `Copy` so composite tiers (e.g.
/// AVX2 hashing + PCLMULQDQ CRC) are built by overriding fields.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Backend name, e.g. `"scalar"`, `"avx2+pclmul"`.
    pub name: &'static str,
    /// True iff the slice is all zero bytes.
    pub is_zero: fn(&[u8]) -> bool,
    /// Fused zero + page hash + block hashes; `data.len()` must equal
    /// `out.len() * BLOCK_SIZE` (checked by the [`fused_scan`] facade).
    pub fused_scan: fn(&[u8], &mut [u64]) -> FusedScan,
    /// `acc[i] ^= data[i]` over two equal-length slices.
    pub xor_acc: fn(&mut [u8], &[u8]),
    /// Advance a raw (pre-finalize) CRC-32 state over `data`.
    pub crc32_advance: fn(u32, &[u8]) -> u32,
    /// Slice equality (length + bytes).
    pub bytes_eq: fn(&[u8], &[u8]) -> bool,
}

/// The always-available reference backend: the existing scalar
/// implementations, composed. `fused_scan` here really is the
/// three-pass sequence — it *is* the executable specification the
/// accelerated tiers are tested against.
pub static SCALAR: Kernels = Kernels {
    name: "scalar",
    is_zero: scalar::is_zero,
    fused_scan: scalar::fused_scan_threepass,
    xor_acc: scalar::xor_acc,
    crc32_advance: crate::crc::update_slice8,
    bytes_eq: scalar::bytes_eq,
};

/// Portable tier: scalar instructions, but the fused scan walks the
/// page once (interleaved page/block hash chains + zero accumulate).
/// The fallback on architectures with no SIMD backend.
pub static PORTABLE: Kernels = Kernels {
    name: "portable",
    is_zero: scalar::is_zero,
    fused_scan: scalar::fused_scan_onepass,
    xor_acc: scalar::xor_acc,
    crc32_advance: crate::crc::update_slice8,
    bytes_eq: scalar::bytes_eq,
};

/// Backend selection parsed from [`KERNELS_ENV`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Force the scalar reference backend.
    Scalar,
    /// Best tier the CPU supports (the default).
    Auto,
}

/// Parse an `ICKPT_KERNELS` value. Pure so strictness is unit-testable
/// without spawning a process.
pub fn parse_backend(raw: &str) -> Result<BackendChoice, String> {
    match raw.trim() {
        "scalar" => Ok(BackendChoice::Scalar),
        "auto" => Ok(BackendChoice::Auto),
        _ => Err(format!("{KERNELS_ENV}={raw:?} is invalid: expected \"scalar\" or \"auto\"")),
    }
}

// The one sanctioned stderr write in this crate: a malformed env knob
// must abort loudly before any experiment runs half-configured, exactly
// like the ICKPT_BENCH_* knobs (exit status 2 with a message).
#[allow(clippy::disallowed_macros)]
fn backend_from_env() -> BackendChoice {
    match std::env::var(KERNELS_ENV) {
        Err(_) => BackendChoice::Auto,
        Ok(raw) => parse_backend(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    }
}

/// Best table the host supports, ignoring the env knob.
fn best() -> Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        x86::best()
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::table()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        PORTABLE
    }
}

/// Every table that can run on this host, scalar reference first.
/// Property tests iterate this to assert all-backends-agree.
pub fn available() -> Vec<Kernels> {
    let mut tables = vec![SCALAR, PORTABLE];
    #[cfg(target_arch = "x86_64")]
    tables.extend(x86::available());
    #[cfg(target_arch = "aarch64")]
    tables.push(neon::table());
    tables
}

static ACTIVE: OnceLock<Kernels> = OnceLock::new();

/// The resolved dispatch table: detected once, then a plain indirect
/// call per kernel invocation.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| match backend_from_env() {
        BackendChoice::Scalar => SCALAR,
        BackendChoice::Auto => best(),
    })
}

/// Name of the active backend (for reports and logs).
pub fn backend_name() -> &'static str {
    active().name
}

/// True iff `data` is entirely zero bytes.
#[inline]
pub fn is_zero(data: &[u8]) -> bool {
    (active().is_zero)(data)
}

/// Fused single-pass page scan: zero detection, one block hash per
/// [`BLOCK_SIZE`] bytes, and the derived page hash, touching each data
/// byte once.
///
/// Bit-identical to the separate calls it replaces:
/// `out[i] == hash64(&data[i*256..][..256])`,
/// `page_hash == page_hash_of_blocks(out)`,
/// `is_zero == data.iter().all(|b| *b == 0)`.
///
/// Panics unless `data.len() == block_hashes.len() * BLOCK_SIZE`.
#[inline]
pub fn fused_scan(data: &[u8], block_hashes: &mut [u64]) -> FusedScan {
    assert_eq!(
        data.len(),
        block_hashes.len() * BLOCK_SIZE,
        "fused_scan needs one hash slot per {BLOCK_SIZE}-byte block"
    );
    (active().fused_scan)(data, block_hashes)
}

/// XOR-accumulate `data` into `acc` (`acc[i] ^= data[i]`).
///
/// Panics unless the slices have equal length — callers slice to the
/// overlap they mean to fold.
#[inline]
pub fn xor_acc(acc: &mut [u8], data: &[u8]) {
    assert_eq!(acc.len(), data.len(), "xor_acc needs equal-length slices");
    (active().xor_acc)(acc, data)
}

/// Advance a raw CRC-32 state (pre-inversion form, as stored in
/// [`crate::crc::Crc32`]) over `data`.
#[inline]
pub fn crc32_advance(state: u32, data: &[u8]) -> u32 {
    (active().crc32_advance)(state, data)
}

/// Vectorized slice equality — the silent-store block compare.
#[inline]
pub fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    (active().bytes_eq)(a, b)
}

/// Vectorized equality of two hash arrays (the per-page silent-store
/// check compares 16 block digests at once).
#[inline]
pub fn hashes_eq(a: &[u64], b: &[u64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // SAFETY: any initialized `u64` slice is a valid `u8` slice of 8×
    // the length at the same address; alignment only loosens (8 → 1)
    // and the lifetime is inherited from the borrow.
    let ab = unsafe { std::slice::from_raw_parts(a.as_ptr().cast::<u8>(), a.len() * 8) };
    // SAFETY: as above.
    let bb = unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u8>(), b.len() * 8) };
    (active().bytes_eq)(ab, bb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_backend_is_strict() {
        assert_eq!(parse_backend("scalar"), Ok(BackendChoice::Scalar));
        assert_eq!(parse_backend("auto"), Ok(BackendChoice::Auto));
        assert_eq!(parse_backend(" auto "), Ok(BackendChoice::Auto));
        for bad in ["", "Scalar", "AUTO", "avx2", "scalar,auto", "1", "simd"] {
            let err = parse_backend(bad).unwrap_err();
            assert!(err.contains(KERNELS_ENV), "error names the knob: {err}");
            assert!(err.contains("expected"), "error says what was expected: {err}");
        }
    }

    #[test]
    fn scalar_table_is_always_available() {
        let tables = available();
        assert_eq!(tables[0].name, "scalar");
        assert!(tables.len() >= 2, "portable tier always rides along");
    }

    #[test]
    fn active_backend_has_a_name() {
        assert!(!backend_name().is_empty());
    }
}
