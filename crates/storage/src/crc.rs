//! CRC-32 (IEEE 802.3 polynomial), slice-by-8 with compile-time tables.
//!
//! Checkpoint data is the last line of defense after a failure; a
//! corrupt chunk must be detected rather than silently restored. CRC-32
//! is what the paper-era checkpointing systems (libckpt, ickp) used and
//! is plenty for this purpose.
//!
//! The hot path is the capture pipeline: every checkpoint chunk is
//! checksummed as it is encoded, so CRC throughput is directly on the
//! paper's "available bandwidth" side of the feasibility ratio. The
//! implementation here processes eight bytes per step through eight
//! 256-entry tables (Sarwate's slice-by-8), which retires one table
//! lookup per input byte but only one load/XOR dependency chain per
//! *word* — typically 4–8× the classic one-byte-at-a-time loop, still
//! with zero dependencies. [`crc32_bytewise`] keeps the old scalar loop
//! as a reference for equivalence tests and benchmark baselines; both
//! produce identical checksums, so the chunk format is unchanged and
//! old readers stay compatible.

/// Eight IEEE CRC-32 lookup tables, built at compile time.
///
/// `TABLES[0]` is the classic Sarwate table; `TABLES[k][b]` extends a
/// CRC by byte `b` followed by `k` zero bytes, which is what lets eight
/// input bytes fold in parallel.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[n - 1][i];
            t[n][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        n += 1;
    }
    t
}

/// Advance `state` over `data` one byte at a time (reference kernel).
#[inline]
pub(crate) fn update_bytewise(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLES[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Advance `state` over `data`, eight bytes per step.
pub(crate) fn update_slice8(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // Fold the current CRC into the first word's low half, then
        // look all eight bytes up in their distance-specific tables.
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        state = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    update_bytewise(state, chunks.remainder())
}

/// Streaming CRC-32 state.
///
/// The capture pipeline checksums while it copies: feed page runs with
/// [`Crc32::update`] as they are appended to the encode buffer, then
/// seal the chunk with [`Crc32::finalize`]. Arbitrary split points
/// produce the same checksum as a one-shot pass.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes (through the dispatched kernel: PCLMULQDQ folding
    /// where the CPU has it, slice-by-8 otherwise — identical sums).
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        self.state = crate::kernels::crc32_advance(self.state, data);
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice (dispatched, like [`Crc32`]).
pub fn crc32(data: &[u8]) -> u32 {
    crate::kernels::crc32_advance(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// One-shot CRC-32 via slice-by-8, bypassing kernel dispatch.
///
/// The scalar backend's CRC kernel and the benchmark baseline the
/// dispatched path is measured against.
pub fn crc32_slice8(data: &[u8]) -> u32 {
    update_slice8(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// One-shot CRC-32 via the scalar one-byte-at-a-time loop.
///
/// Reference implementation: keeps the pre-optimization kernel alive so
/// tests can prove the slice-by-8 path computes the identical function
/// and benchmarks can report the speedup against it.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    update_bytewise(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // And through the reference kernel.
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytewise(b""), 0);
        assert_eq!(crc32_bytewise(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn slice8_equals_bytewise_on_random_buffers() {
        // Deterministic SplitMix64-filled buffers of every alignment
        // and length class the 8-byte kernel cares about.
        let mut x = 0x1DC4_2004u64;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 255, 4096, 4097] {
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert_eq!(crc32(&buf), crc32_bytewise(&buf), "len {len}");
            // Also at a misaligned start.
            if len > 3 {
                assert_eq!(crc32(&buf[3..]), crc32_bytewise(&buf[3..]), "len {len} offset 3");
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        // Split at awkward points, including mid-word.
        for split in [0usize, 1, 3, 7, 8, 100, 4097, 9999, 10_000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(&data), "split {split}");
        }
        // Many small updates.
        let mut c = Crc32::new();
        for chunk in data.chunks(13) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn dispatched_equals_slice8() {
        // Whatever backend dispatch resolved to, the public entry
        // points must compute the same function as the scalar kernel.
        let data: Vec<u8> =
            (0..40_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in [0usize, 1, 63, 64, 65, 4096, 40_000] {
            assert_eq!(crc32(&data[..len]), crc32_slice8(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[17] = 0xAA;
        let good = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(crc32(&data), good);
    }
}
