//! CRC-32 (IEEE 802.3 polynomial), slice-by-one with a lazily built
//! table.
//!
//! Checkpoint data is the last line of defense after a failure; a
//! corrupt chunk must be detected rather than silently restored. CRC-32
//! is what the paper-era checkpointing systems (libckpt, ickp) used and
//! is plenty for this purpose.

/// IEEE CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc32::new();
        c.update(&data[..100]);
        c.update(&data[100..]);
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[17] = 0xAA;
        let good = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(crc32(&data), good);
    }
}
