//! Stable-storage backends.
//!
//! A [`StableStorage`] persists encoded checkpoint chunks and manifests
//! keyed by `(rank, generation)`. Two backends are provided:
//! [`MemStore`] (checkpointing to remote memory, as in Plank's Diskless
//! checkpointing which the paper surveys) and [`FileStore`] (a
//! directory of chunk files, the classic disk path).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Key of a stored chunk: owning rank and checkpoint generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkKey {
    /// Owning rank.
    pub rank: u32,
    /// Checkpoint generation.
    pub generation: u64,
}

impl ChunkKey {
    /// Construct a key.
    pub fn new(rank: u32, generation: u64) -> Self {
        Self { rank, generation }
    }
}

impl fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{:04}_g{:08}", self.rank, self.generation)
    }
}

/// Storage errors.
#[derive(Debug)]
pub enum StorageError {
    /// Requested key does not exist.
    NotFound(ChunkKey),
    /// Requested manifest generation does not exist.
    ManifestNotFound(u64),
    /// Data failed validation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(k) => write!(f, "chunk {k} not found"),
            StorageError::ManifestNotFound(g) => write!(f, "manifest for generation {g} not found"),
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Stable storage for checkpoint chunks and manifests.
///
/// Implementations must be safe to share across rank threads.
pub trait StableStorage: Send + Sync {
    /// Persist an encoded chunk (overwrites an existing key).
    fn put_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError>;

    /// Fetch an encoded chunk.
    fn get_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError>;

    /// Delete a chunk (no-op if missing).
    fn delete_chunk(&self, key: ChunkKey) -> Result<(), StorageError>;

    /// All generations stored for `rank`, ascending.
    fn list_generations(&self, rank: u32) -> Result<Vec<u64>, StorageError>;

    /// Persist an encoded manifest for a generation.
    fn put_manifest(&self, generation: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Fetch an encoded manifest.
    fn get_manifest(&self, generation: u64) -> Result<Vec<u8>, StorageError>;

    /// All committed manifest generations, ascending.
    fn list_manifests(&self) -> Result<Vec<u64>, StorageError>;

    /// Delete a manifest (no-op if missing).
    fn delete_manifest(&self, generation: u64) -> Result<(), StorageError>;
}

/// In-memory stable storage (models checkpointing to a remote memory
/// server / diskless checkpointing).
#[derive(Default)]
pub struct MemStore {
    chunks: RwLock<BTreeMap<ChunkKey, Vec<u8>>>,
    manifests: RwLock<BTreeMap<u64, Vec<u8>>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes held (for capacity accounting in diskless setups).
    pub fn total_bytes(&self) -> u64 {
        self.chunks.read().values().map(|v| v.len() as u64).sum::<u64>()
            + self.manifests.read().values().map(|v| v.len() as u64).sum::<u64>()
    }
}

impl StableStorage for MemStore {
    fn put_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        self.chunks.write().insert(key, data.to_vec());
        Ok(())
    }

    fn get_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        self.chunks.read().get(&key).cloned().ok_or(StorageError::NotFound(key))
    }

    fn delete_chunk(&self, key: ChunkKey) -> Result<(), StorageError> {
        self.chunks.write().remove(&key);
        Ok(())
    }

    fn list_generations(&self, rank: u32) -> Result<Vec<u64>, StorageError> {
        Ok(self.chunks.read().keys().filter(|k| k.rank == rank).map(|k| k.generation).collect())
    }

    fn put_manifest(&self, generation: u64, data: &[u8]) -> Result<(), StorageError> {
        self.manifests.write().insert(generation, data.to_vec());
        Ok(())
    }

    fn get_manifest(&self, generation: u64) -> Result<Vec<u8>, StorageError> {
        self.manifests
            .read()
            .get(&generation)
            .cloned()
            .ok_or(StorageError::ManifestNotFound(generation))
    }

    fn list_manifests(&self) -> Result<Vec<u64>, StorageError> {
        Ok(self.manifests.read().keys().copied().collect())
    }

    fn delete_manifest(&self, generation: u64) -> Result<(), StorageError> {
        self.manifests.write().remove(&generation);
        Ok(())
    }
}

/// Filesystem-backed stable storage: one file per chunk/manifest in a
/// directory.
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Open (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self { dir: dir.as_ref().to_path_buf() })
    }

    fn chunk_path(&self, key: ChunkKey) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }

    fn manifest_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("manifest_g{generation:08}.mf"))
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> Result<(), StorageError> {
        // Write-then-rename so a crash mid-write never leaves a torn
        // chunk under the final name — stable storage must be stable.
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

impl StableStorage for FileStore {
    fn put_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        self.write_atomic(&self.chunk_path(key), data)
    }

    fn get_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        let path = self.chunk_path(key);
        let mut f = fs::File::open(&path).map_err(|_| StorageError::NotFound(key))?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Ok(data)
    }

    fn delete_chunk(&self, key: ChunkKey) -> Result<(), StorageError> {
        let _ = fs::remove_file(self.chunk_path(key));
        Ok(())
    }

    fn list_generations(&self, rank: u32) -> Result<Vec<u64>, StorageError> {
        let prefix = format!("r{rank:04}_g");
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(gen_str) = rest.strip_suffix(".ckpt") {
                    if let Ok(g) = gen_str.parse::<u64>() {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    fn put_manifest(&self, generation: u64, data: &[u8]) -> Result<(), StorageError> {
        self.write_atomic(&self.manifest_path(generation), data)
    }

    fn get_manifest(&self, generation: u64) -> Result<Vec<u8>, StorageError> {
        let path = self.manifest_path(generation);
        let mut f =
            fs::File::open(&path).map_err(|_| StorageError::ManifestNotFound(generation))?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Ok(data)
    }

    fn list_manifests(&self) -> Result<Vec<u64>, StorageError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix("manifest_g") {
                if let Some(gen_str) = rest.strip_suffix(".mf") {
                    if let Ok(g) = gen_str.parse::<u64>() {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    fn delete_manifest(&self, generation: u64) -> Result<(), StorageError> {
        let _ = fs::remove_file(self.manifest_path(generation));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn StableStorage) {
        let k = ChunkKey::new(2, 5);
        assert!(store.get_chunk(k).is_err());
        store.put_chunk(k, b"hello").unwrap();
        assert_eq!(store.get_chunk(k).unwrap(), b"hello");
        // Overwrite is allowed (re-checkpoint after retry).
        store.put_chunk(k, b"world").unwrap();
        assert_eq!(store.get_chunk(k).unwrap(), b"world");

        store.put_chunk(ChunkKey::new(2, 7), b"x").unwrap();
        store.put_chunk(ChunkKey::new(3, 6), b"y").unwrap();
        assert_eq!(store.list_generations(2).unwrap(), vec![5, 7]);
        assert_eq!(store.list_generations(3).unwrap(), vec![6]);
        assert!(store.list_generations(9).unwrap().is_empty());

        store.delete_chunk(k).unwrap();
        assert!(store.get_chunk(k).is_err());
        store.delete_chunk(k).unwrap(); // idempotent

        assert!(store.get_manifest(1).is_err());
        store.put_manifest(1, b"m1").unwrap();
        store.put_manifest(3, b"m3").unwrap();
        assert_eq!(store.get_manifest(1).unwrap(), b"m1");
        assert_eq!(store.list_manifests().unwrap(), vec![1, 3]);
        store.delete_manifest(1).unwrap();
        assert_eq!(store.list_manifests().unwrap(), vec![3]);
    }

    #[test]
    fn memstore_contract() {
        let s = MemStore::new();
        exercise(&s);
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn filestore_contract() {
        let dir = std::env::temp_dir().join(format!("ickpt_store_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileStore::open(&dir).unwrap();
        exercise(&s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filestore_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("ickpt_store_reopen_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FileStore::open(&dir).unwrap();
            s.put_chunk(ChunkKey::new(0, 1), b"persist me").unwrap();
            s.put_manifest(1, b"mf").unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.get_chunk(ChunkKey::new(0, 1)).unwrap(), b"persist me");
        assert_eq!(s.get_manifest(1).unwrap(), b"mf");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filestore_ignores_leftover_tmp_files_on_reopen() {
        // A crash between `File::create(tmp)` and `rename` leaves a
        // `*.tmp` behind. On reopen that garbage must be invisible: it
        // must not shadow the committed generation it was replacing,
        // must not surface as a phantom generation of its own, and a
        // retried put must still commit atomically over it.
        let dir = std::env::temp_dir().join(format!("ickpt_store_crash_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let committed = ChunkKey::new(0, 5);
        {
            let s = FileStore::open(&dir).unwrap();
            s.put_chunk(committed, b"committed bytes").unwrap();
            s.put_manifest(5, b"mf5").unwrap();
        }
        // Interrupted overwrite of the committed generation, an
        // interrupted write of a never-committed generation 6, and an
        // interrupted manifest — exactly the paths write_atomic uses.
        fs::write(dir.join(format!("{committed}.tmp")), b"torn garbage").unwrap();
        fs::write(dir.join(format!("{}.tmp", ChunkKey::new(0, 6))), b"torn").unwrap();
        fs::write(dir.join("manifest_g00000006.tmp"), b"torn").unwrap();

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.get_chunk(committed).unwrap(), b"committed bytes", "tmp must not shadow");
        assert_eq!(s.list_generations(0).unwrap(), vec![5], "no phantom generation 6");
        assert_eq!(s.list_manifests().unwrap(), vec![5]);
        assert!(s.get_chunk(ChunkKey::new(0, 6)).is_err());
        assert!(s.get_manifest(6).is_err());

        // A retried put replaces both the stale tmp and the old data.
        s.put_chunk(committed, b"retried").unwrap();
        assert_eq!(s.get_chunk(committed).unwrap(), b"retried");
        assert!(!dir.join(format!("{committed}.tmp")).exists(), "retry consumed the tmp");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memstore_is_shareable_across_threads() {
        let s = std::sync::Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for rank in 0..8u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for g in 0..20u64 {
                    s.put_chunk(ChunkKey::new(rank, g), &rank.to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for rank in 0..8u32 {
            assert_eq!(s.list_generations(rank).unwrap().len(), 20);
        }
    }
}
