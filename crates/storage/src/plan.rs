//! Latest-wins restore planning.
//!
//! Sequential rollback recovery replays an incremental chain
//! base-to-newest, writing every stored page of every generation —
//! O(chain × pages) work, which penalizes exactly the
//! frequent-checkpoint regime the paper argues is feasible (short
//! timeslices ⇒ long increment chains). A [`RestorePlan`] walks the
//! chain *once*, newest-to-oldest, and assigns each page of the final
//! image to the single newest record (or elided zero run) that contains
//! it. Executing the plan reads and decodes each live page exactly once
//! regardless of chain length; superseded pages (overwritten by a newer
//! generation) and excluded pages (unmapped in the final mapping state,
//! the paper's §4.2 memory exclusion at restore time) are never
//! touched.
//!
//! The plan is pure metadata — record indices and page spans — so it
//! composes with both consumers:
//!
//! * `ickpt-core::restore` executes it against zero-copy
//!   [`ChunkView`](crate::chunk::ChunkView)s, fanning spans out across
//!   worker threads;
//! * [`gc`](crate::gc) compaction executes it into a fresh base chunk
//!   in a single pass instead of a page-by-page merge loop.
//!
//! The invariant both rely on: executing a plan produces an image
//! byte-identical to the sequential chain replay (property-tested in
//! `tests/restore_props.rs`, which keeps the sequential path as the
//! executable reference).

use crate::chunk::{Chunk, ChunkView, CHUNK_PAGE_SIZE};

/// Where a delta-encoded page's *unchanged* blocks come from: the next
/// older chunk in the chain that stores the page whole.
///
/// Capture re-stores a page whole after delta-encoding it once (no
/// delta-on-delta), so a base is always a whole-page record or an
/// elided zero run — chasing is depth one by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaBase {
    /// The base page was an elided zero page: unchanged blocks are
    /// zero fill.
    Zero,
    /// The base page lives in a whole-page record of an older chunk.
    Record {
        /// Chain index of the chunk holding the base page.
        chunk: usize,
        /// Record index within that chunk.
        rec: usize,
        /// Page offset of the base page within that record.
        rec_page_offset: u64,
    },
}

/// Where a planned page span's content comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentSource {
    /// An elided all-zero run: restore as zero fill.
    Zero,
    /// A page record of the owning chunk.
    Record {
        /// Record index within the chunk.
        rec: usize,
        /// Page offset within that record where the span starts.
        rec_page_offset: u64,
    },
    /// A delta record of the owning chunk: restore by materializing the
    /// base page, then overlaying the delta's changed blocks. Always a
    /// single-page segment.
    Delta {
        /// Delta-record index within the chunk.
        rec: usize,
        /// Where the unchanged blocks come from.
        base: DeltaBase,
    },
}

/// A contiguous span of pages to restore from one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSegment {
    /// Index of the owning chunk within the chain (0 = base).
    pub chunk: usize,
    /// First page of the span.
    pub start_page: u64,
    /// Number of pages.
    pub pages: u64,
    /// Content source.
    pub source: SegmentSource,
}

/// Per-generation accounting of a plan, for chain-bloat inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkPlanStats {
    /// Generation number of the chunk.
    pub generation: u64,
    /// Stored content pages in the chunk.
    pub stored_pages: u64,
    /// Elided zero pages in the chunk.
    pub stored_zero_pages: u64,
    /// Content pages that survive into the final image.
    pub live_pages: u64,
    /// Zero-run pages that survive into the final image.
    pub live_zero_pages: u64,
    /// Pages overwritten by a newer generation (dead weight a planned
    /// restore skips and compaction would reclaim).
    pub superseded_pages: u64,
    /// Pages dropped because the final mapping no longer contains them.
    pub excluded_pages: u64,
    /// Delta-encoded pages stored in the chunk.
    pub stored_delta_pages: u64,
    /// Delta-encoded pages that survive into the final image.
    pub live_delta_pages: u64,
    /// Changed-block payload bytes stored in the chunk's delta records.
    pub stored_delta_bytes: u64,
    /// Changed-block payload bytes of the surviving delta records.
    pub live_delta_bytes: u64,
    /// Superseded whole pages of this chunk that a newer generation's
    /// delta still reads as its base — skipped as final content, but
    /// their payload is decoded anyway.
    pub delta_base_pages: u64,
}

impl ChunkPlanStats {
    /// Stored payload bytes a planned restore skips in this chunk.
    pub fn skipped_payload_bytes(&self) -> u64 {
        (self.stored_pages - self.live_pages - self.delta_base_pages) * CHUNK_PAGE_SIZE as u64
            + (self.stored_delta_bytes - self.live_delta_bytes)
    }
}

/// Chain metadata the planner consumes: implemented by both owned
/// [`Chunk`]s (gc compaction) and zero-copy
/// [`ChunkView`](crate::chunk::ChunkView)s (restore).
pub trait PlanSource {
    /// Generation number of the chunk.
    fn generation(&self) -> u64;
    /// Elided zero runs.
    fn zero_ranges(&self) -> &[(u64, u64)];
    /// Number of page records.
    fn record_count(&self) -> usize;
    /// Page span of record `i` as `(start_page, pages)`.
    fn record_span(&self, i: usize) -> (u64, u64);
    /// Number of delta records.
    fn delta_count(&self) -> usize;
    /// Target page of delta record `i`.
    fn delta_page(&self, i: usize) -> u64;
    /// Changed-block payload bytes of delta record `i`.
    fn delta_payload_len(&self, i: usize) -> usize;
}

impl<T: PlanSource + ?Sized> PlanSource for &T {
    fn generation(&self) -> u64 {
        (**self).generation()
    }
    fn zero_ranges(&self) -> &[(u64, u64)] {
        (**self).zero_ranges()
    }
    fn record_count(&self) -> usize {
        (**self).record_count()
    }
    fn record_span(&self, i: usize) -> (u64, u64) {
        (**self).record_span(i)
    }
    fn delta_count(&self) -> usize {
        (**self).delta_count()
    }
    fn delta_page(&self, i: usize) -> u64 {
        (**self).delta_page(i)
    }
    fn delta_payload_len(&self, i: usize) -> usize {
        (**self).delta_payload_len(i)
    }
}

impl PlanSource for Chunk {
    fn generation(&self) -> u64 {
        self.generation
    }
    fn zero_ranges(&self) -> &[(u64, u64)] {
        &self.zero_ranges
    }
    fn record_count(&self) -> usize {
        self.records.len()
    }
    fn record_span(&self, i: usize) -> (u64, u64) {
        (self.records[i].start_page, self.records[i].page_count())
    }
    fn delta_count(&self) -> usize {
        self.delta_records.len()
    }
    fn delta_page(&self, i: usize) -> u64 {
        self.delta_records[i].page
    }
    fn delta_payload_len(&self, i: usize) -> usize {
        self.delta_records[i].data.len()
    }
}

impl PlanSource for ChunkView<'_> {
    fn generation(&self) -> u64 {
        self.generation
    }
    fn zero_ranges(&self) -> &[(u64, u64)] {
        &self.zero_ranges
    }
    fn record_count(&self) -> usize {
        self.records.len()
    }
    fn record_span(&self, i: usize) -> (u64, u64) {
        self.records[i].span()
    }
    fn delta_count(&self) -> usize {
        self.delta_records.len()
    }
    fn delta_page(&self, i: usize) -> u64 {
        self.delta_records[i].page
    }
    fn delta_payload_len(&self, i: usize) -> usize {
        self.delta_records[i].payload_len()
    }
}

/// Word-granular page-claim bitmap used during planning.
struct ClaimSet {
    words: Vec<u64>,
}

impl ClaimSet {
    fn new(pages: u64) -> Self {
        Self { words: vec![0u64; (pages as usize).div_ceil(64)] }
    }

    /// Claim `page`; returns whether it was previously unclaimed.
    fn claim(&mut self, page: u64) -> bool {
        let (w, b) = ((page / 64) as usize, page % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }
}

/// A latest-wins restore plan over one rank's checkpoint chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestorePlan {
    /// Disjoint spans covering the final image, ascending by
    /// `start_page`.
    pub segments: Vec<PlanSegment>,
    /// Per-chunk statistics, aligned with the input chain (base first).
    pub per_chunk: Vec<ChunkPlanStats>,
    /// Content pages the plan applies.
    pub live_pages: u64,
    /// Zero-fill pages the plan applies.
    pub live_zero_pages: u64,
    /// Delta-encoded pages the plan applies (base + changed blocks).
    pub live_delta_pages: u64,
    /// Changed-block payload bytes of the applied delta records.
    pub live_delta_bytes: u64,
    /// Whole pages decoded only to serve as delta bases.
    pub delta_base_pages: u64,
    /// Stored pages skipped because a newer generation overwrote them.
    pub superseded_pages: u64,
    /// Stored pages skipped because the final mapping excludes them.
    pub excluded_pages: u64,
}

impl RestorePlan {
    /// Build a plan for `chain` (base full chunk first, increments in
    /// generation order — the order a sequential replay applies them).
    ///
    /// `keep` filters pages into the final image: pass the mapped-state
    /// predicate of the newest generation to apply memory exclusion at
    /// restore time, or `None` to keep every recorded page (what gc
    /// compaction without an exclusion filter wants).
    pub fn build<S: PlanSource>(chain: &[S], keep: Option<&dyn Fn(u64) -> bool>) -> RestorePlan {
        assert!(!chain.is_empty(), "cannot plan an empty chain");
        let mut max_end = 0u64;
        for chunk in chain {
            for i in 0..chunk.record_count() {
                let (start, pages) = chunk.record_span(i);
                max_end = max_end.max(start + pages);
            }
            for &(start, len) in chunk.zero_ranges() {
                max_end = max_end.max(start + len);
            }
            for i in 0..chunk.delta_count() {
                max_end = max_end.max(chunk.delta_page(i) + 1);
            }
        }
        let mut claimed = ClaimSet::new(max_end);
        let mut segments: Vec<PlanSegment> = Vec::new();
        let mut per_chunk = vec![ChunkPlanStats::default(); chain.len()];
        // Live delta pages whose base has not been found yet, keyed by
        // page: the next older whole-page record or zero run covering
        // the page is the base.
        let mut pending_delta: std::collections::BTreeMap<u64, (usize, usize)> =
            std::collections::BTreeMap::new();

        // Newest chunk first: the first claim on a page wins, which is
        // exactly "the newest generation containing the page wins".
        for (idx, chunk) in chain.iter().enumerate().rev() {
            let stats = &mut per_chunk[idx];
            stats.generation = chunk.generation();
            for i in 0..chunk.record_count() {
                let (start, pages) = chunk.record_span(i);
                stats.stored_pages += pages;
                let mut run: Option<PlanSegment> = None;
                for k in 0..pages {
                    let page = start + k;
                    let live = keep.is_none_or(|f| f(page)) && claimed.claim(page);
                    if live {
                        stats.live_pages += 1;
                        match &mut run {
                            Some(seg) if seg.start_page + seg.pages == page => seg.pages += 1,
                            _ => {
                                if let Some(seg) = run.take() {
                                    segments.push(seg);
                                }
                                run = Some(PlanSegment {
                                    chunk: idx,
                                    start_page: page,
                                    pages: 1,
                                    source: SegmentSource::Record { rec: i, rec_page_offset: k },
                                });
                            }
                        }
                    } else {
                        if keep.is_some_and(|f| !f(page)) {
                            stats.excluded_pages += 1;
                        } else {
                            stats.superseded_pages += 1;
                            if let Some((dc, dr)) = pending_delta.remove(&page) {
                                // This superseded page is the base of a
                                // newer generation's delta: resolve it.
                                stats.delta_base_pages += 1;
                                segments.push(PlanSegment {
                                    chunk: dc,
                                    start_page: page,
                                    pages: 1,
                                    source: SegmentSource::Delta {
                                        rec: dr,
                                        base: DeltaBase::Record {
                                            chunk: idx,
                                            rec: i,
                                            rec_page_offset: k,
                                        },
                                    },
                                });
                            }
                        }
                        if let Some(seg) = run.take() {
                            segments.push(seg);
                        }
                    }
                }
                if let Some(seg) = run.take() {
                    segments.push(seg);
                }
            }
            for &(start, len) in chunk.zero_ranges() {
                stats.stored_zero_pages += len;
                let mut run: Option<PlanSegment> = None;
                for page in start..start + len {
                    let live = keep.is_none_or(|f| f(page)) && claimed.claim(page);
                    if live {
                        stats.live_zero_pages += 1;
                        match &mut run {
                            Some(seg) if seg.start_page + seg.pages == page => seg.pages += 1,
                            _ => {
                                if let Some(seg) = run.take() {
                                    segments.push(seg);
                                }
                                run = Some(PlanSegment {
                                    chunk: idx,
                                    start_page: page,
                                    pages: 1,
                                    source: SegmentSource::Zero,
                                });
                            }
                        }
                    } else {
                        if keep.is_some_and(|f| !f(page)) {
                            stats.excluded_pages += 1;
                        } else {
                            stats.superseded_pages += 1;
                            if let Some((dc, dr)) = pending_delta.remove(&page) {
                                segments.push(PlanSegment {
                                    chunk: dc,
                                    start_page: page,
                                    pages: 1,
                                    source: SegmentSource::Delta { rec: dr, base: DeltaBase::Zero },
                                });
                            }
                        }
                        if let Some(seg) = run.take() {
                            segments.push(seg);
                        }
                    }
                }
                if let Some(seg) = run.take() {
                    segments.push(seg);
                }
            }
            // The chunk's own delta records claim their pages last: a
            // whole-page record or zero run in the *same* chunk always
            // beats a delta for the same page, and a delta's base must
            // be strictly older.
            for i in 0..chunk.delta_count() {
                let page = chunk.delta_page(i);
                let len = chunk.delta_payload_len(i) as u64;
                stats.stored_delta_pages += 1;
                stats.stored_delta_bytes += len;
                if keep.is_none_or(|f| f(page)) && claimed.claim(page) {
                    stats.live_delta_pages += 1;
                    stats.live_delta_bytes += len;
                    pending_delta.insert(page, (idx, i));
                }
            }
        }
        assert!(
            pending_delta.is_empty(),
            "delta record(s) without a base in the chain (pages {:?}): capture must re-store \
             a page whole before its baseline leaves the chain",
            pending_delta.keys().take(4).collect::<Vec<_>>()
        );
        // Spans are disjoint; a canonical ascending order makes plan
        // execution deterministic and lets compaction emit coalesced
        // records in one forward pass.
        segments.sort_unstable_by_key(|s| s.start_page);
        let (live_pages, live_zero_pages, superseded_pages, excluded_pages) =
            per_chunk.iter().fold((0, 0, 0, 0), |acc, s| {
                (
                    acc.0 + s.live_pages,
                    acc.1 + s.live_zero_pages,
                    acc.2 + s.superseded_pages,
                    acc.3 + s.excluded_pages,
                )
            });
        let (live_delta_pages, live_delta_bytes, delta_base_pages) =
            per_chunk.iter().fold((0, 0, 0), |acc, s| {
                (acc.0 + s.live_delta_pages, acc.1 + s.live_delta_bytes, acc.2 + s.delta_base_pages)
            });
        RestorePlan {
            segments,
            per_chunk,
            live_pages,
            live_zero_pages,
            live_delta_pages,
            live_delta_bytes,
            delta_base_pages,
            superseded_pages,
            excluded_pages,
        }
    }

    /// Total pages the plan applies (content + zero fill + delta).
    pub fn applied_pages(&self) -> u64 {
        self.live_pages + self.live_zero_pages + self.live_delta_pages
    }

    /// Payload bytes a planned restore actually decodes: whole live
    /// pages, plus changed blocks and whole-page bases of live deltas.
    pub fn planned_payload_bytes(&self) -> u64 {
        (self.live_pages + self.delta_base_pages) * CHUNK_PAGE_SIZE as u64 + self.live_delta_bytes
    }

    /// Stored payload bytes a planned restore skips (dead chain
    /// weight; what compaction reclaims).
    pub fn skipped_payload_bytes(&self) -> u64 {
        (self.superseded_pages + self.excluded_pages
            - self.per_chunk.iter().map(|s| s.dead_zero_pages()).sum::<u64>())
            * CHUNK_PAGE_SIZE as u64
    }
}

impl ChunkPlanStats {
    /// Dead pages of this chunk that were zero runs (cost 16 bytes
    /// stored, not a page of payload).
    fn dead_zero_pages(&self) -> u64 {
        self.stored_zero_pages - self.live_zero_pages
    }
}

/// Split a plan's segments into up to `shards` batches of roughly equal
/// page count, cutting segments mid-span where needed. Batches are in
/// ascending page order and their concatenation reproduces the plan, so
/// executing them on separate threads writes disjoint pages.
pub fn shard_segments(segments: &[PlanSegment], shards: usize) -> Vec<Vec<PlanSegment>> {
    let total: u64 = segments.iter().map(|s| s.pages).sum();
    if total == 0 || shards <= 1 {
        return vec![segments.to_vec()];
    }
    let shards = shards.min(total as usize);
    let per = total.div_ceil(shards as u64);
    let mut out: Vec<Vec<PlanSegment>> = Vec::with_capacity(shards);
    let mut current: Vec<PlanSegment> = Vec::new();
    let mut room = per;
    for &seg in segments {
        let mut rest = seg;
        while rest.pages > 0 {
            let take = rest.pages.min(room);
            current.push(PlanSegment { pages: take, ..rest });
            let advance = take;
            rest.start_page += advance;
            rest.pages -= advance;
            if let SegmentSource::Record { rec, rec_page_offset } = rest.source {
                rest.source =
                    SegmentSource::Record { rec, rec_page_offset: rec_page_offset + advance };
            }
            room -= take;
            if room == 0 && out.len() + 1 < shards {
                out.push(std::mem::take(&mut current));
                room = per;
            }
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{ChunkKind, PageRecord};

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; CHUNK_PAGE_SIZE]
    }

    fn full(generation: u64, recs: Vec<(u64, Vec<u8>)>, zeros: Vec<(u64, u64)>) -> Chunk {
        Chunk {
            kind: ChunkKind::Full,
            rank: 0,
            generation,
            parent: None,
            capture_time_ns: 0,
            heap_pages: 8,
            mmap_blocks: vec![],
            zero_ranges: zeros,
            records: recs
                .into_iter()
                .map(|(start_page, data)| PageRecord { start_page, data })
                .collect(),
            delta_records: vec![],
            dropped_pages: 0,
            app_state: vec![],
        }
    }

    fn incr(generation: u64, recs: Vec<(u64, Vec<u8>)>, zeros: Vec<(u64, u64)>) -> Chunk {
        Chunk {
            kind: ChunkKind::Incremental,
            parent: Some(generation - 1),
            ..full(generation, recs, zeros)
        }
    }

    #[test]
    fn newest_generation_wins_each_page() {
        let base = full(0, vec![(0, [page(1), page(2), page(3)].concat())], vec![]);
        let inc = incr(1, vec![(1, page(9))], vec![]);
        let plan = RestorePlan::build(&[base, inc], None);
        // Page 0 and 2 from the base, page 1 from the increment.
        assert_eq!(plan.live_pages, 3);
        assert_eq!(plan.superseded_pages, 1, "base's page 1 is dead");
        assert_eq!(plan.segments.len(), 3);
        assert_eq!(
            plan.segments[1],
            PlanSegment {
                chunk: 1,
                start_page: 1,
                pages: 1,
                source: SegmentSource::Record { rec: 0, rec_page_offset: 0 }
            }
        );
        assert_eq!(plan.segments[0].chunk, 0);
        assert_eq!(plan.segments[2].chunk, 0);
        assert_eq!(
            plan.segments[2].source,
            SegmentSource::Record { rec: 0, rec_page_offset: 2 },
            "tail of the base record survives at an offset"
        );
    }

    #[test]
    fn plan_work_is_chain_length_independent() {
        // A 3-page live set overwritten by every increment: the planned
        // work stays 3 pages no matter how long the chain grows.
        let mut chain = vec![full(0, vec![(0, [page(1), page(2), page(3)].concat())], vec![])];
        for g in 1..=32 {
            chain.push(incr(g, vec![(0, [page(g as u8), page(g as u8)].concat())], vec![]));
        }
        let plan = RestorePlan::build(&chain, None);
        assert_eq!(plan.applied_pages(), 3);
        assert_eq!(plan.planned_payload_bytes(), 3 * CHUNK_PAGE_SIZE as u64);
        assert_eq!(plan.superseded_pages, 2 * 32, "every superseded increment page counted");
        // Only the newest increment (one coalesced 2-page segment) and
        // the base's tail page are live.
        let live_chunks: Vec<usize> = plan.segments.iter().map(|s| s.chunk).collect();
        assert_eq!(live_chunks, vec![32, 0]);
    }

    #[test]
    fn zero_runs_participate_in_latest_wins() {
        // Base stores content; a later increment zeroes one page (a
        // fresh allocation over it) — the zero run must shadow the
        // base's content, and a dead zero run must cost nothing.
        let base = full(0, vec![(0, [page(1), page(2)].concat())], vec![(5, 2)]);
        let inc = incr(1, vec![(5, page(7))], vec![(0, 1)]);
        let plan = RestorePlan::build(&[base, inc], None);
        assert_eq!(plan.live_zero_pages, 2, "inc's zero at 0 plus base's surviving zero at 6");
        assert_eq!(plan.live_pages, 2, "base page 1, inc page 5");
        assert_eq!(plan.superseded_pages, 2, "base page 0 and base zero page 5");
        let zero_spans: Vec<(u64, u64)> = plan
            .segments
            .iter()
            .filter(|s| s.source == SegmentSource::Zero)
            .map(|s| (s.start_page, s.pages))
            .collect();
        assert_eq!(zero_spans, vec![(0, 1), (6, 1)]);
    }

    #[test]
    fn keep_filter_excludes_pages() {
        let base = full(0, vec![(0, [page(1), page(2), page(3), page(4)].concat())], vec![]);
        let keep = |p: u64| p < 2;
        let plan = RestorePlan::build(&[base], Some(&keep));
        assert_eq!(plan.live_pages, 2);
        assert_eq!(plan.excluded_pages, 2);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].pages, 2);
    }

    #[test]
    fn per_chunk_stats_account_every_stored_page() {
        let base = full(0, vec![(0, [page(1), page(2)].concat())], vec![(4, 3)]);
        let inc = incr(1, vec![(1, page(9)), (4, page(8))], vec![]);
        let plan = RestorePlan::build(&[base, inc], None);
        for s in &plan.per_chunk {
            assert_eq!(
                s.stored_pages + s.stored_zero_pages,
                s.live_pages + s.live_zero_pages + s.superseded_pages + s.excluded_pages,
                "generation {}",
                s.generation
            );
        }
        assert_eq!(plan.per_chunk[0].generation, 0);
        assert_eq!(plan.per_chunk[1].generation, 1);
        assert_eq!(plan.per_chunk[1].superseded_pages, 0, "newest chunk is never superseded");
    }

    #[test]
    fn segments_are_sorted_and_disjoint() {
        let base = full(0, vec![(0, [page(1), page(2), page(3)].concat())], vec![(10, 4)]);
        let i1 = incr(1, vec![(2, [page(5), page(6)].concat())], vec![(11, 1)]);
        let i2 = incr(2, vec![(1, page(7))], vec![]);
        let plan = RestorePlan::build(&[base, i1, i2], None);
        let mut last_end = 0u64;
        for s in &plan.segments {
            assert!(s.start_page >= last_end, "overlap or disorder at page {}", s.start_page);
            last_end = s.start_page + s.pages;
        }
        assert_eq!(plan.applied_pages(), plan.segments.iter().map(|s| s.pages).sum::<u64>());
    }

    fn delta_rec(page: u64, mask: u16) -> crate::chunk::DeltaRecord {
        crate::chunk::DeltaRecord {
            page,
            mask,
            data: vec![0xEE; mask.count_ones() as usize * crate::hash::BLOCK_SIZE],
        }
    }

    #[test]
    fn delta_base_chases_to_record_and_zero() {
        let base = full(0, vec![(0, [page(1), page(2)].concat())], vec![(5, 1)]);
        let mut inc = incr(1, vec![], vec![]);
        inc.delta_records = vec![delta_rec(1, 0b11), delta_rec(5, 0b1)];
        let plan = RestorePlan::build(&[base, inc], None);
        assert_eq!(plan.live_delta_pages, 2);
        assert_eq!(plan.live_pages, 1, "only base page 0 survives whole");
        assert_eq!(plan.delta_base_pages, 1, "base page 1 is read as delta base");
        assert_eq!(plan.applied_pages(), 3);
        let d1 = plan.segments.iter().find(|s| s.start_page == 1).unwrap();
        assert_eq!(
            d1.source,
            SegmentSource::Delta {
                rec: 0,
                base: DeltaBase::Record { chunk: 0, rec: 0, rec_page_offset: 1 }
            }
        );
        assert_eq!(d1.chunk, 1);
        let d5 = plan.segments.iter().find(|s| s.start_page == 5).unwrap();
        assert_eq!(d5.source, SegmentSource::Delta { rec: 1, base: DeltaBase::Zero });
        // Payload accounting: base page 0 + base page 1 (as base) plus
        // 3 changed blocks.
        assert_eq!(
            plan.planned_payload_bytes(),
            2 * CHUNK_PAGE_SIZE as u64 + 3 * crate::hash::BLOCK_SIZE as u64
        );
    }

    #[test]
    fn newer_record_supersedes_older_delta() {
        let base = full(0, vec![(0, page(1))], vec![]);
        let mut i1 = incr(1, vec![], vec![]);
        i1.delta_records = vec![delta_rec(0, 0b1)];
        let i2 = incr(2, vec![(0, page(9))], vec![]);
        let plan = RestorePlan::build(&[base, i1, i2], None);
        assert_eq!(plan.live_delta_pages, 0, "newest whole page wins");
        assert_eq!(plan.live_pages, 1);
        assert_eq!(plan.delta_base_pages, 0, "dead delta must not pin its base");
        assert_eq!(plan.per_chunk[1].stored_delta_pages, 1);
        assert_eq!(plan.per_chunk[1].live_delta_pages, 0);
        assert!(plan.per_chunk[1].skipped_payload_bytes() > 0, "dead delta bytes are skippable");
        assert_eq!(plan.segments.len(), 1);
    }

    #[test]
    fn newer_delta_wins_over_older_delta_with_shared_base() {
        // gen1 delta-encodes page 0, gen2 re-stores it whole (the
        // alternation rule), gen3 delta-encodes it again: only gen3's
        // delta is live and its base is gen2's whole page.
        let base = full(0, vec![(0, page(1))], vec![]);
        let mut i1 = incr(1, vec![], vec![]);
        i1.delta_records = vec![delta_rec(0, 0b1)];
        let i2 = incr(2, vec![(0, page(5))], vec![]);
        let mut i3 = incr(3, vec![], vec![]);
        i3.delta_records = vec![delta_rec(0, 0b10)];
        let plan = RestorePlan::build(&[base, i1, i2, i3], None);
        assert_eq!(plan.live_delta_pages, 1);
        assert_eq!(
            plan.segments[0].source,
            SegmentSource::Delta {
                rec: 0,
                base: DeltaBase::Record { chunk: 2, rec: 0, rec_page_offset: 0 }
            }
        );
        assert_eq!(plan.segments[0].chunk, 3);
        assert_eq!(plan.per_chunk[0].superseded_pages, 1, "gen0 page is fully dead");
        assert_eq!(plan.per_chunk[0].delta_base_pages, 0);
    }

    #[test]
    fn keep_filter_excludes_delta_pages() {
        let base = full(0, vec![(0, [page(1), page(2)].concat())], vec![]);
        let mut inc = incr(1, vec![], vec![]);
        inc.delta_records = vec![delta_rec(1, 0b1)];
        let keep = |p: u64| p < 1;
        let plan = RestorePlan::build(&[base, inc], Some(&keep));
        assert_eq!(plan.live_delta_pages, 0);
        assert_eq!(plan.live_pages, 1);
        assert_eq!(plan.delta_base_pages, 0);
    }

    #[test]
    #[should_panic(expected = "without a base")]
    fn delta_without_base_panics() {
        let base = full(0, vec![(0, page(1))], vec![]);
        let mut inc = incr(1, vec![], vec![]);
        inc.delta_records = vec![delta_rec(7, 0b1)]; // page 7 never stored whole
        let _ = RestorePlan::build(&[base, inc], None);
    }

    #[test]
    fn shard_segments_partitions_exactly() {
        let base = full(0, vec![(0, vec![0xAB; 10 * CHUNK_PAGE_SIZE])], vec![(20, 7)]);
        let inc = incr(1, vec![(4, vec![0xCD; 3 * CHUNK_PAGE_SIZE])], vec![]);
        let plan = RestorePlan::build(&[base, inc], None);
        for shards in [1usize, 2, 3, 8, 64] {
            let parts = shard_segments(&plan.segments, shards);
            assert!(parts.len() <= shards.max(1));
            let flat: Vec<u64> =
                parts.iter().flatten().flat_map(|s| s.start_page..s.start_page + s.pages).collect();
            let want: Vec<u64> =
                plan.segments.iter().flat_map(|s| s.start_page..s.start_page + s.pages).collect();
            assert_eq!(flat, want, "shards={shards}");
            // Splitting a record span advances the record offset so the
            // shard reads the right payload bytes.
            for part in &parts {
                for s in part {
                    if let SegmentSource::Record { rec_page_offset, .. } = s.source {
                        let orig = plan
                            .segments
                            .iter()
                            .find(|o| {
                                o.chunk == s.chunk
                                    && o.start_page <= s.start_page
                                    && s.start_page + s.pages <= o.start_page + o.pages
                            })
                            .unwrap();
                        if let SegmentSource::Record { rec_page_offset: orig_off, .. } = orig.source
                        {
                            assert_eq!(
                                rec_page_offset,
                                orig_off + (s.start_page - orig.start_page),
                                "shards={shards}"
                            );
                        }
                    }
                }
            }
        }
    }
}
