//! Fast 64-bit content hashing for silent-write detection.
//!
//! The dirty bitmap over-reports: a page the MMU flags as written may
//! hold exactly the bytes it held at the last committed generation
//! (a *silent same-value write*), or may differ in a single cacheline.
//! This module provides the content layer's hash kernel: a 4-lane
//! multiply-xor hash over little-endian `u64` words, the same idiom as
//! `BackedSpace::content_digest`, chosen so the compiler can keep four
//! independent dependency chains in flight (SIMD/ILP friendly) instead
//! of the strictly serial chain a CRC forces.
//!
//! Pages are hashed at sub-page granularity: a 4 KiB page is split into
//! [`BLOCKS_PER_PAGE`] blocks of [`BLOCK_SIZE`] bytes, one digest per
//! block. A page is *silent-same* iff all block digests match the
//! baseline; a partially-written page is delta-encoded by shipping only
//! the blocks whose digests changed.
//!
//! This is a content-change detector, not a cryptographic hash: the
//! threat model is accidental collision between two states of the same
//! page, the same model under which the repo trusts CRC-32 for chunk
//! integrity — but with 64 bits instead of 32.

use crate::chunk::CHUNK_PAGE_SIZE;

/// Sub-page delta granularity in bytes.
pub const BLOCK_SIZE: usize = 256;
/// Blocks per checkpoint page ([`CHUNK_PAGE_SIZE`] / [`BLOCK_SIZE`]).
pub const BLOCKS_PER_PAGE: usize = CHUNK_PAGE_SIZE / BLOCK_SIZE;

/// Per-lane multipliers (odd constants: golden ratio and friends).
/// `pub(crate)` so the SIMD kernel backends compute the identical
/// function (see [`crate::kernels`]).
pub(crate) const M0: u64 = 0x9E37_79B9_7F4A_7C15;
pub(crate) const M1: u64 = 0xC2B2_AE3D_27D4_EB4F;
pub(crate) const M2: u64 = 0x1656_67B1_9E37_79F9;
pub(crate) const M3: u64 = 0xD6E8_FEB8_6659_FD93;

/// Lane seeds: distinct so an all-zero input still produces non-trivial
/// lane states.
pub(crate) const S0: u64 = 0x243F_6A88_85A3_08D3;
pub(crate) const S1: u64 = 0x1319_8A2E_0370_7344;
pub(crate) const S2: u64 = 0xA409_3822_299F_31D0;
pub(crate) const S3: u64 = 0x082E_FA98_EC4E_6C89;

/// Final avalanche (the SplitMix64 finalizer): a single flipped input
/// bit must be able to flip any output bit.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
pub(crate) fn lane(acc: u64, word: u64, mult: u64) -> u64 {
    (acc ^ word).wrapping_mul(mult).rotate_left(23)
}

/// Combine four lane accumulators into the final digest of `len` bytes.
/// Every backend — scalar, fused single-pass, SIMD — funnels through
/// this exact finalization so digests are bit-identical across them.
#[inline]
pub(crate) fn finish_lanes(a0: u64, a1: u64, a2: u64, a3: u64, len: u64) -> u64 {
    mix(a0 ^ a1.rotate_left(17) ^ a2.rotate_left(31) ^ a3.rotate_left(47) ^ len)
}

/// Hash `data` with the 4-lane multiply-xor kernel.
///
/// Words are read little-endian; a short tail is zero-padded and the
/// length is folded into the finalization so `b"ab"` and `b"ab\0"`
/// hash differently.
#[inline]
pub fn hash64(data: &[u8]) -> u64 {
    let mut a0 = S0;
    let mut a1 = S1;
    let mut a2 = S2;
    let mut a3 = S3;
    let mut iter = data.chunks_exact(32);
    for quad in iter.by_ref() {
        let w0 = u64::from_le_bytes(quad[0..8].try_into().unwrap());
        let w1 = u64::from_le_bytes(quad[8..16].try_into().unwrap());
        let w2 = u64::from_le_bytes(quad[16..24].try_into().unwrap());
        let w3 = u64::from_le_bytes(quad[24..32].try_into().unwrap());
        a0 = lane(a0, w0, M0);
        a1 = lane(a1, w1, M1);
        a2 = lane(a2, w2, M2);
        a3 = lane(a3, w3, M3);
    }
    let rem = iter.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 32];
        tail[..rem.len()].copy_from_slice(rem);
        a0 = lane(a0, u64::from_le_bytes(tail[0..8].try_into().unwrap()), M0);
        a1 = lane(a1, u64::from_le_bytes(tail[8..16].try_into().unwrap()), M1);
        a2 = lane(a2, u64::from_le_bytes(tail[16..24].try_into().unwrap()), M2);
        a3 = lane(a3, u64::from_le_bytes(tail[24..32].try_into().unwrap()), M3);
    }
    finish_lanes(a0, a1, a2, a3, data.len() as u64)
}

/// Straight-line reference implementation of the same function: one
/// lane update at a time, no manual unrolling. Exists so the optimized
/// kernel has an executable specification to be tested against.
pub fn hash64_reference(data: &[u8]) -> u64 {
    const MULTS: [u64; 4] = [M0, M1, M2, M3];
    let mut acc = [S0, S1, S2, S3];
    let quads = data.len() / 32;
    let fold = |acc: &mut [u64; 4], quad: &[u8]| {
        for (i, word) in quad.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(word);
            acc[i] = lane(acc[i], u64::from_le_bytes(w), MULTS[i]);
        }
    };
    for q in 0..quads {
        fold(&mut acc, &data[q * 32..(q + 1) * 32]);
    }
    if !data.len().is_multiple_of(32) {
        let mut tail = [0u8; 32];
        tail[..data.len() % 32].copy_from_slice(&data[quads * 32..]);
        fold(&mut acc, &tail);
    }
    finish_lanes(acc[0], acc[1], acc[2], acc[3], data.len() as u64)
}

/// Digest of one all-zero [`BLOCK_SIZE`] block. Pages elided into zero
/// ranges still update the dedup baseline, and this constant keeps that
/// update a memset-style fill instead of a rehash of 4 KiB of zeros.
pub fn zero_block_hash() -> u64 {
    hash64(&[0u8; BLOCK_SIZE])
}

/// Page identity digest: [`hash64`] over the little-endian byte
/// encoding of the page's block digests (merkle-style).
///
/// Deriving the page hash from the block hashes instead of rehashing
/// the raw page means a fused scan produces the whole identity triple
/// (zero flag, page hash, block hashes) without a second serial chain
/// over the data — the block chains are independent and vectorize,
/// while a full-page chain would be latency-bound. The digest is
/// endianness-stable: big-endian hosts pay a small copy.
pub fn page_hash_of_blocks(block_hashes: &[u64]) -> u64 {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: reinterpreting `u64`s as their 8 constituent bytes is
        // always valid (no alignment or validity constraints on u8),
        // and on a little-endian host the in-memory order matches the
        // `to_le_bytes` encoding the digest is defined over.
        let bytes = unsafe {
            std::slice::from_raw_parts(block_hashes.as_ptr().cast::<u8>(), block_hashes.len() * 8)
        };
        hash64(bytes)
    }
    #[cfg(target_endian = "big")]
    {
        let mut bytes = Vec::with_capacity(block_hashes.len() * 8);
        for h in block_hashes {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        hash64(&bytes)
    }
}

/// Compute the [`BLOCKS_PER_PAGE`] block digests of one page into `out`.
///
/// Panics if `page` is not exactly [`CHUNK_PAGE_SIZE`] bytes.
#[inline]
pub fn page_block_hashes(page: &[u8], out: &mut [u64; BLOCKS_PER_PAGE]) {
    assert_eq!(page.len(), CHUNK_PAGE_SIZE, "page_block_hashes needs a whole page");
    for (slot, block) in out.iter_mut().zip(page.chunks_exact(BLOCK_SIZE)) {
        *slot = hash64(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix_buf(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn optimized_matches_reference() {
        for &len in &[0usize, 1, 7, 8, 9, 31, 32, 33, 255, 256, 257, 4096, 4097] {
            let buf = splitmix_buf(0xDEAD_BEEF ^ len as u64, len + 3);
            assert_eq!(hash64(&buf[..len]), hash64_reference(&buf[..len]), "len {len}");
            // Misaligned view of the same bytes hashes identically
            // (the kernel must not depend on buffer alignment).
            assert_eq!(hash64(&buf[3..3 + len]), hash64_reference(&buf[3..3 + len]));
        }
    }

    #[test]
    fn length_is_significant() {
        // A zero-extended buffer must not collide with its prefix.
        let buf = [0xABu8; 64];
        let mut padded = buf[..32].to_vec();
        padded.push(0);
        assert_ne!(hash64(&buf[..32]), hash64(&padded));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = splitmix_buf(42, BLOCK_SIZE);
        let h = hash64(&base);
        for bit in 0..BLOCK_SIZE * 8 {
            let mut flipped = base.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(hash64(&flipped), h, "bit {bit} collided");
        }
    }

    #[test]
    fn block_hashes_cover_the_page_independently() {
        let page = splitmix_buf(7, CHUNK_PAGE_SIZE);
        let mut hashes = [0u64; BLOCKS_PER_PAGE];
        page_block_hashes(&page, &mut hashes);
        for b in 0..BLOCKS_PER_PAGE {
            assert_eq!(hashes[b], hash64(&page[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE]));
            // Flipping one byte inside block b changes exactly that digest.
            let mut other = page.clone();
            other[b * BLOCK_SIZE + 17] ^= 0x40;
            let mut h2 = [0u64; BLOCKS_PER_PAGE];
            page_block_hashes(&other, &mut h2);
            for (i, (a, b2)) in hashes.iter().zip(h2.iter()).enumerate() {
                if i == b {
                    assert_ne!(a, b2);
                } else {
                    assert_eq!(a, b2);
                }
            }
        }
    }

    #[test]
    fn page_hash_of_blocks_is_hash64_of_le_bytes() {
        let page = splitmix_buf(99, CHUNK_PAGE_SIZE);
        let mut hashes = [0u64; BLOCKS_PER_PAGE];
        page_block_hashes(&page, &mut hashes);
        let mut bytes = Vec::new();
        for h in &hashes {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        assert_eq!(page_hash_of_blocks(&hashes), hash64(&bytes));
        // Any block digest change propagates into the page digest.
        let before = page_hash_of_blocks(&hashes);
        hashes[7] ^= 1;
        assert_ne!(page_hash_of_blocks(&hashes), before);
    }

    #[test]
    fn zero_block_hash_matches_zero_page() {
        let zeros = [0u8; CHUNK_PAGE_SIZE];
        let mut hashes = [0u64; BLOCKS_PER_PAGE];
        page_block_hashes(&zeros, &mut hashes);
        for h in hashes {
            assert_eq!(h, zero_block_hash());
        }
    }
}
