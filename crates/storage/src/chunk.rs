//! The checkpoint chunk format.
//!
//! One chunk holds one rank's contribution to one checkpoint generation:
//! either a **full** snapshot (every mapped page) or an **incremental**
//! delta (pages dirtied since the previous generation — the paper's IWS
//! accumulated between checkpoints). The format is an explicit
//! little-endian layout rather than a serde format: a checkpoint file
//! must be readable by a restorer that shares nothing with the writer
//! but this specification.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ICKP"
//! 4       2     version (2)
//! 6       1     kind (0 = full, 1 = incremental)
//! 7       1     reserved (0)
//! 8       4     rank
//! 12      4     reserved (0)
//! 16      8     generation
//! 24      8     parent generation (u64::MAX for full chunks)
//! 32      8     virtual capture time (ns)
//! 40      8     heap size (pages)
//! 48      4     number of live mmap blocks, M
//! 52      4     number of page records, R
//! 56      4     application state length, A
//! 60      4     number of zero ranges, Z
//! 64      8     silent-same pages dropped by dedup at capture
//! 72      4     number of delta records, D
//! 76      4     reserved (0)
//! 80      16*M  mmap blocks: (start_page u64, len u64)
//! ...     16*Z  zero ranges: (start_page u64, len u64)
//! ...     A     opaque application state (model counters/RNG)
//! ...     R×(16 + len*4096) page records: (start_page u64, len u64, data)
//! ...     D×(16 + popcount(mask)*256) delta records:
//!               (page u64, mask u16, reserved [u8;6], changed blocks)
//! last 4        CRC-32 of everything before it
//!
//! *Zero ranges* are pages whose content is entirely zero at capture
//! time (fresh allocations that were never written): they are listed
//! instead of stored, the classic zero-page elision of checkpointing
//! systems. Restore materializes them as zero-filled pages.
//!
//! *Delta records* (version 2, the content layer) store only the
//! changed 256-byte blocks of a partially-written page: `mask` bit `b`
//! set means block `b` of the page changed and its 256 bytes appear in
//! the payload, ascending. The unchanged blocks come from the page's
//! *base* — the next-older whole-page record or zero range covering the
//! same page in the chain. Capture guarantees the base of a delta is
//! never itself a delta (a page is re-stored whole after being
//! delta-encoded once), so base chasing is depth one. The header's
//! dropped-pages counter records how many dirty pages dedup proved
//! byte-identical to their committed baseline and elided entirely.
//! ```

use bytes::{Buf, BufMut};

use crate::crc::{crc32, Crc32};
use crate::hash::{BLOCKS_PER_PAGE, BLOCK_SIZE};
use crate::store::StorageError;

const MAGIC: &[u8; 4] = b"ICKP";
const VERSION: u16 = 2;
/// Fixed header size in bytes (before the variable tables).
const HEADER_LEN: usize = 80;
/// Page size must agree with `ickpt_mem::PAGE_SIZE`; the format pins it.
pub const CHUNK_PAGE_SIZE: usize = 4096;

/// Whether a chunk is a base snapshot or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Every mapped page at capture time.
    Full,
    /// Pages dirtied since the parent generation.
    Incremental,
}

/// A contiguous run of saved pages with their contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRecord {
    /// First page index of the run.
    pub start_page: u64,
    /// Page contents, concatenated; length is a multiple of 4096.
    pub data: Vec<u8>,
}

impl PageRecord {
    /// Number of pages in the record.
    pub fn page_count(&self) -> u64 {
        (self.data.len() / CHUNK_PAGE_SIZE) as u64
    }
}

/// A partially-rewritten page stored as its changed sub-page blocks.
///
/// Bit `b` of `mask` set means block `b` ([`BLOCK_SIZE`] bytes at page
/// offset `b * BLOCK_SIZE`) is present in `data`; present blocks are
/// concatenated in ascending block order. The unchanged blocks resolve
/// to the page's base record further down the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRecord {
    /// The page this delta rewrites.
    pub page: u64,
    /// Changed-block bitmap, bit `b` ↦ block `b` of the page.
    pub mask: u16,
    /// Changed blocks, `popcount(mask) * BLOCK_SIZE` bytes.
    pub data: Vec<u8>,
}

impl DeltaRecord {
    /// Number of changed blocks carried by this record.
    pub fn block_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Byte offset of changed block `i` (0-based among *present*
    /// blocks) within `data`, paired with its block index in the page.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, &[u8])> {
        let mask = self.mask;
        (0..BLOCKS_PER_PAGE).filter(move |b| mask & (1 << b) != 0).zip(self.data.chunks(BLOCK_SIZE))
    }
}

/// A decoded checkpoint chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Base or delta.
    pub kind: ChunkKind,
    /// Owning rank.
    pub rank: u32,
    /// Checkpoint generation this chunk belongs to.
    pub generation: u64,
    /// Generation this delta applies on top of (`None` for full chunks).
    pub parent: Option<u64>,
    /// Virtual time of capture (nanoseconds).
    pub capture_time_ns: u64,
    /// Heap size at capture, in pages (for mapping-state restore).
    pub heap_pages: u64,
    /// Live mmap blocks at capture (start page, page count).
    pub mmap_blocks: Vec<(u64, u64)>,
    /// Pages that were entirely zero at capture: recorded by position
    /// only (zero-page elision), restored as zero fill.
    pub zero_ranges: Vec<(u64, u64)>,
    /// Saved page runs in ascending page order.
    pub records: Vec<PageRecord>,
    /// Partially-rewritten pages stored as changed blocks only, in
    /// ascending page order (incremental chunks only).
    pub delta_records: Vec<DeltaRecord>,
    /// Dirty pages dedup proved byte-identical to their baseline and
    /// dropped at capture (accounting only; they occupy no payload).
    pub dropped_pages: u64,
    /// Opaque application/model state that rides along with the memory
    /// image (iteration counters, allocation tables, RNG state) so a
    /// restore resumes the exact execution trajectory.
    pub app_state: Vec<u8>,
}

impl Chunk {
    /// Total saved payload in bytes (the quantity the paper's IB
    /// metric bounds) — whole-page records plus delta blocks.
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.data.len() as u64).sum::<u64>()
            + self.delta_records.iter().map(|d| d.data.len() as u64).sum::<u64>()
    }

    /// Total saved pages (stored content, excluding elided zeros and
    /// delta-encoded pages).
    pub fn payload_pages(&self) -> u64 {
        self.records.iter().map(|r| r.page_count()).sum()
    }

    /// Pages stored as sub-page deltas.
    pub fn delta_pages(&self) -> u64 {
        self.delta_records.len() as u64
    }

    /// Bytes of changed-block payload across all delta records.
    pub fn delta_payload_bytes(&self) -> u64 {
        self.delta_records.iter().map(|d| d.data.len() as u64).sum()
    }

    /// Pages elided because they were all-zero.
    pub fn zero_pages(&self) -> u64 {
        self.zero_ranges.iter().map(|&(_, len)| len).sum()
    }

    /// Serialized size in bytes (header + records + CRC).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + 16 * self.mmap_blocks.len()
            + 16 * self.zero_ranges.len()
            + self.app_state.len()
            + self.records.iter().map(|r| 16 + r.data.len()).sum::<usize>()
            + self.delta_records.iter().map(|d| 16 + d.data.len()).sum::<usize>()
            + 4
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode into a caller-owned buffer, reusing its capacity.
    ///
    /// The capture pipeline serializes one chunk per checkpoint per
    /// rank; with a recycled buffer the steady-state encode performs no
    /// heap allocation at all (the buffer grows to the largest chunk
    /// seen and stays there). The contents are identical to
    /// [`Chunk::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.encoded_len());
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u8(match self.kind {
            ChunkKind::Full => 0,
            ChunkKind::Incremental => 1,
        });
        out.put_u8(0);
        out.put_u32_le(self.rank);
        out.put_u32_le(0);
        out.put_u64_le(self.generation);
        out.put_u64_le(self.parent.unwrap_or(u64::MAX));
        out.put_u64_le(self.capture_time_ns);
        out.put_u64_le(self.heap_pages);
        out.put_u32_le(self.mmap_blocks.len() as u32);
        out.put_u32_le(self.records.len() as u32);
        out.put_u32_le(self.app_state.len() as u32);
        out.put_u32_le(self.zero_ranges.len() as u32);
        out.put_u64_le(self.dropped_pages);
        out.put_u32_le(self.delta_records.len() as u32);
        out.put_u32_le(0);
        for &(start, len) in &self.mmap_blocks {
            out.put_u64_le(start);
            out.put_u64_le(len);
        }
        for &(start, len) in &self.zero_ranges {
            out.put_u64_le(start);
            out.put_u64_le(len);
        }
        out.put_slice(&self.app_state);
        for rec in &self.records {
            assert!(
                rec.data.len() % CHUNK_PAGE_SIZE == 0 && !rec.data.is_empty(),
                "page record data must be whole pages"
            );
            out.put_u64_le(rec.start_page);
            out.put_u64_le(rec.page_count());
            out.put_slice(&rec.data);
        }
        for delta in &self.delta_records {
            assert!(
                delta.mask != 0 && delta.data.len() == delta.block_count() as usize * BLOCK_SIZE,
                "delta record payload must match its block mask"
            );
            out.put_u64_le(delta.page);
            out.put_u16_le(delta.mask);
            out.put_slice(&[0u8; 6]);
            out.put_slice(&delta.data);
        }
        let crc = crc32(out);
        out.put_u32_le(crc);
    }

    /// Decode and verify a chunk, copying page payloads into owned
    /// records. For read paths that only need *some* pages (the restore
    /// planner), [`ChunkView::decode`] verifies the same CRC but leaves
    /// payloads in place.
    pub fn decode(buf: &[u8]) -> Result<Chunk, StorageError> {
        Ok(ChunkView::decode(buf)?.to_owned())
    }
}

/// A record's location within an encoded chunk: the page span plus the
/// byte offset of its payload, with the payload itself left in the
/// encoded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef {
    /// First page index of the run.
    pub start_page: u64,
    /// Number of pages in the run.
    pub pages: u64,
    /// Byte offset of the run's payload within the encoded chunk.
    payload_offset: usize,
}

impl RecordRef {
    /// Page span of the record as `(start_page, pages)`.
    pub fn span(&self) -> (u64, u64) {
        (self.start_page, self.pages)
    }
}

/// A delta record's location within an encoded chunk: the target page
/// and changed-block mask, with the block payload left in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRef {
    /// The page this delta rewrites.
    pub page: u64,
    /// Changed-block bitmap, bit `b` ↦ block `b` of the page.
    pub mask: u16,
    /// Byte offset of the changed-block payload within the chunk.
    payload_offset: usize,
}

impl DeltaRef {
    /// Number of changed blocks carried by this record.
    pub fn block_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.block_count() as usize * BLOCK_SIZE
    }
}

/// A CRC-verified, zero-copy view of an encoded chunk.
///
/// Decoding a [`Chunk`] copies every page payload into owned records —
/// O(stored bytes) of memcpy even for pages a restore will never apply.
/// A `ChunkView` parses the same format and verifies the same CRC, but
/// keeps payloads in the encoded buffer and exposes them through
/// [`RecordRef`]s, so the restore planner can read each *live* page
/// exactly once and never touch superseded ones.
#[derive(Debug)]
pub struct ChunkView<'a> {
    /// Base or delta.
    pub kind: ChunkKind,
    /// Owning rank.
    pub rank: u32,
    /// Checkpoint generation this chunk belongs to.
    pub generation: u64,
    /// Generation this delta applies on top of (`None` for full chunks).
    pub parent: Option<u64>,
    /// Virtual time of capture (nanoseconds).
    pub capture_time_ns: u64,
    /// Heap size at capture, in pages.
    pub heap_pages: u64,
    /// Live mmap blocks at capture (start page, page count).
    pub mmap_blocks: Vec<(u64, u64)>,
    /// Elided all-zero page runs.
    pub zero_ranges: Vec<(u64, u64)>,
    /// Saved page runs, payloads referenced in place.
    pub records: Vec<RecordRef>,
    /// Delta-encoded pages, block payloads referenced in place.
    pub delta_records: Vec<DeltaRef>,
    /// Dirty pages dedup dropped at capture (accounting only).
    pub dropped_pages: u64,
    /// Opaque application/model state.
    pub app_state: &'a [u8],
    /// The encoded buffer the record payloads point into.
    buf: &'a [u8],
}

impl<'a> ChunkView<'a> {
    /// Decode and verify a chunk without copying page payloads.
    pub fn decode(buf: &'a [u8]) -> Result<ChunkView<'a>, StorageError> {
        if buf.len() < HEADER_LEN {
            return Err(StorageError::Corrupt("chunk shorter than minimal header".into()));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let mut c = Crc32::new();
        c.update(body);
        if c.finalize() != stored_crc {
            return Err(StorageError::Corrupt("CRC mismatch".into()));
        }
        let mut b = body;
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let version = b.get_u16_le();
        if version != VERSION {
            return Err(StorageError::Corrupt(format!("unsupported version {version}")));
        }
        let kind = match b.get_u8() {
            0 => ChunkKind::Full,
            1 => ChunkKind::Incremental,
            k => return Err(StorageError::Corrupt(format!("unknown chunk kind {k}"))),
        };
        let _reserved = b.get_u8();
        let rank = b.get_u32_le();
        let _reserved2 = b.get_u32_le();
        let generation = b.get_u64_le();
        let parent_raw = b.get_u64_le();
        let capture_time_ns = b.get_u64_le();
        let heap_pages = b.get_u64_le();
        let n_mmap = b.get_u32_le() as usize;
        let n_records = b.get_u32_le() as usize;
        let app_state_len = b.get_u32_le() as usize;
        let n_zero = b.get_u32_le() as usize;
        let dropped_pages = b.get_u64_le();
        let n_delta = b.get_u32_le() as usize;
        let _reserved3 = b.get_u32_le();
        if b.remaining() < (n_mmap + n_zero) * 16 + app_state_len {
            return Err(StorageError::Corrupt("truncated mmap/zero table".into()));
        }
        let mut mmap_blocks = Vec::with_capacity(n_mmap);
        for _ in 0..n_mmap {
            let start = b.get_u64_le();
            let len = b.get_u64_le();
            mmap_blocks.push((start, len));
        }
        let mut zero_ranges = Vec::with_capacity(n_zero);
        for _ in 0..n_zero {
            let start = b.get_u64_le();
            let len = b.get_u64_le();
            zero_ranges.push((start, len));
        }
        let app_offset = body.len() - b.remaining();
        let app_state = &body[app_offset..app_offset + app_state_len];
        b.advance(app_state_len);
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            if b.remaining() < 16 {
                return Err(StorageError::Corrupt("truncated record header".into()));
            }
            let start_page = b.get_u64_le();
            let pages = b.get_u64_le();
            let nbytes = (pages as usize).checked_mul(CHUNK_PAGE_SIZE).ok_or_else(|| {
                StorageError::Corrupt(format!("record page count {pages} overflows"))
            })?;
            if b.remaining() < nbytes {
                return Err(StorageError::Corrupt("truncated record payload".into()));
            }
            let payload_offset = body.len() - b.remaining();
            b.advance(nbytes);
            records.push(RecordRef { start_page, pages, payload_offset });
        }
        let mut delta_records = Vec::with_capacity(n_delta);
        for _ in 0..n_delta {
            if b.remaining() < 16 {
                return Err(StorageError::Corrupt("truncated delta header".into()));
            }
            let page = b.get_u64_le();
            let mask = b.get_u16_le();
            b.advance(6);
            if mask == 0 {
                return Err(StorageError::Corrupt("delta record with empty mask".into()));
            }
            let nbytes = mask.count_ones() as usize * BLOCK_SIZE;
            if b.remaining() < nbytes {
                return Err(StorageError::Corrupt("truncated delta payload".into()));
            }
            let payload_offset = body.len() - b.remaining();
            b.advance(nbytes);
            delta_records.push(DeltaRef { page, mask, payload_offset });
        }
        if b.has_remaining() {
            return Err(StorageError::Corrupt("trailing bytes after records".into()));
        }
        let parent = if parent_raw == u64::MAX { None } else { Some(parent_raw) };
        match (kind, parent) {
            (ChunkKind::Full, Some(_)) => {
                return Err(StorageError::Corrupt("full chunk with a parent".into()))
            }
            (ChunkKind::Incremental, None) => {
                return Err(StorageError::Corrupt("incremental chunk without parent".into()))
            }
            _ => {}
        }
        if kind == ChunkKind::Full && !delta_records.is_empty() {
            return Err(StorageError::Corrupt("full chunk with delta records".into()));
        }
        Ok(ChunkView {
            kind,
            rank,
            generation,
            parent,
            capture_time_ns,
            heap_pages,
            mmap_blocks,
            zero_ranges,
            records,
            delta_records,
            dropped_pages,
            app_state,
            buf,
        })
    }

    /// Payload bytes of `pages` pages of record `rec`, starting
    /// `page_offset` pages into the record.
    pub fn record_pages(&self, rec: usize, page_offset: u64, pages: u64) -> &'a [u8] {
        let r = &self.records[rec];
        assert!(page_offset + pages <= r.pages, "page span outside record");
        let start = r.payload_offset + page_offset as usize * CHUNK_PAGE_SIZE;
        &self.buf[start..start + pages as usize * CHUNK_PAGE_SIZE]
    }

    /// Changed-block payload of delta record `rec`,
    /// `popcount(mask) * BLOCK_SIZE` bytes in ascending block order.
    pub fn delta_data(&self, rec: usize) -> &'a [u8] {
        let d = &self.delta_records[rec];
        &self.buf[d.payload_offset..d.payload_offset + d.payload_len()]
    }

    /// Total saved pages (stored content, excluding elided zeros and
    /// delta-encoded pages).
    pub fn payload_pages(&self) -> u64 {
        self.records.iter().map(|r| r.pages).sum()
    }

    /// Pages stored as sub-page deltas.
    pub fn delta_pages(&self) -> u64 {
        self.delta_records.len() as u64
    }

    /// Pages elided because they were all-zero.
    pub fn zero_pages(&self) -> u64 {
        self.zero_ranges.iter().map(|&(_, len)| len).sum()
    }

    /// Materialize an owned [`Chunk`], copying payloads.
    pub fn to_owned(&self) -> Chunk {
        Chunk {
            kind: self.kind,
            rank: self.rank,
            generation: self.generation,
            parent: self.parent,
            capture_time_ns: self.capture_time_ns,
            heap_pages: self.heap_pages,
            mmap_blocks: self.mmap_blocks.clone(),
            zero_ranges: self.zero_ranges.clone(),
            records: self
                .records
                .iter()
                .enumerate()
                .map(|(i, r)| PageRecord {
                    start_page: r.start_page,
                    data: self.record_pages(i, 0, r.pages).to_vec(),
                })
                .collect(),
            delta_records: self
                .delta_records
                .iter()
                .enumerate()
                .map(|(i, d)| DeltaRecord {
                    page: d.page,
                    mask: d.mask,
                    data: self.delta_data(i).to_vec(),
                })
                .collect(),
            dropped_pages: self.dropped_pages,
            app_state: self.app_state.to_vec(),
        }
    }
}

/// Lineage fields read from an encoded chunk's fixed-offset header.
///
/// Produced by [`peek_lineage`] *without* CRC verification, so a chain
/// walk can follow parent links before the (possibly parallel) verify
/// pass; any value here must be treated as untrusted until the chunk's
/// CRC has been checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLineage {
    /// Base or delta.
    pub kind: ChunkKind,
    /// Owning rank.
    pub rank: u32,
    /// Generation of the chunk.
    pub generation: u64,
    /// Parent generation for incremental chunks.
    pub parent: Option<u64>,
}

/// Read the lineage header of an encoded chunk without verifying its
/// CRC. Structural problems (short buffer, bad magic/version/kind) are
/// still reported as corruption.
pub fn peek_lineage(buf: &[u8]) -> Result<ChunkLineage, StorageError> {
    if buf.len() < 60 {
        return Err(StorageError::Corrupt("chunk shorter than minimal header".into()));
    }
    if &buf[0..4] != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("unsupported version {version}")));
    }
    let kind = match buf[6] {
        0 => ChunkKind::Full,
        1 => ChunkKind::Incremental,
        k => return Err(StorageError::Corrupt(format!("unknown chunk kind {k}"))),
    };
    let rank = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let generation = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    let parent_raw = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    let parent = if parent_raw == u64::MAX { None } else { Some(parent_raw) };
    Ok(ChunkLineage { kind, rank, generation, parent })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk(kind: ChunkKind) -> Chunk {
        Chunk {
            kind,
            rank: 3,
            generation: 7,
            parent: match kind {
                ChunkKind::Full => None,
                ChunkKind::Incremental => Some(6),
            },
            capture_time_ns: 123_456_789,
            heap_pages: 10,
            mmap_blocks: vec![(100, 4), (200, 2)],
            zero_ranges: vec![(50, 3)],
            records: vec![
                PageRecord { start_page: 0, data: vec![0xAA; CHUNK_PAGE_SIZE * 2] },
                PageRecord { start_page: 100, data: vec![0xBB; CHUNK_PAGE_SIZE] },
            ],
            delta_records: match kind {
                ChunkKind::Full => vec![],
                ChunkKind::Incremental => vec![
                    DeltaRecord { page: 101, mask: 0b101, data: vec![0xCC; 2 * BLOCK_SIZE] },
                    DeltaRecord { page: 202, mask: 0x8000, data: vec![0xDD; BLOCK_SIZE] },
                ],
            },
            dropped_pages: 5,
            app_state: vec![7, 8, 9],
        }
    }

    #[test]
    fn roundtrip_full_and_incremental() {
        for kind in [ChunkKind::Full, ChunkKind::Incremental] {
            let c = sample_chunk(kind);
            let enc = c.encode();
            assert_eq!(enc.len(), c.encoded_len());
            let d = Chunk::decode(&enc).unwrap();
            assert_eq!(c, d);
        }
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let mut buf = vec![0xFFu8; 7]; // stale contents must be discarded
        for kind in [ChunkKind::Full, ChunkKind::Incremental] {
            let c = sample_chunk(kind);
            c.encode_into(&mut buf);
            assert_eq!(buf, c.encode());
            assert_eq!(Chunk::decode(&buf).unwrap(), c);
        }
    }

    #[test]
    fn payload_accounting() {
        let c = sample_chunk(ChunkKind::Full);
        assert_eq!(c.payload_pages(), 3);
        assert_eq!(c.payload_bytes(), 3 * CHUNK_PAGE_SIZE as u64);
        assert_eq!(c.zero_pages(), 3, "elided zero pages are counted separately");
        let c = sample_chunk(ChunkKind::Incremental);
        assert_eq!(c.delta_pages(), 2);
        assert_eq!(c.delta_payload_bytes(), 3 * BLOCK_SIZE as u64);
        assert_eq!(c.payload_bytes(), 3 * CHUNK_PAGE_SIZE as u64 + 3 * BLOCK_SIZE as u64);
    }

    #[test]
    fn delta_records_roundtrip_and_validate() {
        let c = sample_chunk(ChunkKind::Incremental);
        let enc = c.encode();
        assert_eq!(enc.len(), c.encoded_len());
        let v = ChunkView::decode(&enc).unwrap();
        assert_eq!(v.dropped_pages, 5);
        assert_eq!(v.delta_records.len(), 2);
        assert_eq!(v.delta_records[0].page, 101);
        assert_eq!(v.delta_records[0].mask, 0b101);
        assert_eq!(v.delta_data(0), &c.delta_records[0].data[..]);
        assert_eq!(v.delta_data(1), &c.delta_records[1].data[..]);
        assert_eq!(v.to_owned(), c);
        // Block iterator pairs each present block with its page index.
        let blocks: Vec<usize> = c.delta_records[0].blocks().map(|(b, _)| b).collect();
        assert_eq!(blocks, vec![0, 2]);
        let blocks: Vec<usize> = c.delta_records[1].blocks().map(|(b, _)| b).collect();
        assert_eq!(blocks, vec![15]);
    }

    #[test]
    fn full_chunk_with_deltas_rejected() {
        let mut c = sample_chunk(ChunkKind::Full);
        c.delta_records = vec![DeltaRecord { page: 1, mask: 1, data: vec![0u8; BLOCK_SIZE] }];
        assert!(Chunk::decode(&c.encode()).is_err(), "deltas need a parent to chase into");
    }

    #[test]
    fn corruption_detected_anywhere() {
        let c = sample_chunk(ChunkKind::Incremental);
        let enc = c.encode();
        for pos in [0usize, 5, 20, 60, enc.len() / 2, enc.len() - 5] {
            let mut bad = enc.clone();
            bad[pos] ^= 0x40;
            assert!(Chunk::decode(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn truncation_detected() {
        let enc = sample_chunk(ChunkKind::Full).encode();
        for keep in [0usize, 10, 59, enc.len() - 1] {
            assert!(Chunk::decode(&enc[..keep]).is_err(), "truncation to {keep} undetected");
        }
    }

    #[test]
    fn lineage_invariants_enforced() {
        let mut c = sample_chunk(ChunkKind::Full);
        c.parent = Some(1);
        assert!(Chunk::decode(&c.encode()).is_err(), "full chunk must have no parent");
        let mut c = sample_chunk(ChunkKind::Incremental);
        c.parent = None;
        assert!(Chunk::decode(&c.encode()).is_err(), "incremental chunk needs a parent");
    }

    #[test]
    fn view_matches_owned_decode() {
        for kind in [ChunkKind::Full, ChunkKind::Incremental] {
            let c = sample_chunk(kind);
            let enc = c.encode();
            let v = ChunkView::decode(&enc).unwrap();
            assert_eq!(v.to_owned(), c);
            assert_eq!(v.payload_pages(), c.payload_pages());
            assert_eq!(v.zero_pages(), c.zero_pages());
            // Record payloads are readable in place, page-addressed.
            for (i, r) in v.records.iter().enumerate() {
                assert_eq!(r.span(), (c.records[i].start_page, c.records[i].page_count()));
                for p in 0..r.pages {
                    assert_eq!(
                        v.record_pages(i, p, 1),
                        &c.records[i].data
                            [p as usize * CHUNK_PAGE_SIZE..(p as usize + 1) * CHUNK_PAGE_SIZE]
                    );
                }
            }
        }
    }

    #[test]
    fn view_rejects_corruption_like_decode() {
        let enc = sample_chunk(ChunkKind::Incremental).encode();
        for pos in [0usize, 5, 20, 60, enc.len() / 2, enc.len() - 5] {
            let mut bad = enc.clone();
            bad[pos] ^= 0x40;
            assert!(ChunkView::decode(&bad).is_err(), "flip at {pos} undetected");
        }
        assert!(ChunkView::decode(&enc[..40]).is_err());
    }

    #[test]
    fn peek_lineage_reads_header_without_crc() {
        let c = sample_chunk(ChunkKind::Incremental);
        let mut enc = c.encode();
        let l = peek_lineage(&enc).unwrap();
        assert_eq!(
            l,
            ChunkLineage { kind: c.kind, rank: c.rank, generation: c.generation, parent: c.parent }
        );
        // Payload corruption is invisible to the peek (that is the
        // point: the CRC pass catches it later)...
        let last = enc.len() - 1;
        enc[last] ^= 0xFF;
        assert!(peek_lineage(&enc).is_ok());
        // ...but structural damage is not.
        enc[0] ^= 0xFF;
        assert!(peek_lineage(&enc).is_err(), "bad magic");
        enc[0] ^= 0xFF;
        enc[6] = 9;
        assert!(peek_lineage(&enc).is_err(), "bad kind byte");
        assert!(peek_lineage(&enc[..10]).is_err(), "short buffer");
    }

    #[test]
    fn empty_records_roundtrip() {
        let c = Chunk {
            kind: ChunkKind::Full,
            rank: 0,
            generation: 0,
            parent: None,
            capture_time_ns: 0,
            heap_pages: 0,
            mmap_blocks: vec![],
            zero_ranges: vec![],
            records: vec![],
            delta_records: vec![],
            dropped_pages: 0,
            app_state: vec![],
        };
        let d = Chunk::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
        assert_eq!(d.payload_bytes(), 0);
    }
}
