//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! line-delimited JSON for programmatic consumers.
//!
//! Both serializers are hand-rolled over integer fields with fixed key
//! order and iterate a [`TraceSnapshot`] (whose tracks and events are
//! already canonically sorted), so the output is byte-deterministic
//! for a given seed regardless of `ICKPT_BENCH_THREADS`.

use std::fmt::Write;

use ickpt_sim::{SimDuration, SimTime};

use crate::event::{CaptureKind, Event, Lane, RecoveryTier, TimedEvent, TrackKey};
use crate::log::TraceSnapshot;

/// Append a Chrome-trace timestamp: microseconds with nanosecond
/// precision, rendered with integer math (`f64` formatting would be a
/// determinism hazard across platforms).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Escape a string for embedding in a JSON string literal. Track and
/// group names are ASCII identifiers in practice; this keeps the
/// exporter correct if a caller names a group creatively.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_chrome_event(out: &mut String, pid: u32, key: &TrackKey, ev: &TimedEvent) {
    let _ = write!(out, "{{\"name\":\"{}\",\"cat\":\"ickpt\",", ev.event.name());
    if ev.dur.0 > 0 {
        out.push_str("\"ph\":\"X\",\"ts\":");
        write_us(out, ev.ts.0);
        out.push_str(",\"dur\":");
        write_us(out, ev.dur.0);
    } else {
        out.push_str("\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        write_us(out, ev.ts.0);
    }
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{},\"args\":", key.lane.tid());
    ev.event.write_args(out);
    out.push('}');
}

/// Serialize a snapshot in Chrome trace-event format. Open the result
/// in <https://ui.perfetto.dev> (or `chrome://tracing`): one process
/// per run group, one thread track per rank/device/drain lane, with
/// virtual nanoseconds on the time axis (shown as µs).
pub fn chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n ");
    };

    // Metadata: name each process (run group) and thread (lane), and
    // pin the display order to lane order.
    let mut groups_seen: Vec<u32> = Vec::new();
    for (key, _, _) in &snap.tracks {
        if !groups_seen.contains(&key.group) {
            groups_seen.push(key.group);
        }
    }
    groups_seen.sort_unstable();
    for group in &groups_seen {
        let pid = group + 1;
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\""
        );
        escape_into(&mut out, &snap.group_name(*group));
        out.push_str("\"}}");
    }
    for (sort_index, (key, _, _)) in snap.tracks.iter().enumerate() {
        let pid = key.group + 1;
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            key.lane.tid(),
            key.lane.label()
        );
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"sort_index\":{sort_index}}}}}",
            key.lane.tid()
        );
    }

    for (key, events, _) in &snap.tracks {
        let pid = key.group + 1;
        for ev in events {
            push_sep(&mut out, &mut first);
            write_chrome_event(&mut out, pid, key, ev);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Serialize a snapshot as JSONL: one event per line with fixed keys
/// `run`, `track`, `ts`, `dur`, `name`, `args` (virtual nanoseconds).
/// Tracks appear in canonical order; within a track, events are
/// time-ordered.
pub fn jsonl(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 * 1024);
    for (key, events, _) in &snap.tracks {
        let run = snap.group_name(key.group);
        for ev in events {
            out.push_str("{\"run\":\"");
            escape_into(&mut out, &run);
            out.push_str("\",\"track\":\"");
            out.push_str(&key.lane.label());
            let _ = write!(
                out,
                "\",\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":",
                ev.ts.0,
                ev.dur.0,
                ev.event.name()
            );
            ev.event.write_args(&mut out);
            out.push_str("}\n");
        }
    }
    out
}

/// One event read back from a JSONL export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Run group name.
    pub run: String,
    /// Track label (`rank0`, `dev:local:3`, `drain`, `run`).
    pub track: String,
    /// Virtual start, ns.
    pub ts: u64,
    /// Virtual extent, ns (0 = instant).
    pub dur: u64,
    /// Event-type token.
    pub name: String,
    /// Argument key/value pairs; values kept as raw JSON tokens.
    pub args: Vec<(String, String)>,
}

impl ParsedEvent {
    /// Raw value of argument `key`, if present.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Integer value of argument `key`, if present and numeric.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg(key)?.parse().ok()
    }

    /// Rebuild the typed `(lane, timed event)` this line serialized,
    /// so a JSONL export can be replayed into a
    /// [`MetricsPlane`](crate::MetricsPlane) or summary after the
    /// fact (`inspect --metrics`). Events whose payload holds a
    /// `&'static str` (`counter`, `slo_breach`) and unknown names
    /// return `None` — post-hoc metrics skip them.
    pub fn to_timed(&self) -> Option<(Lane, TimedEvent)> {
        let lane = Lane::parse(&self.track)?;
        let event = match self.name.as_str() {
            "run_start" => Event::RunStart { ranks: self.arg_u64("ranks")? as u32 },
            "iteration" => Event::IterationBoundary { iteration: self.arg_u64("iteration")? },
            "tracker_window" => Event::TrackerWindow {
                index: self.arg_u64("index")?,
                iws_pages: self.arg_u64("iws_pages")?,
                footprint_pages: self.arg_u64("footprint_pages")?,
                faults: self.arg_u64("faults")?,
            },
            "capture" => Event::Capture {
                kind: CaptureKind::parse(self.arg("kind")?)?,
                generation: self.arg_u64("generation")?,
                pages: self.arg_u64("pages")?,
                payload_bytes: self.arg_u64("payload_bytes")?,
            },
            "dedup_skip" => Event::DedupSkip {
                generation: self.arg_u64("generation")?,
                pages: self.arg_u64("pages")?,
                bytes_saved: self.arg_u64("bytes_saved")?,
            },
            "delta_encode" => Event::DeltaEncode {
                generation: self.arg_u64("generation")?,
                pages: self.arg_u64("pages")?,
                blocks: self.arg_u64("blocks")?,
                bytes_saved: self.arg_u64("bytes_saved")?,
            },
            "ckpt_stall" => Event::CheckpointStall { generation: self.arg_u64("generation")? },
            "commit" => Event::CommitBarrier { generation: self.arg_u64("generation")? },
            "chunk_put" => Event::ChunkPut {
                generation: self.arg_u64("generation")?,
                bytes: self.arg_u64("bytes")?,
                queue_wait_ns: self.arg_u64("queue_wait_ns")?,
                service_ns: self.arg_u64("service_ns")?,
            },
            "chunk_get" => Event::ChunkGet {
                generation: self.arg_u64("generation")?,
                bytes: self.arg_u64("bytes")?,
                queue_wait_ns: self.arg_u64("queue_wait_ns")?,
                service_ns: self.arg_u64("service_ns")?,
            },
            "manifest_put" => Event::ManifestPut {
                generation: self.arg_u64("generation")?,
                bytes: self.arg_u64("bytes")?,
            },
            "transfer" => Event::DeviceTransfer {
                bytes: self.arg_u64("bytes")?,
                queue_wait_ns: self.arg_u64("queue_wait_ns")?,
                service_ns: self.arg_u64("service_ns")?,
            },
            "publish" => Event::RedundancyPublish {
                generation: self.arg_u64("generation")?,
                bytes: self.arg_u64("bytes")?,
            },
            "reconstruct" => Event::RedundancyReconstruct {
                generation: self.arg_u64("generation")?,
                pieces: self.arg_u64("pieces")? as u32,
                bytes: self.arg_u64("bytes")?,
            },
            "drain_batch" => Event::DrainBatch {
                generations: self.arg_u64("generations")?,
                chunks: self.arg_u64("chunks")?,
                bytes: self.arg_u64("bytes")?,
            },
            "drain_depth" => Event::DrainQueueDepth { depth: self.arg_u64("depth")? },
            "drain_torn" => Event::DrainTorn {
                generations: self.arg_u64("generations")?,
                bytes: self.arg_u64("bytes")?,
            },
            "admit" => Event::AdmissionGrant {
                tenant: self.arg_u64("tenant")? as u32,
                bytes: self.arg_u64("bytes")?,
                chunks: self.arg_u64("chunks")?,
            },
            "reject" => Event::AdmissionReject {
                tenant: self.arg_u64("tenant")? as u32,
                bytes: self.arg_u64("bytes")?,
                retry_ns: self.arg_u64("retry_ns")?,
            },
            "tenant_stall" => Event::TenantStall {
                tenant: self.arg_u64("tenant")? as u32,
                bytes: self.arg_u64("bytes")?,
            },
            "recovery_read" => Event::RecoveryRead {
                tier: RecoveryTier::parse(self.arg("tier")?)?,
                bytes: self.arg_u64("bytes")?,
            },
            "recovery_plan" => Event::RecoveryPlan {
                rank: self.arg_u64("rank")? as u32,
                tier: RecoveryTier::parse(self.arg("tier")?)?,
                generation: self.arg_u64("generation")?,
            },
            "restore" => Event::Restore {
                generation: self.arg_u64("generation")?,
                chain: self.arg_u64("chain")?,
                pages: self.arg_u64("pages")?,
                bytes: self.arg_u64("bytes")?,
            },
            "failure" => Event::Failure {
                rank: self.arg_u64("rank")? as u32,
                node_loss: self.arg_u64("node_loss")? as u32,
            },
            _ => return None,
        };
        Some((lane, TimedEvent { ts: SimTime(self.ts), dur: SimDuration(self.dur), event }))
    }
}

/// Parse the exporter's own JSONL back into events — enough JSON for
/// `inspect --trace` and the test suite without a serde dependency.
/// Accepts exactly the flat shape [`jsonl`] writes.
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<ParsedEvent, String> {
    let mut p = Cursor { b: line.as_bytes(), i: 0 };
    p.expect(b'{')?;
    let mut run = String::new();
    let mut track = String::new();
    let mut ts = 0u64;
    let mut dur = 0u64;
    let mut name = String::new();
    let mut args = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "run" => run = p.string()?,
            "track" => track = p.string()?,
            "ts" => ts = p.integer()?,
            "dur" => dur = p.integer()?,
            "name" => name = p.string()?,
            "args" => {
                p.expect(b'{')?;
                if p.peek() == Some(b'}') {
                    p.i += 1;
                } else {
                    loop {
                        let k = p.string()?;
                        p.expect(b':')?;
                        let v = p.raw_value()?;
                        args.push((k, v));
                        match p.next()? {
                            b',' => continue,
                            b'}' => break,
                            c => return Err(format!("unexpected byte {:?} in args", c as char)),
                        }
                    }
                }
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(format!("unexpected byte {:?}", c as char)),
        }
    }
    Ok(ParsedEvent { run, track, ts, dur, name, args })
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let c = self.peek().ok_or("unexpected end of line")?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got != want {
            return Err(format!("expected {:?}, got {:?}", want as char, got as char));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(s),
                b'\\' => match self.next()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    c => return Err(format!("unsupported escape \\{}", c as char)),
                },
                c => s.push(c as char),
            }
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected integer".to_string());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    /// A primitive value (string or integer) as its raw token text.
    fn raw_value(&mut self) -> Result<String, String> {
        if self.peek() == Some(b'"') {
            self.string()
        } else {
            Ok(self.integer()?.to_string())
        }
    }
}

/// Check `text` is well-formed JSON (objects, arrays, strings,
/// numbers, literals). Used by the test suite to validate the Chrome
/// export against the trace-event schema's base grammar.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut v = Validator { b: text.as_bytes(), i: 0 };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.i != v.b.len() {
        return Err(format!("trailing bytes at offset {}", v.i));
    }
    Ok(())
}

struct Validator<'a> {
    b: &'a [u8],
    i: usize,
}

impl Validator<'_> {
    fn skip_ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at offset {}", self.i))
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            _ => self.err("expected value"),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err("bad literal")
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.err("expected ':'");
            }
            self.i += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.peek() != Some(b'"') {
            return self.err("expected string");
        }
        self.i += 1;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 2;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let frac = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let exp = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp {
                return self.err("expected exponent digits");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeviceKind, Event, Lane};
    use crate::log::{FlightRecorder, Recorder};
    use ickpt_sim::{SimDuration, SimTime};

    fn sample_snapshot() -> TraceSnapshot {
        let fr = FlightRecorder::new(128);
        fr.name_group(0, "demo");
        let rec = Recorder::new(fr.clone());
        rec.emit(Lane::Run, SimTime(0), Event::RunStart { ranks: 2 });
        rec.emit_span(
            Lane::Rank(0),
            SimTime(1_500),
            SimDuration(2_250),
            Event::Capture {
                kind: crate::event::CaptureKind::Full,
                generation: 0,
                pages: 7,
                payload_bytes: 4096,
            },
        );
        rec.emit(
            Lane::Device(DeviceKind::Local, 0),
            SimTime(2_000),
            Event::DeviceTransfer { bytes: 4096, queue_wait_ns: 0, service_ns: 900 },
        );
        rec.emit(Lane::Drain, SimTime(9_000), Event::DrainQueueDepth { depth: 1 });
        fr.snapshot()
    }

    #[test]
    fn chrome_trace_is_well_formed_and_stable() {
        let snap = sample_snapshot();
        let a = chrome_trace(&snap);
        let b = chrome_trace(&snap);
        assert_eq!(a, b);
        validate_json(&a).expect("chrome export must be valid JSON");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("\"dur\":2.250"));
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"demo\""));
    }

    #[test]
    fn jsonl_roundtrips_through_parse() {
        let snap = sample_snapshot();
        let text = jsonl(&snap);
        let events = parse_jsonl(&text).expect("parse own export");
        assert_eq!(events.len(), snap.event_count());
        let cap = events.iter().find(|e| e.name == "capture").unwrap();
        assert_eq!(cap.run, "demo");
        assert_eq!(cap.track, "rank0");
        assert_eq!(cap.ts, 1_500);
        assert_eq!(cap.dur, 2_250);
        assert!(cap.args.iter().any(|(k, v)| k == "payload_bytes" && v == "4096"));
        // Every line is itself valid JSON.
        for line in text.lines() {
            validate_json(line).expect("jsonl line must be valid JSON");
        }
    }

    #[test]
    fn per_track_timestamps_are_sorted() {
        let fr = FlightRecorder::new(128);
        let rec = Recorder::new(fr.clone());
        // Inserted out of order on the same track.
        rec.emit(Lane::Rank(0), SimTime(30), Event::IterationBoundary { iteration: 2 });
        rec.emit(Lane::Rank(0), SimTime(10), Event::IterationBoundary { iteration: 0 });
        rec.emit(Lane::Rank(0), SimTime(20), Event::IterationBoundary { iteration: 1 });
        let events = parse_jsonl(&jsonl(&fr.snapshot())).unwrap();
        let ts: Vec<u64> = events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn parsed_events_rebuild_typed_events() {
        let fr = FlightRecorder::new(128);
        let rec = Recorder::new(fr.clone());
        let originals: Vec<(Lane, TimedEvent)> = vec![
            (
                Lane::Rank(2),
                TimedEvent {
                    ts: SimTime(10),
                    dur: SimDuration(5),
                    event: Event::Capture {
                        kind: crate::event::CaptureKind::Incremental,
                        generation: 3,
                        pages: 9,
                        payload_bytes: 4096,
                    },
                },
            ),
            (
                Lane::Device(DeviceKind::Array, 1),
                TimedEvent {
                    ts: SimTime(20),
                    dur: SimDuration::ZERO,
                    event: Event::DeviceTransfer { bytes: 7, queue_wait_ns: 1, service_ns: 2 },
                },
            ),
            (
                Lane::Drain,
                TimedEvent {
                    ts: SimTime(30),
                    dur: SimDuration::ZERO,
                    event: Event::DrainTorn { generations: 2, bytes: 555 },
                },
            ),
            (
                Lane::Tenant(4),
                TimedEvent {
                    ts: SimTime(40),
                    dur: SimDuration(9),
                    event: Event::TenantStall { tenant: 4, bytes: 64 },
                },
            ),
            (
                Lane::Run,
                TimedEvent {
                    ts: SimTime(50),
                    dur: SimDuration::ZERO,
                    event: Event::RecoveryPlan {
                        rank: 1,
                        tier: crate::event::RecoveryTier::Durable,
                        generation: 2,
                    },
                },
            ),
        ];
        for (lane, ev) in &originals {
            rec.emit_span(*lane, ev.ts, ev.dur, ev.event);
        }
        let parsed = parse_jsonl(&jsonl(&fr.snapshot())).unwrap();
        let mut rebuilt: Vec<(Lane, TimedEvent)> =
            parsed.iter().map(|p| p.to_timed().expect("reconstructible")).collect();
        rebuilt.sort_by_key(|(_, ev)| ev.ts);
        let mut want = originals;
        want.sort_by_key(|(_, ev)| ev.ts);
        assert_eq!(rebuilt, want);
        // Static-str payloads are deliberately not reconstructible.
        rec.emit(Lane::Run, SimTime(60), Event::Counter { name: "x", value: 1 });
        let parsed = parse_jsonl(&jsonl(&fr.snapshot())).unwrap();
        let counter = parsed.iter().find(|p| p.name == "counter").unwrap();
        assert!(counter.to_timed().is_none());
    }

    #[test]
    fn lane_labels_roundtrip() {
        for lane in [
            Lane::Run,
            Lane::Rank(0),
            Lane::Rank(16383),
            Lane::Device(DeviceKind::Local, 3),
            Lane::Device(DeviceKind::Storage, 0),
            Lane::Tenant(63),
            Lane::Drain,
        ] {
            assert_eq!(Lane::parse(&lane.label()), Some(lane));
        }
        assert_eq!(Lane::parse("dev:bogus:0"), None);
        assert_eq!(Lane::parse("rankx"), None);
        assert_eq!(Lane::parse(""), None);
    }

    #[test]
    fn validate_json_rejects_garbage() {
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("{\"a\":1}").is_ok());
    }
}
