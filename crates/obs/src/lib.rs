//! `ickpt-obs`: a deterministic flight recorder keyed to the virtual
//! clock.
//!
//! The simulator's feasibility story is about *where virtual time
//! goes* — dirty-page bursts, storage vs interconnect contention,
//! capture stall, drain batches racing the next checkpoint, tiered
//! recovery walking local → partner → durable. End-of-run aggregates
//! can't show any of that in time order. This crate records typed
//! [`Event`]s on per-rank / per-device / drain tracks, bounded by
//! ring buffers, and exports them as Chrome trace-event JSON (open in
//! Perfetto) or JSONL — byte-deterministic for a fixed seed at any
//! `ICKPT_BENCH_THREADS` setting, because every track is sorted by
//! virtual time with a total serialized-form tiebreak.
//!
//! Recording is *zero cost when disabled*: configs default to
//! [`Recorder::disabled`], whose emit methods are an inlined
//! test-and-return (see `benches/micro.rs` group `obs` for the
//! measured delta), and the [`ObsSink`] trait's [`NullSink`] compiles
//! away entirely for statically-disabled call sites.

pub mod event;
pub mod export;
pub mod health;
pub mod log;
pub mod metrics;
pub mod summary;

pub use event::{CaptureKind, DeviceKind, Event, Lane, RecoveryTier, TimedEvent, TrackKey};
pub use export::{chrome_trace, jsonl, parse_jsonl, validate_json, ParsedEvent};
pub use health::{HealthMonitor, SloBreachRecord, SloCheck, SloRule, WindowField, WindowHist};
pub use log::{
    Counter, EventLog, FlightRecorder, NullSink, ObsSink, Recorder, Span, TraceSnapshot,
    DEFAULT_TRACK_CAPACITY, MIN_TRACK_CAPACITY, TRACK_EVENT_BUDGET,
};
pub use metrics::{
    bucket_bound, bucket_of, LogHistogram, MetaStats, MetricLabel, MetricsConfig, MetricsPlane,
    MetricsView, WindowAccum, HIST_BUCKETS, METRICS_ENV,
};
pub use summary::{
    DeviceStats, ObsSummary, RankStats, TenantStats, TierRecoveryStats, SUMMARY_REDUCE_ARITY,
};
