//! SLO health monitoring over the metrics plane.
//!
//! A [`HealthMonitor`] holds declarative [`SloRule`]s — "window p99
//! stall below 150 ms", "drain queue never deeper than 16", "effective
//! IB must not exceed dirty IB" — and evaluates every populated window
//! of a [`MetricsView`] against them. Breaches come back as typed
//! [`SloBreachRecord`]s and can be replayed into the flight recorder
//! as [`Event::SloBreach`] instants on the run lane, so a trace shows
//! *when* a run left its envelope right next to the events that put it
//! there. Evaluation is a pure function of the view (windows ascending,
//! rules in declaration order), so its output — and the breach events'
//! serialized bytes — is deterministic.

use crate::event::{Event, Lane};
use crate::log::Recorder;
use crate::metrics::{MetricsView, WindowAccum};
use ickpt_sim::SimTime;

/// Which per-window histogram a quantile rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowHist {
    /// Rank checkpoint-stall span durations.
    Stall,
    /// Tenant request-blocked span durations.
    TenantStall,
}

impl WindowHist {
    fn get<'a>(&self, w: &'a WindowAccum) -> &'a crate::metrics::LogHistogram {
        match self {
            WindowHist::Stall => &w.stall,
            WindowHist::TenantStall => &w.tenant_stall,
        }
    }
}

/// Which scalar field of a [`WindowAccum`] a threshold/ratio rule
/// reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowField {
    /// Encoded capture payload bytes (effective IB).
    EffectiveIbBytes,
    /// Dirty-bit-accounted bytes (payload + content-layer savings).
    DirtyIbBytes,
    /// Bytes drained to the durable array.
    DrainBytes,
    /// Deepest drain queue observed.
    DrainDepthMax,
    /// Admission rejections.
    Rejects,
    /// Rank stall virtual ns.
    StallNs,
    /// Device busy virtual ns (summed over devices).
    DeviceBusyNs,
}

impl WindowField {
    /// Read the field out of one window.
    pub fn get(&self, w: &WindowAccum) -> u64 {
        match self {
            WindowField::EffectiveIbBytes => w.effective_ib_bytes,
            WindowField::DirtyIbBytes => w.dirty_ib_bytes,
            WindowField::DrainBytes => w.drain_bytes,
            WindowField::DrainDepthMax => w.drain_depth_max,
            WindowField::Rejects => w.rejects,
            WindowField::StallNs => w.stall_ns,
            WindowField::DeviceBusyNs => w.device_busy_ns,
        }
    }
}

/// The predicate side of a rule. All comparisons are integer-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloCheck {
    /// Breach when the window's nearest-rank quantile of `hist` at
    /// `pct` percent reaches `limit_ns` (rule reads "pctile < limit").
    /// Windows with no samples pass vacuously.
    QuantileMaxNs {
        /// Histogram to read.
        hist: WindowHist,
        /// Percentile (1..=100).
        pct: u8,
        /// Exclusive upper limit, virtual ns.
        limit_ns: u64,
    },
    /// Breach when the window's `field` reaches `limit` (rule reads
    /// "field < limit").
    FieldMax {
        /// Field to read.
        field: WindowField,
        /// Exclusive upper limit.
        limit: u64,
    },
    /// Breach when `num / den > limit_milli / 1000` (integer
    /// cross-multiplied; a `limit_milli` of 1000 allows ratios up to
    /// and including 1.0). Windows with `den == 0` pass vacuously.
    RatioMaxMilli {
        /// Numerator field.
        num: WindowField,
        /// Denominator field.
        den: WindowField,
        /// Inclusive limit, in thousandths.
        limit_milli: u64,
    },
}

/// A named SLO rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloRule {
    /// Stable rule name (lands in [`Event::SloBreach`], so static).
    pub name: &'static str,
    /// What to check each window.
    pub check: SloCheck,
}

/// One window that violated one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBreachRecord {
    /// The violated rule's name.
    pub rule: &'static str,
    /// Window index (`ts / window_ns`).
    pub window: u64,
    /// The measured value (quantile ns, field value, or milli-ratio).
    pub value: u64,
    /// The rule's limit in the same unit.
    pub limit: u64,
}

/// Evaluates a rule set against every populated window of a view.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rules: Vec<SloRule>,
}

impl HealthMonitor {
    /// A monitor with a custom rule set.
    pub fn new(rules: Vec<SloRule>) -> Self {
        Self { rules }
    }

    /// The default envelope:
    ///
    /// * `p99_stall` — window p99 rank stall below 150 ms;
    /// * `p99_tenant_stall` — window p99 tenant stall below 750 ms;
    /// * `drain_depth` — drain queue never 16 generations deep;
    /// * `content_amplification` — effective IB ≤ dirty IB (the
    ///   content layer must never *add* bytes; equality is the
    ///   dedup-off baseline and passes).
    pub fn standard() -> Self {
        Self::new(vec![
            SloRule {
                name: "p99_stall",
                check: SloCheck::QuantileMaxNs {
                    hist: WindowHist::Stall,
                    pct: 99,
                    limit_ns: 150_000_000,
                },
            },
            SloRule {
                name: "p99_tenant_stall",
                check: SloCheck::QuantileMaxNs {
                    hist: WindowHist::TenantStall,
                    pct: 99,
                    limit_ns: 750_000_000,
                },
            },
            SloRule {
                name: "drain_depth",
                check: SloCheck::FieldMax { field: WindowField::DrainDepthMax, limit: 16 },
            },
            SloRule {
                name: "content_amplification",
                check: SloCheck::RatioMaxMilli {
                    num: WindowField::EffectiveIbBytes,
                    den: WindowField::DirtyIbBytes,
                    limit_milli: 1000,
                },
            },
        ])
    }

    /// The rule set, declaration order.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluate every populated window against every rule. Breaches
    /// come back windows-ascending, rules in declaration order within
    /// a window.
    pub fn evaluate(&self, view: &MetricsView) -> Vec<SloBreachRecord> {
        let mut out = Vec::new();
        for (idx, w) in view.windows() {
            for rule in &self.rules {
                if let Some((value, limit)) = breach_value(&rule.check, w) {
                    out.push(SloBreachRecord { rule: rule.name, window: idx, value, limit });
                }
            }
        }
        out
    }

    /// Evaluate and replay each breach as an [`Event::SloBreach`]
    /// instant on `rec`'s run lane, stamped at its window's end — so
    /// breaches land in the trace (and, via the recorder tee, in the
    /// metrics plane's `slo_breaches` counter). Returns the records.
    pub fn evaluate_into(&self, view: &MetricsView, rec: &Recorder) -> Vec<SloBreachRecord> {
        let breaches = self.evaluate(view);
        for b in &breaches {
            let end_ns = (b.window + 1).saturating_mul(view.window_ns());
            rec.emit(
                Lane::Run,
                SimTime(end_ns),
                Event::SloBreach { rule: b.rule, window: b.window, value: b.value, limit: b.limit },
            );
        }
        breaches
    }
}

/// `Some((measured, limit))` when `check` is violated on `w`.
fn breach_value(check: &SloCheck, w: &WindowAccum) -> Option<(u64, u64)> {
    match *check {
        SloCheck::QuantileMaxNs { hist, pct, limit_ns } => {
            let v = hist.get(w).quantile(pct)?;
            (v >= limit_ns).then_some((v, limit_ns))
        }
        SloCheck::FieldMax { field, limit } => {
            let v = field.get(w);
            (v >= limit).then_some((v, limit))
        }
        SloCheck::RatioMaxMilli { num, den, limit_milli } => {
            let n = num.get(w);
            let d = den.get(w);
            if d == 0 {
                return None;
            }
            // n/d > limit/1000  ⟺  n·1000 > limit·d, in u128.
            (n as u128 * 1000 > limit_milli as u128 * d as u128)
                .then(|| (((n as u128 * 1000) / d as u128) as u64, limit_milli))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CaptureKind, TimedEvent};
    use crate::log::FlightRecorder;
    use crate::metrics::MetricsPlane;
    use ickpt_sim::SimDuration;

    fn stall(ts_ns: u64, dur_ns: u64) -> (Lane, TimedEvent) {
        (
            Lane::Rank(0),
            TimedEvent {
                ts: SimTime(ts_ns),
                dur: SimDuration(dur_ns),
                event: Event::CheckpointStall { generation: 1 },
            },
        )
    }

    #[test]
    fn quantile_rule_fires_only_on_bad_windows() {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        // Window 0: 1 ms stalls (fine). Window 2: 400 ms stall (bad).
        for i in 0..5u64 {
            let (lane, ev) = stall(i * 100_000_000, 1_000_000);
            plane.ingest(0, lane, &ev);
        }
        let (lane, ev) = stall(2_100_000_000, 400_000_000);
        plane.ingest(0, lane, &ev);
        let view = plane.view(0).unwrap();
        let monitor = HealthMonitor::new(vec![SloRule {
            name: "p99_stall",
            check: SloCheck::QuantileMaxNs {
                hist: WindowHist::Stall,
                pct: 99,
                limit_ns: 150_000_000,
            },
        }]);
        let breaches = monitor.evaluate(&view);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].window, 2);
        assert_eq!(breaches[0].rule, "p99_stall");
        assert!(breaches[0].value >= 150_000_000);
    }

    #[test]
    fn ratio_rule_passes_at_equality_and_skips_empty_windows() {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        // A capture with no dedup savings: effective == dirty.
        plane.ingest(
            0,
            Lane::Rank(0),
            &TimedEvent {
                ts: SimTime(0),
                dur: SimDuration::ZERO,
                event: Event::Capture {
                    kind: CaptureKind::Incremental,
                    generation: 1,
                    pages: 4,
                    payload_bytes: 4096,
                },
            },
        );
        let view = plane.view(0).unwrap();
        assert!(HealthMonitor::standard().evaluate(&view).is_empty());
    }

    #[test]
    fn breaches_replay_into_the_recorder_and_count_themselves() {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        let fr = FlightRecorder::new(64);
        let rec = Recorder::new(fr.clone()).with_metrics(plane.clone());
        rec.emit_span(
            Lane::Rank(0),
            SimTime(500_000_000),
            SimDuration(200_000_000),
            Event::CheckpointStall { generation: 3 },
        );
        let view = plane.view(0).unwrap();
        let breaches = HealthMonitor::standard().evaluate_into(&view, &rec);
        assert_eq!(breaches.len(), 1);
        let snap = fr.snapshot();
        let run_track = snap.tracks.iter().find(|(k, _, _)| k.lane == Lane::Run).expect("run lane");
        assert!(run_track
            .1
            .iter()
            .any(|ev| matches!(ev.event, Event::SloBreach { rule: "p99_stall", window: 0, .. })));
        // The breach event itself was teed back into the plane.
        assert_eq!(plane.view(0).unwrap().counter("slo_breaches"), 1);
    }
}
