//! Derived aggregates over a trace snapshot: the numbers a human
//! wants before opening the full timeline — device utilization,
//! per-rank stall, drain-queue depth distribution, and where recovery
//! latency went. All integer arithmetic; rendering is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write;

use ickpt_sim::tree_reduce;

use crate::event::{Event, Lane, RecoveryTier, TimedEvent, TrackKey};
use crate::log::TraceSnapshot;

/// Fan-in of the summary reduction — the same arity the cluster's
/// report tree-reduce uses, so a 16k-track snapshot folds in 3 levels.
pub const SUMMARY_REDUCE_ARITY: usize = 32;

/// One device lane's aggregate activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStats {
    /// Track label (`dev:local:3`).
    pub label: String,
    /// Transfers serviced.
    pub transfers: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total service (busy) time, virtual ns.
    pub busy_ns: u64,
    /// Total time transfers waited in queue, virtual ns.
    pub queue_wait_ns: u64,
}

/// One rank lane's aggregate activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankStats {
    /// Rank id.
    pub rank: u32,
    /// Virtual ns the rank was blocked on in-flight checkpoints.
    pub stall_ns: u64,
    /// Checkpoint captures taken.
    pub captures: u64,
    /// Pages stored across captures.
    pub capture_pages: u64,
    /// Encoded bytes across captures.
    pub capture_bytes: u64,
    /// Iteration boundaries crossed.
    pub iterations: u64,
    /// Silent same-value pages the content layer dropped.
    pub dedup_pages: u64,
    /// Bytes those drops kept off the storage path.
    pub dedup_bytes_saved: u64,
    /// Pages shipped as sub-page delta records.
    pub delta_pages: u64,
    /// Bytes delta encoding saved net of stored blocks and headers.
    pub delta_bytes_saved: u64,
}

/// One service tenant's aggregate activity (multi-tenant runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id within the service.
    pub tenant: u32,
    /// Checkpoint requests that completed (stall spans observed).
    pub checkpoints: u64,
    /// Admission grants.
    pub admitted: u64,
    /// Admission rejections (deferred requests).
    pub rejections: u64,
    /// Payload bytes admitted into the service.
    pub admitted_bytes: u64,
    /// Total virtual ns the tenant was blocked on its requests.
    pub stall_ns: u64,
    /// Largest single blocked interval, virtual ns.
    pub stall_max_ns: u64,
}

/// Aggregate recovery activity for one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierRecoveryStats {
    /// Recovery plans that chose this tier.
    pub plans: u64,
    /// Read operations charged to this tier.
    pub reads: u64,
    /// Bytes read from this tier.
    pub bytes: u64,
    /// Virtual ns of read service charged to this tier.
    pub read_ns: u64,
}

/// The digest merged into `RunReport` and rendered by `inspect`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSummary {
    /// Latest instant covered by any event (ts + dur), virtual ns.
    pub horizon_ns: u64,
    /// Events retained across all tracks.
    pub events: u64,
    /// Events evicted by full rings.
    pub dropped: u64,
    /// Per-device aggregates, label order.
    pub devices: Vec<DeviceStats>,
    /// Per-rank aggregates, rank order.
    pub ranks: Vec<RankStats>,
    /// Per-tenant aggregates, tenant order (multi-tenant service runs).
    pub tenants: Vec<TenantStats>,
    /// Drain batches flushed.
    pub drain_batches: u64,
    /// Bytes drained to the durable array.
    pub drain_bytes: u64,
    /// Virtual ns from commit to drain completion, summed over batches.
    pub drain_latency_ns: u64,
    /// Generations whose in-flight drain a failure tore (rolled back
    /// and re-drained after recovery).
    pub torn_generations: u64,
    /// Bytes of partially-written drain batches discarded by rollback.
    pub torn_bytes: u64,
    /// `(queue depth, samples observed at that depth)`, depth order.
    pub drain_depth_histogram: Vec<(u64, u64)>,
    /// Health-monitor SLO breaches recorded on the run lane.
    pub slo_breaches: u64,
    /// Recovery activity per tier: (tier, stats), tier order.
    pub recovery: Vec<(RecoveryTier, TierRecoveryStats)>,
    /// Restore spans observed: (count, total ns, pages, bytes).
    pub restores: u64,
    /// Total virtual ns spent inside restore spans.
    pub restore_ns: u64,
}

impl ObsSummary {
    /// Aggregate `snap` (all groups combined; per-run recorders hold
    /// one group, multi-run recorders merge by lane label). Folds one
    /// partial summary per track through [`tree_reduce`] at
    /// [`SUMMARY_REDUCE_ARITY`] — the same reduction shape the cluster
    /// uses for rank reports, so summarizing a 16k-rank trace never
    /// materializes one flat accumulation pass over every track.
    pub fn from_snapshot(snap: &TraceSnapshot) -> Self {
        let parts: Vec<ObsSummary> = snap
            .tracks
            .iter()
            .map(|(key, events, dropped)| Self::from_track(key, events, *dropped))
            .collect();
        tree_reduce(parts, SUMMARY_REDUCE_ARITY, |acc, part| acc.merge(&part)).unwrap_or_default()
    }

    /// Partial summary of one track. Merging every track's partial
    /// (in any grouping — [`ObsSummary::merge`] is associative and
    /// commutative) reproduces the whole-snapshot summary.
    fn from_track(key: &TrackKey, events: &[TimedEvent], dropped: u64) -> Self {
        let mut devices: BTreeMap<String, DeviceStats> = BTreeMap::new();
        let mut ranks: BTreeMap<u32, RankStats> = BTreeMap::new();
        let mut tenants: BTreeMap<u32, TenantStats> = BTreeMap::new();
        let mut depth_hist: BTreeMap<u64, u64> = BTreeMap::new();
        let mut recovery: BTreeMap<RecoveryTier, TierRecoveryStats> = BTreeMap::new();
        let mut s = ObsSummary { dropped, ..ObsSummary::default() };

        {
            for ev in events {
                s.events += 1;
                s.horizon_ns = s.horizon_ns.max(ev.ts.0 + ev.dur.0);
                match ev.event {
                    Event::DeviceTransfer { bytes, queue_wait_ns, service_ns } => {
                        let d = devices.entry(key.lane.label()).or_insert_with(|| DeviceStats {
                            label: key.lane.label(),
                            transfers: 0,
                            bytes: 0,
                            busy_ns: 0,
                            queue_wait_ns: 0,
                        });
                        d.transfers += 1;
                        d.bytes += bytes;
                        d.busy_ns += service_ns;
                        d.queue_wait_ns += queue_wait_ns;
                    }
                    Event::CheckpointStall { .. } => {
                        if let Lane::Rank(r) = key.lane {
                            rank_entry(&mut ranks, r).stall_ns += ev.dur.0;
                        }
                    }
                    Event::Capture { pages, payload_bytes, .. } => {
                        if let Lane::Rank(r) = key.lane {
                            let e = rank_entry(&mut ranks, r);
                            e.captures += 1;
                            e.capture_pages += pages;
                            e.capture_bytes += payload_bytes;
                        }
                    }
                    Event::IterationBoundary { .. } => {
                        if let Lane::Rank(r) = key.lane {
                            rank_entry(&mut ranks, r).iterations += 1;
                        }
                    }
                    Event::DedupSkip { pages, bytes_saved, .. } => {
                        if let Lane::Rank(r) = key.lane {
                            let e = rank_entry(&mut ranks, r);
                            e.dedup_pages += pages;
                            e.dedup_bytes_saved += bytes_saved;
                        }
                    }
                    Event::DeltaEncode { pages, bytes_saved, .. } => {
                        if let Lane::Rank(r) = key.lane {
                            let e = rank_entry(&mut ranks, r);
                            e.delta_pages += pages;
                            e.delta_bytes_saved += bytes_saved;
                        }
                    }
                    Event::DrainBatch { bytes, .. } => {
                        s.drain_batches += 1;
                        s.drain_bytes += bytes;
                        s.drain_latency_ns += ev.dur.0;
                    }
                    Event::DrainQueueDepth { depth } => {
                        *depth_hist.entry(depth).or_insert(0) += 1;
                    }
                    Event::DrainTorn { generations, bytes } => {
                        s.torn_generations += generations;
                        s.torn_bytes += bytes;
                    }
                    Event::SloBreach { .. } => {
                        s.slo_breaches += 1;
                    }
                    Event::AdmissionGrant { tenant, bytes, .. } => {
                        let e = tenant_entry(&mut tenants, tenant);
                        e.admitted += 1;
                        e.admitted_bytes += bytes;
                    }
                    Event::AdmissionReject { tenant, .. } => {
                        tenant_entry(&mut tenants, tenant).rejections += 1;
                    }
                    Event::TenantStall { tenant, .. } => {
                        let e = tenant_entry(&mut tenants, tenant);
                        e.checkpoints += 1;
                        e.stall_ns += ev.dur.0;
                        e.stall_max_ns = e.stall_max_ns.max(ev.dur.0);
                    }
                    Event::RecoveryRead { tier, bytes } => {
                        let e = recovery.entry(tier).or_default();
                        e.reads += 1;
                        e.bytes += bytes;
                        e.read_ns += ev.dur.0;
                    }
                    Event::RecoveryPlan { tier, .. } => {
                        recovery.entry(tier).or_default().plans += 1;
                    }
                    Event::Restore { .. } => {
                        s.restores += 1;
                        s.restore_ns += ev.dur.0;
                    }
                    _ => {}
                }
            }
        }

        s.devices = devices.into_values().collect();
        s.ranks = ranks.into_values().collect();
        s.tenants = tenants.into_values().collect();
        s.drain_depth_histogram = depth_hist.into_iter().collect();
        s.recovery = recovery.into_iter().collect();
        s
    }

    /// Fold `other` into `self`. Keyed sections merge by key (device
    /// label, rank id, queue depth, recovery tier), scalars add, and
    /// the horizon takes the max — associative and commutative, so any
    /// reduction tree over any partition of the tracks yields the same
    /// summary.
    pub fn merge(&mut self, other: &ObsSummary) {
        self.horizon_ns = self.horizon_ns.max(other.horizon_ns);
        self.events += other.events;
        self.dropped += other.dropped;
        self.drain_batches += other.drain_batches;
        self.drain_bytes += other.drain_bytes;
        self.drain_latency_ns += other.drain_latency_ns;
        self.torn_generations += other.torn_generations;
        self.torn_bytes += other.torn_bytes;
        self.slo_breaches += other.slo_breaches;
        self.restores += other.restores;
        self.restore_ns += other.restore_ns;

        let mut devices: BTreeMap<String, DeviceStats> =
            std::mem::take(&mut self.devices).into_iter().map(|d| (d.label.clone(), d)).collect();
        for o in &other.devices {
            match devices.get_mut(&o.label) {
                Some(d) => {
                    d.transfers += o.transfers;
                    d.bytes += o.bytes;
                    d.busy_ns += o.busy_ns;
                    d.queue_wait_ns += o.queue_wait_ns;
                }
                None => {
                    devices.insert(o.label.clone(), o.clone());
                }
            }
        }
        self.devices = devices.into_values().collect();

        let mut ranks: BTreeMap<u32, RankStats> =
            std::mem::take(&mut self.ranks).into_iter().map(|r| (r.rank, r)).collect();
        for o in &other.ranks {
            match ranks.get_mut(&o.rank) {
                Some(r) => {
                    r.stall_ns += o.stall_ns;
                    r.captures += o.captures;
                    r.capture_pages += o.capture_pages;
                    r.capture_bytes += o.capture_bytes;
                    r.iterations += o.iterations;
                    r.dedup_pages += o.dedup_pages;
                    r.dedup_bytes_saved += o.dedup_bytes_saved;
                    r.delta_pages += o.delta_pages;
                    r.delta_bytes_saved += o.delta_bytes_saved;
                }
                None => {
                    ranks.insert(o.rank, o.clone());
                }
            }
        }
        self.ranks = ranks.into_values().collect();

        let mut tenants: BTreeMap<u32, TenantStats> =
            std::mem::take(&mut self.tenants).into_iter().map(|t| (t.tenant, t)).collect();
        for o in &other.tenants {
            match tenants.get_mut(&o.tenant) {
                Some(t) => {
                    t.checkpoints += o.checkpoints;
                    t.admitted += o.admitted;
                    t.rejections += o.rejections;
                    t.admitted_bytes += o.admitted_bytes;
                    t.stall_ns += o.stall_ns;
                    t.stall_max_ns = t.stall_max_ns.max(o.stall_max_ns);
                }
                None => {
                    tenants.insert(o.tenant, *o);
                }
            }
        }
        self.tenants = tenants.into_values().collect();

        let mut hist: BTreeMap<u64, u64> =
            std::mem::take(&mut self.drain_depth_histogram).into_iter().collect();
        for &(depth, count) in &other.drain_depth_histogram {
            *hist.entry(depth).or_insert(0) += count;
        }
        self.drain_depth_histogram = hist.into_iter().collect();

        let mut recovery: BTreeMap<RecoveryTier, TierRecoveryStats> =
            std::mem::take(&mut self.recovery).into_iter().collect();
        for &(tier, o) in &other.recovery {
            let t = recovery.entry(tier).or_default();
            t.plans += o.plans;
            t.reads += o.reads;
            t.bytes += o.bytes;
            t.read_ns += o.read_ns;
        }
        self.recovery = recovery.into_iter().collect();
    }

    /// Utilization of `dev` over the observed horizon, in basis
    /// points (0..=10000); `None` with an empty horizon.
    pub fn utilization_bp(&self, dev: &DeviceStats) -> Option<u64> {
        if self.horizon_ns == 0 {
            return None;
        }
        Some((dev.busy_ns as u128 * 10_000 / self.horizon_ns as u128).min(10_000) as u64)
    }

    /// Human-readable digest (deterministic; integer math only).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} events over {} virtual s{}",
            self.events,
            self.horizon_ns / 1_000_000_000,
            if self.dropped > 0 {
                format!(" ({} dropped by full rings)", self.dropped)
            } else {
                String::new()
            }
        );
        if !self.devices.is_empty() {
            let _ = writeln!(out, "  device utilization:");
            for d in &self.devices {
                let bp = self.utilization_bp(d).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "    {:<16} {:>4}.{:02}%  {} transfers, {} bytes, queue-wait {} ms",
                    d.label,
                    bp / 100,
                    bp % 100,
                    d.transfers,
                    d.bytes,
                    d.queue_wait_ns / 1_000_000
                );
            }
        }
        if !self.ranks.is_empty() {
            let _ = writeln!(out, "  rank stalls:");
            for r in &self.ranks {
                let _ = writeln!(
                    out,
                    "    rank{:<4} stall {:>8} ms  ({} captures, {} pages, {} bytes)",
                    r.rank,
                    r.stall_ns / 1_000_000,
                    r.captures,
                    r.capture_pages,
                    r.capture_bytes
                );
                if r.dedup_pages > 0 || r.delta_pages > 0 {
                    let _ = writeln!(
                        out,
                        "    rank{:<4} content: {} silent-same pages dropped ({} bytes), {} delta pages ({} bytes saved)",
                        r.rank,
                        r.dedup_pages,
                        r.dedup_bytes_saved,
                        r.delta_pages,
                        r.delta_bytes_saved
                    );
                }
            }
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "  tenant service:");
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "    tenant{:<4} {} ckpts, {} admitted ({} bytes), {} rejected, stall {} ms (max {} ms)",
                    t.tenant,
                    t.checkpoints,
                    t.admitted,
                    t.admitted_bytes,
                    t.rejections,
                    t.stall_ns / 1_000_000,
                    t.stall_max_ns / 1_000_000
                );
            }
        }
        if self.drain_batches > 0
            || self.torn_generations > 0
            || !self.drain_depth_histogram.is_empty()
        {
            let _ = writeln!(
                out,
                "  drain: {} batches, {} bytes, commit→durable latency {} ms total",
                self.drain_batches,
                self.drain_bytes,
                self.drain_latency_ns / 1_000_000
            );
            if self.torn_generations > 0 {
                let _ = writeln!(
                    out,
                    "    torn by failures: {} generations, {} bytes rolled back",
                    self.torn_generations, self.torn_bytes
                );
            }
            if !self.drain_depth_histogram.is_empty() {
                let _ = write!(out, "    depth histogram:");
                for (depth, count) in &self.drain_depth_histogram {
                    let _ = write!(out, " {depth}:{count}");
                }
                out.push('\n');
            }
        }
        if self.slo_breaches > 0 {
            let _ = writeln!(out, "  health: {} SLO breach windows", self.slo_breaches);
        }
        if !self.recovery.is_empty() || self.restores > 0 {
            let _ = writeln!(
                out,
                "  recovery: {} restores, {} ms in restore spans",
                self.restores,
                self.restore_ns / 1_000_000
            );
            for (tier, t) in &self.recovery {
                let _ = writeln!(
                    out,
                    "    {:<13} {} plans, {} reads, {} bytes, {} ms read time",
                    tier.token(),
                    t.plans,
                    t.reads,
                    t.bytes,
                    t.read_ns / 1_000_000
                );
            }
        }
        out
    }
}

fn tenant_entry(map: &mut BTreeMap<u32, TenantStats>, tenant: u32) -> &mut TenantStats {
    map.entry(tenant).or_insert_with(|| TenantStats {
        tenant,
        checkpoints: 0,
        admitted: 0,
        rejections: 0,
        admitted_bytes: 0,
        stall_ns: 0,
        stall_max_ns: 0,
    })
}

fn rank_entry(map: &mut BTreeMap<u32, RankStats>, rank: u32) -> &mut RankStats {
    map.entry(rank).or_insert_with(|| RankStats {
        rank,
        stall_ns: 0,
        captures: 0,
        capture_pages: 0,
        capture_bytes: 0,
        iterations: 0,
        dedup_pages: 0,
        dedup_bytes_saved: 0,
        delta_pages: 0,
        delta_bytes_saved: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CaptureKind, DeviceKind, TimedEvent};
    use crate::log::{FlightRecorder, Recorder};
    use ickpt_sim::{SimDuration, SimTime};

    #[test]
    fn summary_aggregates_by_lane() {
        let fr = FlightRecorder::new(128);
        let rec = Recorder::new(fr.clone());
        let dev = Lane::Device(DeviceKind::Array, 0);
        rec.emit(
            dev,
            SimTime(0),
            Event::DeviceTransfer { bytes: 100, queue_wait_ns: 5, service_ns: 50 },
        );
        rec.emit(
            dev,
            SimTime(60),
            Event::DeviceTransfer { bytes: 200, queue_wait_ns: 0, service_ns: 40 },
        );
        rec.emit_span(
            Lane::Rank(1),
            SimTime(10),
            SimDuration(30),
            Event::CheckpointStall { generation: 2 },
        );
        rec.emit(
            Lane::Rank(1),
            SimTime(40),
            Event::Capture {
                kind: CaptureKind::Incremental,
                generation: 2,
                pages: 3,
                payload_bytes: 999,
            },
        );
        rec.emit(Lane::Drain, SimTime(41), Event::DrainQueueDepth { depth: 2 });
        rec.emit(Lane::Drain, SimTime(42), Event::DrainQueueDepth { depth: 2 });
        rec.emit_span(
            Lane::Drain,
            SimTime(43),
            SimDuration(7),
            Event::DrainBatch { generations: 1, chunks: 4, bytes: 888 },
        );
        rec.emit(
            Lane::Run,
            SimTime(50),
            Event::RecoveryPlan { rank: 1, tier: RecoveryTier::Reconstructed, generation: 2 },
        );
        rec.emit_span(
            Lane::Rank(1),
            SimTime(50),
            SimDuration(25),
            Event::RecoveryRead { tier: RecoveryTier::Reconstructed, bytes: 777 },
        );

        let s = ObsSummary::from_snapshot(&fr.snapshot());
        assert_eq!(s.devices.len(), 1);
        assert_eq!(s.devices[0].bytes, 300);
        assert_eq!(s.devices[0].busy_ns, 90);
        assert_eq!(s.devices[0].queue_wait_ns, 5);
        assert_eq!(s.ranks[0].stall_ns, 30);
        assert_eq!(s.ranks[0].captures, 1);
        assert_eq!(s.drain_depth_histogram, vec![(2, 2)]);
        assert_eq!(s.drain_batches, 1);
        assert_eq!(s.drain_bytes, 888);
        let (tier, t) = s.recovery[0];
        assert_eq!(tier, RecoveryTier::Reconstructed);
        assert_eq!(t.plans, 1);
        assert_eq!(t.reads, 1);
        assert_eq!(t.bytes, 777);
        // horizon covers ts+dur = 100 from the first transfer? No:
        // transfers are instants; the largest extent is 50+25 = 75.
        assert_eq!(s.horizon_ns, 75);
        let _ = TimedEvent {
            ts: SimTime(0),
            dur: SimDuration::ZERO,
            event: Event::RunStart { ranks: 1 },
        };
        let rendered = s.render();
        assert!(rendered.contains("dev:array:0"));
        assert!(rendered.contains("depth histogram: 2:2"));
    }

    #[test]
    fn tenant_events_aggregate_per_tenant() {
        let fr = FlightRecorder::new(128);
        let rec = Recorder::new(fr.clone());
        rec.emit(
            Lane::Tenant(3),
            SimTime(0),
            Event::AdmissionGrant { tenant: 3, bytes: 1000, chunks: 2 },
        );
        rec.emit(
            Lane::Tenant(3),
            SimTime(5),
            Event::AdmissionReject { tenant: 3, bytes: 500, retry_ns: 40 },
        );
        rec.emit_span(
            Lane::Tenant(3),
            SimTime(10),
            SimDuration(30),
            Event::TenantStall { tenant: 3, bytes: 1000 },
        );
        rec.emit_span(
            Lane::Tenant(7),
            SimTime(0),
            SimDuration(90),
            Event::TenantStall { tenant: 7, bytes: 64 },
        );
        let s = ObsSummary::from_snapshot(&fr.snapshot());
        assert_eq!(s.tenants.len(), 2);
        let t3 = &s.tenants[0];
        assert_eq!((t3.tenant, t3.admitted, t3.rejections), (3, 1, 1));
        assert_eq!(t3.admitted_bytes, 1000);
        assert_eq!((t3.checkpoints, t3.stall_ns, t3.stall_max_ns), (1, 30, 30));
        assert_eq!(s.tenants[1].tenant, 7);
        assert_eq!(s.tenants[1].stall_max_ns, 90);
        let rendered = s.render();
        assert!(rendered.contains("tenant service:"));
        assert!(rendered.contains("tenant3"));
    }

    /// A synthetic many-rank snapshot for partition-invariance tests.
    fn busy_recorder(nranks: u32) -> std::sync::Arc<FlightRecorder> {
        let fr = FlightRecorder::for_ranks(nranks as usize);
        let rec = Recorder::new(fr.clone());
        for r in 0..nranks {
            rec.emit(
                Lane::Rank(r),
                SimTime(r as u64),
                Event::Capture {
                    kind: CaptureKind::Incremental,
                    generation: 1,
                    pages: r as u64 + 1,
                    payload_bytes: 10 * (r as u64 + 1),
                },
            );
            rec.emit_span(
                Lane::Rank(r),
                SimTime(r as u64),
                SimDuration(5),
                Event::CheckpointStall { generation: 1 },
            );
            rec.emit(
                Lane::Device(DeviceKind::Local, r),
                SimTime(r as u64),
                Event::DeviceTransfer { bytes: 100, queue_wait_ns: 1, service_ns: 2 },
            );
        }
        fr
    }

    #[test]
    fn merge_is_partition_invariant() {
        let fr = busy_recorder(97);
        let snap = fr.snapshot();
        let whole = ObsSummary::from_snapshot(&snap);
        // Split the snapshot into per-track snapshots, summarize each,
        // and merge in two different groupings: pairwise left fold and
        // reversed order.
        let parts: Vec<ObsSummary> = snap
            .tracks
            .iter()
            .map(|t| {
                ObsSummary::from_snapshot(&TraceSnapshot {
                    groups: snap.groups.clone(),
                    tracks: vec![t.clone()],
                })
            })
            .collect();
        let mut forward = ObsSummary::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = ObsSummary::default();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(whole, forward);
        assert_eq!(whole, backward);
        assert_eq!(whole.ranks.len(), 97);
        assert_eq!(whole.devices.len(), 97);
        assert_eq!(whole.events, 97 * 3);
    }

    #[test]
    fn for_ranks_bounds_retained_events() {
        use crate::log::{DEFAULT_TRACK_CAPACITY, MIN_TRACK_CAPACITY, TRACK_EVENT_BUDGET};
        // Small runs keep the default-capacity behaviour...
        assert_eq!(FlightRecorder::for_ranks(1).track_capacity(), DEFAULT_TRACK_CAPACITY);
        assert_eq!(FlightRecorder::for_ranks(16).track_capacity(), TRACK_EVENT_BUDGET / 16);
        // ...16k ranks land on the floor: bounded total, not 16k * 64k.
        let fr = FlightRecorder::for_ranks(16384);
        assert_eq!(fr.track_capacity(), MIN_TRACK_CAPACITY);
        assert!(16384 * fr.track_capacity() <= 2 * TRACK_EVENT_BUDGET);
    }
}
