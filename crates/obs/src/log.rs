//! Ring-buffer event storage and the recording handles the rest of
//! the workspace holds.
//!
//! The design goal is *zero cost when disabled*: every config struct
//! carries a [`Recorder`], which is an `Option<Arc<FlightRecorder>>`
//! underneath. The `#[inline]` emit methods test the option and
//! return — the compiler sees a branch on a never-written pointer and
//! hoists/eliminates it, so instrumented hot paths run at PR 4 speed
//! unless a recorder is actually attached (the micro bench measures
//! this delta). For code generic over sinks, the [`ObsSink`] trait's
//! [`NullSink`] impl is an empty inline body that compiles away
//! entirely.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use ickpt_sim::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::event::{Event, Lane, TimedEvent, TrackKey};
use crate::metrics::MetricsPlane;

/// Default per-track ring capacity: enough for hours of 1 s tracker
/// windows or tens of thousands of chunk transfers before the ring
/// starts dropping its oldest entries.
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 16;

/// Total retained-event budget [`FlightRecorder::for_ranks`] divides
/// across per-rank tracks. At ~48 bytes per event this bounds the
/// recorder near 50 MB however many ranks a run has, and keeps the
/// JSONL/Perfetto exports of a 16k-rank trace loadable.
pub const TRACK_EVENT_BUDGET: usize = 1 << 20;

/// Per-track floor for [`FlightRecorder::for_ranks`]: even at 16k+
/// ranks every track keeps at least this much recent history.
pub const MIN_TRACK_CAPACITY: usize = 64;

/// Anything that can accept timed events. The workspace's hot paths
/// are written against [`Recorder`] (dynamic on/off); this trait
/// exists for code that wants the *static* no-op guarantee.
pub trait ObsSink {
    /// Record one event on one track.
    fn record(&self, track: TrackKey, ev: TimedEvent);
    /// Whether events are being kept (callers may skip preparing
    /// expensive arguments when false).
    fn is_recording(&self) -> bool {
        true
    }
}

/// The sink that throws everything away at compile time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    #[inline(always)]
    fn record(&self, _track: TrackKey, _ev: TimedEvent) {}

    #[inline(always)]
    fn is_recording(&self) -> bool {
        false
    }
}

/// One track's bounded ring of events. When full, the oldest event is
/// dropped and counted — a flight recorder keeps the *recent* past.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
}

impl EventLog {
    /// An empty log bounded at `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        Self { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// Append one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TimedEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A consistent copy of everything a recorder holds, with every
/// track's events stable-sorted by `(ts, serialized form)` so the
/// export is independent of which thread appended first at equal
/// virtual time. Groups and tracks come out in key order.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// `(group id, group name)` in id order.
    pub groups: Vec<(u32, String)>,
    /// `(track, sorted events, dropped count)` in track order.
    pub tracks: Vec<(TrackKey, Vec<TimedEvent>, u64)>,
}

impl TraceSnapshot {
    /// Name of `group`, or a generated `run<id>` fallback.
    pub fn group_name(&self, group: u32) -> String {
        self.groups
            .iter()
            .find(|(id, _)| *id == group)
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| format!("run{group}"))
    }

    /// Total events retained across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|(_, evs, _)| evs.len()).sum()
    }

    /// Total events dropped by full rings.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|(_, _, d)| d).sum()
    }
}

/// The shared event store: a map of bounded per-track rings guarded
/// by one mutex. Rank threads emit a handful of events per virtual
/// second, so a single lock is nowhere near contended enough to
/// matter; what matters is that a `BTreeMap` keyed by [`TrackKey`]
/// gives snapshots a canonical track order for free.
pub struct FlightRecorder {
    capacity: usize,
    tracks: Mutex<BTreeMap<TrackKey, EventLog>>,
    groups: Mutex<BTreeMap<u32, String>>,
}

impl FlightRecorder {
    /// A recorder whose tracks each hold up to `capacity` events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity: capacity.max(1),
            tracks: Mutex::new(BTreeMap::new()),
            groups: Mutex::new(BTreeMap::new()),
        })
    }

    /// A recorder with [`DEFAULT_TRACK_CAPACITY`].
    pub fn with_default_capacity() -> Arc<Self> {
        Self::new(DEFAULT_TRACK_CAPACITY)
    }

    /// A recorder sized for a run with `nranks` rank tracks: the
    /// per-track ring capacity is [`TRACK_EVENT_BUDGET`]` / nranks`,
    /// clamped to `[`[`MIN_TRACK_CAPACITY`]`, `[`DEFAULT_TRACK_CAPACITY`]`]`,
    /// so total retained events — and export size — stay bounded as
    /// rank counts grow from the paper's 64 to 16k.
    pub fn for_ranks(nranks: usize) -> Arc<Self> {
        let per_track =
            (TRACK_EVENT_BUDGET / nranks.max(1)).clamp(MIN_TRACK_CAPACITY, DEFAULT_TRACK_CAPACITY);
        Self::new(per_track)
    }

    /// Per-track ring capacity in events.
    pub fn track_capacity(&self) -> usize {
        self.capacity
    }

    /// Give `group` a human-readable name (experiment label, workload
    /// tag). Unnamed groups export as `run<id>`.
    pub fn name_group(&self, group: u32, name: &str) {
        self.groups.lock().insert(group, name.to_string());
    }

    /// Copy out every track, sorting each track's events by
    /// `(ts, serialized event)` for deterministic export.
    pub fn snapshot(&self) -> TraceSnapshot {
        let groups =
            self.groups.lock().iter().map(|(id, name)| (*id, name.clone())).collect::<Vec<_>>();
        let tracks = self.tracks.lock();
        let mut out = Vec::with_capacity(tracks.len());
        for (key, log) in tracks.iter() {
            let mut evs: Vec<TimedEvent> = log.events().copied().collect();
            let mut buf = String::new();
            evs.sort_by_cached_key(|ev| {
                buf.clear();
                ev.event.write_args(&mut buf);
                (ev.ts, ev.dur, ev.event.name(), buf.clone())
            });
            out.push((*key, evs, log.dropped()));
        }
        TraceSnapshot { groups, tracks: out }
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tracks = self.tracks.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("tracks", &tracks.len())
            .finish()
    }
}

impl ObsSink for FlightRecorder {
    fn record(&self, track: TrackKey, ev: TimedEvent) {
        let mut tracks = self.tracks.lock();
        tracks.entry(track).or_insert_with(|| EventLog::new(self.capacity)).push(ev);
    }
}

/// The handle every instrumented config carries: either disabled
/// (default — all emits are a test-and-return) or bound to a
/// [`FlightRecorder`] and a run group, optionally teeing every event
/// into a [`MetricsPlane`] (which sees *all* events — it aggregates on
/// ingest, so it is never subject to ring eviction).
#[derive(Clone, Default)]
pub struct Recorder {
    sink: Option<Arc<FlightRecorder>>,
    metrics: Option<Arc<MetricsPlane>>,
    group: u32,
}

impl Recorder {
    /// The do-nothing recorder configs default to.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder feeding `sink` under group 0.
    pub fn new(sink: Arc<FlightRecorder>) -> Self {
        Self { sink: Some(sink), metrics: None, group: 0 }
    }

    /// The same recorder, additionally folding every emitted event
    /// into `plane` (live metrics without a second set of hook
    /// points). A recorder may carry a plane without a flight-recorder
    /// sink: metrics-only runs aggregate without retaining events.
    pub fn with_metrics(mut self, plane: Arc<MetricsPlane>) -> Self {
        self.metrics = Some(plane);
        self
    }

    /// The same sink(s), but events land in `group` (one group per
    /// simulated run when exporting several runs together).
    pub fn with_group(&self, group: u32) -> Self {
        Self { sink: self.sink.clone(), metrics: self.metrics.clone(), group }
    }

    /// Whether events are being kept (by the ring log, the metrics
    /// plane, or both).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// The group events land in.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The underlying recorder, if enabled.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.sink.as_ref()
    }

    /// The attached metrics plane, if any.
    pub fn metrics_plane(&self) -> Option<&Arc<MetricsPlane>> {
        self.metrics.as_ref()
    }

    /// Record an instant on `lane` at `ts`.
    #[inline]
    pub fn emit(&self, lane: Lane, ts: SimTime, event: Event) {
        if self.is_enabled() {
            self.record(lane, TimedEvent { ts, dur: SimDuration::ZERO, event });
        }
    }

    /// Record a complete slice `[ts, ts+dur]` on `lane`.
    #[inline]
    pub fn emit_span(&self, lane: Lane, ts: SimTime, dur: SimDuration, event: Event) {
        if self.is_enabled() {
            self.record(lane, TimedEvent { ts, dur, event });
        }
    }

    /// The shared slow path behind `emit`/`emit_span`: deliver to the
    /// ring log and/or the metrics plane. Out of line so the disabled
    /// fast path stays a pair of pointer tests.
    fn record(&self, lane: Lane, ev: TimedEvent) {
        if let Some(sink) = &self.sink {
            sink.record(TrackKey { group: self.group, lane }, ev);
        }
        if let Some(plane) = &self.metrics {
            plane.ingest(self.group, lane, &ev);
        }
    }

    /// Open a sim-time span starting at `begin`; finish it with
    /// [`Span::end`]. Cheap even when disabled (two words copied).
    #[inline]
    pub fn span(&self, lane: Lane, begin: SimTime) -> Span {
        Span { rec: self.clone(), lane, begin }
    }

    /// A named monotone counter emitting on `lane`.
    pub fn counter(&self, lane: Lane, name: &'static str) -> Counter {
        Counter { rec: self.clone(), lane, name, high_water: 0 }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sink.is_some() {
            write!(f, "Recorder(enabled, group {})", self.group)
        } else {
            write!(f, "Recorder(disabled)")
        }
    }
}

/// An open interval of virtual time; [`Span::end`] stamps the event
/// with `dur = now - begin` (saturating, so a clock that restarted at
/// zero yields an instant instead of panicking).
#[derive(Debug, Clone)]
pub struct Span {
    rec: Recorder,
    lane: Lane,
    begin: SimTime,
}

impl Span {
    /// When the span opened.
    pub fn begin(&self) -> SimTime {
        self.begin
    }

    /// Close the span at `now`, recording `event` over it.
    #[inline]
    pub fn end(self, now: SimTime, event: Event) {
        let dur = now.saturating_sub(self.begin);
        self.rec.emit_span(self.lane, self.begin, dur, event);
    }
}

/// A monotone counter: samples only ever move up, matching the
/// trace-viewer expectation for cumulative quantities (bytes drained,
/// chunks written). Non-monotone updates are clamped to the previous
/// high-water mark.
#[derive(Debug, Clone)]
pub struct Counter {
    rec: Recorder,
    lane: Lane,
    name: &'static str,
    high_water: u64,
}

impl Counter {
    /// Add `delta` and record the new value at `now`.
    #[inline]
    pub fn add(&mut self, now: SimTime, delta: u64) {
        self.record(now, self.high_water.saturating_add(delta));
    }

    /// Record `value` at `now`, clamped to be monotone.
    #[inline]
    pub fn record(&mut self, now: SimTime, value: u64) {
        self.high_water = self.high_water.max(value);
        self.rec.emit(self.lane, now, Event::Counter { name: self.name, value: self.high_water });
    }

    /// The counter's current (monotone) value.
    pub fn value(&self) -> u64 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DeviceKind;

    fn te(ns: u64, ev: Event) -> TimedEvent {
        TimedEvent { ts: SimTime(ns), dur: SimDuration::ZERO, event: ev }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = EventLog::new(2);
        log.push(te(1, Event::DrainQueueDepth { depth: 1 }));
        log.push(te(2, Event::DrainQueueDepth { depth: 2 }));
        log.push(te(3, Event::DrainQueueDepth { depth: 3 }));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.events().next().unwrap().ts, SimTime(2));
    }

    #[test]
    fn disabled_recorder_records_nothing_and_cheaply() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.emit(Lane::Run, SimTime(0), Event::RunStart { ranks: 4 });
        let span = rec.span(Lane::Rank(0), SimTime(5));
        span.end(SimTime(9), Event::CheckpointStall { generation: 1 });
        // Nothing to assert beyond "did not panic": there is no sink.
    }

    #[test]
    fn snapshot_sorts_equal_timestamps_deterministically() {
        let fr = FlightRecorder::new(16);
        let rec = Recorder::new(fr.clone());
        let lane = Lane::Device(DeviceKind::Local, 0);
        // Same virtual instant, inserted in "thread B first" order.
        rec.emit(
            lane,
            SimTime(10),
            Event::DeviceTransfer { bytes: 9, queue_wait_ns: 0, service_ns: 1 },
        );
        rec.emit(
            lane,
            SimTime(10),
            Event::DeviceTransfer { bytes: 3, queue_wait_ns: 0, service_ns: 1 },
        );
        let snap = fr.snapshot();
        let evs = &snap.tracks[0].1;
        match (&evs[0].event, &evs[1].event) {
            (Event::DeviceTransfer { bytes: a, .. }, Event::DeviceTransfer { bytes: b, .. }) => {
                // "bytes":3 sorts before "bytes":9 regardless of insert order.
                assert_eq!((*a, *b), (3, 9));
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn span_saturates_backward_clocks() {
        let fr = FlightRecorder::new(16);
        let rec = Recorder::new(fr.clone());
        rec.span(Lane::Rank(1), SimTime(100))
            .end(SimTime(40), Event::Restore { generation: 1, chain: 1, pages: 1, bytes: 1 });
        let snap = fr.snapshot();
        assert_eq!(snap.tracks[0].1[0].dur, SimDuration::ZERO);
    }

    #[test]
    fn counter_is_monotone() {
        let fr = FlightRecorder::new(16);
        let mut c = Recorder::new(fr.clone()).counter(Lane::Drain, "drained_bytes");
        c.record(SimTime(1), 10);
        c.record(SimTime(2), 4); // clamped
        c.add(SimTime(3), 5);
        assert_eq!(c.value(), 15);
        let snap = fr.snapshot();
        let vals: Vec<u64> = snap.tracks[0]
            .1
            .iter()
            .map(|ev| match ev.event {
                Event::Counter { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![10, 10, 15]);
    }
}
