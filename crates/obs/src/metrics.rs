//! The live metrics plane: streaming counters, gauges, windowed rate
//! meters and deterministic log₂ histograms fed from the same
//! [`Recorder`](crate::Recorder) hook points the flight recorder uses.
//!
//! The flight recorder answers "what happened, in time order"; the
//! metrics plane answers "how much, how fast, how bad is the tail" —
//! the signals ROADMAP item 4's adaptive controller needs while a run
//! is still in flight. Every accumulator is a commutative, associative
//! integer operation (sum, max, bucket add) keyed by
//! `(metric name, label)` and — for windowed series — by the *virtual*
//! window index `ts / window_ns`. Ingestion order therefore cannot
//! change any value, so the [text snapshot](MetricsPlane::render_text)
//! is byte-identical at any `ICKPT_SIM_WORKERS` / `ICKPT_BENCH_THREADS`
//! setting, exactly like the trace exporters.
//!
//! Quantiles come from [`LogHistogram`]: 65 fixed power-of-two buckets
//! whose nearest-rank quantile is bit-reproducible and lands within
//! one log₂ bucket of the exact nearest-rank statistic (property-pinned
//! in `tests/metrics_props.rs`). Histogram merge is an element-wise
//! vector add, so tree-reduced and flat folds agree exactly.
//!
//! The plane profiles itself: every ingest bumps deterministic
//! op counters ([`MetaStats`]) exported under `ickpt_meta_*`, and the
//! glue layer replays them as a `metrics_*` counter track so the
//! plane's own footprint is visible in the trace it annotates. The
//! disabled path stays in the recorder's ~sub-ns regime: a config
//! without a plane attached costs one pointer test per emit.

use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::Arc;

use ickpt_sim::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::event::{DeviceKind, Event, Lane, RecoveryTier, TimedEvent};

/// Environment knob controlling the metrics plane in the bench/repro
/// binaries: `off` (default), `on` (1 s windows) or `window=<secs>`.
pub const METRICS_ENV: &str = "ICKPT_METRICS";

/// Number of fixed histogram buckets: bucket 0 holds zeros, bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Parsed [`METRICS_ENV`] setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Whether a [`MetricsPlane`] should be attached at all.
    pub enabled: bool,
    /// Virtual-time window for the rate meters and SLO evaluation.
    pub window: SimDuration,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self { enabled: false, window: SimDuration::from_secs(1) }
    }
}

impl MetricsConfig {
    /// Parse a [`METRICS_ENV`] value. Pure so strictness is
    /// unit-testable without spawning a process.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "{METRICS_ENV}={raw:?} is invalid: expected \"off\", \"on\" or \"window=<secs>\""
            )
        };
        match raw.trim() {
            "off" => Ok(Self { enabled: false, ..Self::default() }),
            "on" => Ok(Self { enabled: true, ..Self::default() }),
            v => match v.strip_prefix("window=") {
                None => Err(err()),
                Some(secs) => {
                    let secs: u64 = secs.parse().map_err(|_| err())?;
                    if secs == 0 || secs > u64::MAX / 1_000_000_000 {
                        return Err(err());
                    }
                    Ok(Self { enabled: true, window: SimDuration::from_secs(secs) })
                }
            },
        }
    }

    // The one sanctioned stderr write in this crate: a malformed env
    // knob must abort loudly before any experiment runs
    // half-configured, exactly like ICKPT_KERNELS and the
    // ICKPT_BENCH_* knobs (exit status 2 with a message).
    /// Read [`METRICS_ENV`], exiting with status 2 on a malformed
    /// value. Absent means disabled.
    #[allow(clippy::disallowed_macros)]
    pub fn from_env() -> Self {
        match std::env::var(METRICS_ENV) {
            Err(_) => Self::default(),
            Ok(raw) => Self::parse(&raw).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
        }
    }
}

/// Index of the bucket `v` falls in: 0 for 0, else `1 + floor(log2 v)`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `b` — the value a quantile lookup
/// reports for samples that landed in it.
pub fn bucket_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        1..=63 => (1u64 << b) - 1,
        _ => u64::MAX,
    }
}

/// A fixed-bucket log₂ histogram with bit-reproducible quantiles.
///
/// Recording is a bucket increment plus min/max/sum updates — all
/// commutative, so any interleaving of recorders yields the same
/// state. [`LogHistogram::merge`] is an element-wise add, making the
/// histogram a CRDT the summary tree-reduce can fold in any shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self { counts: [0; HIST_BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` in (associative and commutative).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Raw bucket counts (index by [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank quantile at `pct` percent (1..=100), reported as
    /// the inclusive upper bound of the bucket holding the rank-`⌈pct
    /// · n / 100⌉` sample. Exact value and estimate share a bucket by
    /// construction, so the estimate is within one log₂ bucket of the
    /// true nearest-rank statistic. `None` when empty.
    pub fn quantile(&self, pct: u8) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let pct = u64::from(pct.clamp(1, 100));
        // ceil(pct * total / 100), computed in u128 to dodge overflow.
        let rank = ((pct as u128 * self.total as u128).div_ceil(100)) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the reported bound into the observed range so
                // p100 equals the true max when the top bucket is wide.
                return Some(bucket_bound(b).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

/// Dimension attached to a metric beyond its name — which device lane,
/// recovery tier or tenant the value belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricLabel {
    /// Unlabeled (run-wide) metric.
    None,
    /// Per-device metric (`dev="local:0"`).
    Device(DeviceKind, u32),
    /// Per-recovery-tier metric (`tier="durable"`).
    Tier(RecoveryTier),
}

impl MetricLabel {
    /// Append the label's `key="value"` form (empty for
    /// [`MetricLabel::None`]).
    fn write(&self, out: &mut String) {
        match self {
            MetricLabel::None => {}
            MetricLabel::Device(kind, idx) => {
                let _ = write!(out, ",dev=\"{}:{idx}\"", kind.token());
            }
            MetricLabel::Tier(tier) => {
                let _ = write!(out, ",tier=\"{}\"", tier.token());
            }
        }
    }
}

type MetricKey = (&'static str, MetricLabel);

/// One virtual-time window's accumulated rates and distributions. All
/// fields fold element-wise (sums and maxes), so windows are as
/// order-independent as the scalar metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowAccum {
    /// Checkpoint captures whose span started in the window.
    pub captures: u64,
    /// Encoded capture payload bytes — the *effective* IB the storage
    /// path actually carried.
    pub effective_ib_bytes: u64,
    /// What dirty-bit accounting would have shipped: payload plus the
    /// bytes the content layer deduped or delta-encoded away.
    pub dirty_ib_bytes: u64,
    /// Drain batches completing commit→durable in this window.
    pub drain_batches: u64,
    /// Bytes those batches pushed to the durable array.
    pub drain_bytes: u64,
    /// Deepest drain queue observed in the window.
    pub drain_depth_max: u64,
    /// Virtual ns ranks spent blocked on in-flight checkpoints.
    pub stall_ns: u64,
    /// Device service (busy) virtual ns, summed across device lanes.
    pub device_busy_ns: u64,
    /// Service admission grants.
    pub admits: u64,
    /// Service admission rejections (deferred requests).
    pub rejects: u64,
    /// Rank checkpoint-stall span durations.
    pub stall: LogHistogram,
    /// Tenant request-blocked span durations.
    pub tenant_stall: LogHistogram,
}

impl WindowAccum {
    /// Fold `other` in (associative and commutative).
    pub fn merge(&mut self, other: &WindowAccum) {
        self.captures += other.captures;
        self.effective_ib_bytes += other.effective_ib_bytes;
        self.dirty_ib_bytes += other.dirty_ib_bytes;
        self.drain_batches += other.drain_batches;
        self.drain_bytes += other.drain_bytes;
        self.drain_depth_max = self.drain_depth_max.max(other.drain_depth_max);
        self.stall_ns += other.stall_ns;
        self.device_busy_ns += other.device_busy_ns;
        self.admits += other.admits;
        self.rejects += other.rejects;
        self.stall.merge(&other.stall);
        self.tenant_stall.merge(&other.tenant_stall);
    }

    /// Device busy fraction over a window of `window_ns`, in basis
    /// points (may exceed 10 000 when several devices are busy at
    /// once — it is a *sum* over device lanes).
    pub fn busy_bp(&self, window_ns: u64) -> u64 {
        if window_ns == 0 {
            return 0;
        }
        (self.device_busy_ns as u128 * 10_000 / window_ns as u128) as u64
    }
}

/// One run group's metric state: the value behind a [`MetricsView`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupMetrics {
    counters: BTreeMap<MetricKey, u64>,
    gauges_max: BTreeMap<MetricKey, u64>,
    hists: BTreeMap<MetricKey, LogHistogram>,
    windows: BTreeMap<u64, WindowAccum>,
    horizon_ns: u64,
}

impl GroupMetrics {
    #[inline]
    fn add(&mut self, name: &'static str, label: MetricLabel, delta: u64) -> u64 {
        *self.counters.entry((name, label)).or_insert(0) += delta;
        1
    }

    #[inline]
    fn gauge_max(&mut self, name: &'static str, label: MetricLabel, v: u64) -> u64 {
        let g = self.gauges_max.entry((name, label)).or_insert(0);
        *g = (*g).max(v);
        1
    }

    #[inline]
    fn hist(&mut self, name: &'static str, v: u64) -> u64 {
        self.hists.entry((name, MetricLabel::None)).or_default().record(v);
        1
    }

    fn window(&mut self, ts: SimTime, window_ns: u64) -> &mut WindowAccum {
        self.windows.entry(ts.0 / window_ns.max(1)).or_default()
    }

    /// Apply one event; returns `(cell updates, histogram records)`
    /// for the plane's self-profile.
    fn apply(&mut self, lane: Lane, ev: &TimedEvent, window_ns: u64) -> (u64, u64) {
        let mut updates = 0u64;
        let mut hists = 0u64;
        self.horizon_ns = self.horizon_ns.max(ev.ts.0 + ev.dur.0);
        let dur = ev.dur.0;
        match ev.event {
            Event::RunStart { ranks } => {
                updates += self.gauge_max("ranks", MetricLabel::None, u64::from(ranks));
            }
            Event::IterationBoundary { .. } => {
                updates += self.add("iterations", MetricLabel::None, 1);
            }
            Event::TrackerWindow { faults, .. } => {
                updates += self.add("tracker_windows", MetricLabel::None, 1);
                updates += self.add("tracker_faults", MetricLabel::None, faults);
            }
            Event::Capture { pages, payload_bytes, .. } => {
                updates += self.add("captures", MetricLabel::None, 1);
                updates += self.add("capture_pages", MetricLabel::None, pages);
                updates += self.add("capture_bytes", MetricLabel::None, payload_bytes);
                updates += self.add("dirty_bytes", MetricLabel::None, payload_bytes);
                let w = self.window(ev.ts, window_ns);
                w.captures += 1;
                w.effective_ib_bytes += payload_bytes;
                w.dirty_ib_bytes += payload_bytes;
                updates += 3;
            }
            Event::DedupSkip { pages, bytes_saved, .. } => {
                updates += self.add("dedup_pages", MetricLabel::None, pages);
                updates += self.add("dedup_bytes_saved", MetricLabel::None, bytes_saved);
                updates += self.add("dirty_bytes", MetricLabel::None, bytes_saved);
                self.window(ev.ts, window_ns).dirty_ib_bytes += bytes_saved;
                updates += 1;
            }
            Event::DeltaEncode { pages, bytes_saved, .. } => {
                updates += self.add("delta_pages", MetricLabel::None, pages);
                updates += self.add("delta_bytes_saved", MetricLabel::None, bytes_saved);
                updates += self.add("dirty_bytes", MetricLabel::None, bytes_saved);
                self.window(ev.ts, window_ns).dirty_ib_bytes += bytes_saved;
                updates += 1;
            }
            Event::CheckpointStall { .. } => {
                updates += self.add("stall_ns", MetricLabel::None, dur);
                hists += self.hist("stall_ns", dur);
                let w = self.window(ev.ts, window_ns);
                w.stall_ns += dur;
                w.stall.record(dur);
                updates += 1;
                hists += 1;
            }
            Event::CommitBarrier { .. } => {
                updates += self.add("commits", MetricLabel::None, 1);
            }
            Event::ChunkPut { bytes, queue_wait_ns, service_ns, .. } => {
                updates += self.add("chunk_puts", MetricLabel::None, 1);
                updates += self.add("chunk_put_bytes", MetricLabel::None, bytes);
                hists += self.hist("capture_cost_ns", queue_wait_ns + service_ns);
            }
            Event::ChunkGet { bytes, .. } => {
                updates += self.add("chunk_gets", MetricLabel::None, 1);
                updates += self.add("chunk_get_bytes", MetricLabel::None, bytes);
            }
            Event::ManifestPut { .. } => {
                updates += self.add("manifest_puts", MetricLabel::None, 1);
            }
            Event::DeviceTransfer { bytes, queue_wait_ns, service_ns } => {
                let label = match lane {
                    Lane::Device(kind, idx) => MetricLabel::Device(kind, idx),
                    _ => MetricLabel::None,
                };
                updates += self.add("device_transfers", label, 1);
                updates += self.add("device_bytes", label, bytes);
                updates += self.add("device_busy_ns", label, service_ns);
                updates += self.add("device_queue_wait_ns", label, queue_wait_ns);
                self.window(ev.ts, window_ns).device_busy_ns += service_ns;
                updates += 1;
            }
            Event::RedundancyPublish { bytes, .. } => {
                updates += self.add("publish_bytes", MetricLabel::None, bytes);
            }
            Event::RedundancyReconstruct { bytes, .. } => {
                updates += self.add("reconstruct_bytes", MetricLabel::None, bytes);
            }
            Event::DrainBatch { generations, bytes, .. } => {
                updates += self.add("drain_batches", MetricLabel::None, 1);
                updates += self.add("drain_generations", MetricLabel::None, generations);
                updates += self.add("drain_bytes", MetricLabel::None, bytes);
                hists += self.hist("drain_batch_ns", dur);
                let w = self.window(ev.ts, window_ns);
                w.drain_batches += 1;
                w.drain_bytes += bytes;
                updates += 2;
            }
            Event::DrainQueueDepth { depth } => {
                updates += self.gauge_max("drain_depth_max", MetricLabel::None, depth);
                let w = self.window(ev.ts, window_ns);
                w.drain_depth_max = w.drain_depth_max.max(depth);
                updates += 1;
            }
            Event::DrainTorn { generations, bytes } => {
                updates += self.add("drain_torn_generations", MetricLabel::None, generations);
                updates += self.add("drain_torn_bytes", MetricLabel::None, bytes);
            }
            Event::AdmissionGrant { bytes, .. } => {
                updates += self.add("admits", MetricLabel::None, 1);
                updates += self.add("admit_bytes", MetricLabel::None, bytes);
                self.window(ev.ts, window_ns).admits += 1;
                updates += 1;
            }
            Event::AdmissionReject { retry_ns, .. } => {
                updates += self.add("rejects", MetricLabel::None, 1);
                hists += self.hist("admission_wait_ns", retry_ns);
                self.window(ev.ts, window_ns).rejects += 1;
                updates += 1;
            }
            Event::TenantStall { .. } => {
                updates += self.add("tenant_checkpoints", MetricLabel::None, 1);
                updates += self.add("tenant_stall_ns", MetricLabel::None, dur);
                hists += self.hist("tenant_stall_ns", dur);
                self.window(ev.ts, window_ns).tenant_stall.record(dur);
                hists += 1;
            }
            Event::RecoveryRead { tier, bytes } => {
                updates += self.add("recovery_reads", MetricLabel::Tier(tier), 1);
                updates += self.add("recovery_read_bytes", MetricLabel::Tier(tier), bytes);
            }
            Event::RecoveryPlan { tier, .. } => {
                updates += self.add("recovery_plans", MetricLabel::Tier(tier), 1);
            }
            Event::Restore { bytes, .. } => {
                updates += self.add("restores", MetricLabel::None, 1);
                updates += self.add("restore_ns", MetricLabel::None, dur);
                updates += self.add("restore_bytes", MetricLabel::None, bytes);
            }
            Event::Failure { .. } => {
                updates += self.add("failures", MetricLabel::None, 1);
            }
            Event::Counter { name, value } => {
                updates += self.gauge_max(name, MetricLabel::None, value);
            }
            Event::SloBreach { .. } => {
                updates += self.add("slo_breaches", MetricLabel::None, 1);
            }
        }
        (updates, hists)
    }
}

/// Deterministic op counts the plane keeps about itself. Multiplied by
/// the `metrics` micro-bench rows they bound the plane's own overhead
/// without putting host time (a determinism hazard) in any snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetaStats {
    /// Events offered to [`MetricsPlane::ingest`].
    pub events_ingested: u64,
    /// Counter/gauge/window cell updates those events caused.
    pub metric_updates: u64,
    /// Histogram samples recorded.
    pub hist_records: u64,
}

#[derive(Default)]
struct PlaneState {
    groups: BTreeMap<u32, GroupMetrics>,
    names: BTreeMap<u32, String>,
    meta: MetaStats,
}

/// The shared metrics store: per-group accumulators behind one mutex,
/// same concurrency story as [`FlightRecorder`](crate::FlightRecorder)
/// (a handful of events per virtual second per rank — ordering, not
/// contention, is the thing to engineer for, and every update being
/// commutative makes ordering irrelevant).
pub struct MetricsPlane {
    window_ns: u64,
    state: Mutex<PlaneState>,
}

impl MetricsPlane {
    /// A plane bucketing windowed series at `window`.
    pub fn new(window: SimDuration) -> Arc<Self> {
        Arc::new(Self { window_ns: window.0.max(1), state: Mutex::new(PlaneState::default()) })
    }

    /// A plane configured from `cfg`; `None` when metrics are off.
    pub fn from_config(cfg: &MetricsConfig) -> Option<Arc<Self>> {
        cfg.enabled.then(|| Self::new(cfg.window))
    }

    /// The virtual-time window, ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Give `group` a human-readable name (mirrors
    /// [`FlightRecorder::name_group`](crate::FlightRecorder::name_group)).
    pub fn name_group(&self, group: u32, name: &str) {
        self.state.lock().names.insert(group, name.to_string());
    }

    /// Fold one event in. Called by the recorder tee on every emit;
    /// also usable directly (e.g. replaying a parsed JSONL export).
    pub fn ingest(&self, group: u32, lane: Lane, ev: &TimedEvent) {
        let mut st = self.state.lock();
        let (updates, hists) = st.groups.entry(group).or_default().apply(lane, ev, self.window_ns);
        st.meta.events_ingested += 1;
        st.meta.metric_updates += updates;
        st.meta.hist_records += hists;
    }

    /// Self-profile counters accumulated so far.
    pub fn meta(&self) -> MetaStats {
        self.state.lock().meta
    }

    /// Groups with any data, id order.
    pub fn groups(&self) -> Vec<u32> {
        self.state.lock().groups.keys().copied().collect()
    }

    /// A point-in-time read view of `group` (the controller contract —
    /// see DESIGN.md §17), or `None` if the group has no data.
    pub fn view(&self, group: u32) -> Option<MetricsView> {
        let st = self.state.lock();
        st.groups.get(&group).map(|g| MetricsView {
            group,
            name: st.names.get(&group).cloned().unwrap_or_else(|| format!("run{group}")),
            window_ns: self.window_ns,
            metrics: g.clone(),
        })
    }

    /// Render the deterministic Prometheus-style text snapshot: every
    /// counter, gauge and histogram quantile for every group in key
    /// order, integer-valued, plus the plane's `ickpt_meta_*`
    /// self-profile. Byte-identical for identical ingested event sets
    /// regardless of ingestion order or thread count.
    pub fn render_text(&self) -> String {
        let st = self.state.lock();
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# ickpt metrics snapshot v1 (virtual-time, integer-valued)");
        let _ = writeln!(out, "ickpt_window_ns {}", self.window_ns);
        for (group, g) in &st.groups {
            let run = st.names.get(group).cloned().unwrap_or_else(|| format!("run{group}"));
            let mut labels = String::new();
            escape_label(&mut labels, &run);
            let run = labels;
            let _ = writeln!(out, "ickpt_horizon_ns{{run=\"{run}\"}} {}", g.horizon_ns);
            let _ = writeln!(out, "ickpt_windows{{run=\"{run}\"}} {}", g.windows.len());
            for ((name, label), v) in &g.counters {
                let mut l = String::new();
                label.write(&mut l);
                let _ = writeln!(out, "ickpt_{name}_total{{run=\"{run}\"{l}}} {v}");
            }
            for ((name, label), v) in &g.gauges_max {
                let mut l = String::new();
                label.write(&mut l);
                let _ = writeln!(out, "ickpt_{name}{{run=\"{run}\"{l}}} {v}");
            }
            for ((name, _), h) in &g.hists {
                let _ = writeln!(out, "ickpt_{name}_count{{run=\"{run}\"}} {}", h.count());
                let _ = writeln!(out, "ickpt_{name}_sum{{run=\"{run}\"}} {}", h.sum());
                for (q, pct) in [("0.5", 50u8), ("0.9", 90), ("0.99", 99)] {
                    let v = h.quantile(pct).unwrap_or(0);
                    let _ = writeln!(out, "ickpt_{name}{{run=\"{run}\",quantile=\"{q}\"}} {v}");
                }
            }
        }
        let _ = writeln!(out, "ickpt_meta_groups {}", st.groups.len());
        let _ = writeln!(out, "ickpt_meta_events_ingested {}", st.meta.events_ingested);
        let _ = writeln!(out, "ickpt_meta_metric_updates {}", st.meta.metric_updates);
        let _ = writeln!(out, "ickpt_meta_hist_records {}", st.meta.hist_records);
        out
    }
}

impl std::fmt::Debug for MetricsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MetricsPlane")
            .field("window_ns", &self.window_ns)
            .field("groups", &st.groups.len())
            .field("events", &st.meta.events_ingested)
            .finish()
    }
}

fn escape_label(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// A point-in-time, read-only view of one run group's metrics — the
/// API contract the ROADMAP item 4 adaptive controller consumes.
/// Lookups iterate small ordered maps; windows come back in index
/// order. Cloned out of the plane, so holding a view never blocks
/// ingestion.
#[derive(Debug, Clone)]
pub struct MetricsView {
    group: u32,
    name: String,
    window_ns: u64,
    metrics: GroupMetrics,
}

impl MetricsView {
    /// The run group this view reads.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The group's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The windowed series' bucket width, virtual ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Latest instant covered by any ingested event, virtual ns.
    pub fn horizon_ns(&self) -> u64 {
        self.metrics.horizon_ns
    }

    /// Value of the unlabeled counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_labeled(name, MetricLabel::None)
    }

    /// Value of counter `name` with `label`.
    pub fn counter_labeled(&self, name: &str, label: MetricLabel) -> u64 {
        self.metrics
            .counters
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// High-water value of gauge `name` (0 if never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.metrics
            .gauges_max
            .iter()
            .find(|((n, l), _)| *n == name && *l == MetricLabel::None)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The run-wide histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.metrics
            .hists
            .iter()
            .find(|((n, _), _)| *n == name)
            .map(|(_, h)| h)
            .filter(|h| !h.is_empty())
    }

    /// Nearest-rank quantile of histogram `name` at `pct` percent.
    pub fn quantile(&self, name: &str, pct: u8) -> Option<u64> {
        self.histogram(name)?.quantile(pct)
    }

    /// All labeled variants of counter `name`, label order.
    pub fn counters_labeled(&self, name: &str) -> Vec<(MetricLabel, u64)> {
        self.metrics
            .counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|((_, l), v)| (*l, *v))
            .collect()
    }

    /// Windowed series, `(window index, accumulator)` in index order.
    /// Windows nothing happened in are absent.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &WindowAccum)> {
        self.metrics.windows.iter().map(|(i, w)| (*i, w))
    }

    /// One window's accumulator.
    pub fn window(&self, index: u64) -> Option<&WindowAccum> {
        self.metrics.windows.get(&index)
    }

    /// Number of populated windows.
    pub fn window_count(&self) -> usize {
        self.metrics.windows.len()
    }

    /// All populated windows merged into one accumulator (whole-run
    /// totals in window form — used by the re-bin consistency tests).
    pub fn merged_windows(&self) -> WindowAccum {
        let mut acc = WindowAccum::default();
        for (_, w) in self.windows() {
            acc.merge(w);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CaptureKind;

    #[test]
    fn knob_parsing_is_strict() {
        assert!(!MetricsConfig::parse("off").unwrap().enabled);
        let on = MetricsConfig::parse("on").unwrap();
        assert!(on.enabled);
        assert_eq!(on.window, SimDuration::from_secs(1));
        let w = MetricsConfig::parse("window=5").unwrap();
        assert!(w.enabled);
        assert_eq!(w.window, SimDuration::from_secs(5));
        assert_eq!(MetricsConfig::parse(" on ").unwrap(), on);
        for bad in ["", "On", "1", "window=", "window=0", "window=-1", "window=2s", "yes"] {
            assert!(MetricsConfig::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn bucket_shape_is_fixed() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 17, 4095, 4096, u64::MAX] {
            assert!(v <= bucket_bound(bucket_of(v)));
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1060);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        // rank ceil(0.5*4)=2 → 20 lives in bucket 5 (16..=31) → 31.
        assert_eq!(h.quantile(50), Some(31));
        // p100 is clamped to the observed max.
        assert_eq!(h.quantile(100), Some(1000));
        assert!(LogHistogram::new().quantile(50).is_none());
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for (i, v) in [5u64, 0, 77, 1 << 40, 12, 12, 9000].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            both.record(*v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // Commutative.
        let mut rev = b;
        rev.merge(&a);
        assert_eq!(rev, both);
    }

    #[test]
    fn ingestion_order_cannot_change_the_snapshot() {
        let events: Vec<(Lane, TimedEvent)> = (0..40u64)
            .map(|i| {
                let ev = if i % 3 == 0 {
                    Event::Capture {
                        kind: CaptureKind::Incremental,
                        generation: i,
                        pages: i + 1,
                        payload_bytes: 1000 * (i + 1),
                    }
                } else {
                    Event::CheckpointStall { generation: i }
                };
                (
                    Lane::Rank((i % 4) as u32),
                    TimedEvent {
                        ts: SimTime(i * 300_000_000),
                        dur: SimDuration(i * 1_000),
                        event: ev,
                    },
                )
            })
            .collect();
        let ingest_all = |order: &[usize]| {
            let plane = MetricsPlane::new(SimDuration::from_secs(1));
            plane.name_group(0, "demo");
            for &i in order {
                let (lane, ev) = &events[i];
                plane.ingest(0, *lane, ev);
            }
            plane.render_text()
        };
        let forward: Vec<usize> = (0..events.len()).collect();
        let backward: Vec<usize> = (0..events.len()).rev().collect();
        let shuffled: Vec<usize> = (0..events.len()).map(|i| (i * 23) % events.len()).collect();
        let a = ingest_all(&forward);
        assert_eq!(a, ingest_all(&backward));
        assert_eq!(a, ingest_all(&shuffled));
        assert!(a.contains("ickpt_captures_total{run=\"demo\"}"));
    }

    #[test]
    fn windows_bucket_by_virtual_time() {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        for (ts, bytes) in [(0u64, 100u64), (999_999_999, 50), (1_000_000_000, 7)] {
            plane.ingest(
                0,
                Lane::Rank(0),
                &TimedEvent {
                    ts: SimTime(ts),
                    dur: SimDuration::ZERO,
                    event: Event::Capture {
                        kind: CaptureKind::Incremental,
                        generation: 1,
                        pages: 1,
                        payload_bytes: bytes,
                    },
                },
            );
        }
        let view = plane.view(0).unwrap();
        assert_eq!(view.window_count(), 2);
        assert_eq!(view.window(0).unwrap().effective_ib_bytes, 150);
        assert_eq!(view.window(1).unwrap().effective_ib_bytes, 7);
        assert_eq!(view.counter("capture_bytes"), 157);
        assert_eq!(view.merged_windows().effective_ib_bytes, 157);
    }

    #[test]
    fn meta_counts_are_deterministic() {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        plane.ingest(
            0,
            Lane::Rank(0),
            &TimedEvent {
                ts: SimTime(5),
                dur: SimDuration(10),
                event: Event::CheckpointStall { generation: 1 },
            },
        );
        let meta = plane.meta();
        assert_eq!(meta.events_ingested, 1);
        assert!(meta.metric_updates >= 2);
        assert_eq!(meta.hist_records, 2);
    }
}
