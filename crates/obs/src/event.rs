//! The typed event vocabulary of the flight recorder.
//!
//! Every quantity is an integer (virtual nanoseconds, bytes, pages,
//! counts): integer fields serialize identically on every platform and
//! thread count, which is what makes the exporters byte-deterministic.
//! Events never carry heap-allocated payloads — a [`Event`] is a small
//! `Copy` value so appending one to a ring buffer is a few stores.

use ickpt_sim::{SimDuration, SimTime};

/// Which modeled hardware a device lane belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// Flat stable storage (per-rank or shared, pre-tiering paths).
    Storage,
    /// A rank's node-local checkpoint tier.
    Local,
    /// Interconnect NIC used for redundancy publish.
    Nic,
    /// The shared durable array behind the drain queue.
    Array,
}

impl DeviceKind {
    /// Stable lowercase token used in track names.
    pub fn token(&self) -> &'static str {
        match self {
            DeviceKind::Storage => "storage",
            DeviceKind::Local => "local",
            DeviceKind::Nic => "nic",
            DeviceKind::Array => "array",
        }
    }

    /// Inverse of [`DeviceKind::token`].
    pub fn parse(tok: &str) -> Option<Self> {
        match tok {
            "storage" => Some(DeviceKind::Storage),
            "local" => Some(DeviceKind::Local),
            "nic" => Some(DeviceKind::Nic),
            "array" => Some(DeviceKind::Array),
            _ => None,
        }
    }
}

/// A horizontal track in the trace: one timeline the UI draws.
///
/// The `Ord` impl fixes export order: run lane first, then ranks in
/// rank order, then devices, then the drain lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Whole-run control events (failures, recovery decisions).
    Run,
    /// One application rank's timeline.
    Rank(u32),
    /// One modeled device's timeline.
    Device(DeviceKind, u32),
    /// One service tenant's timeline (multi-tenant checkpoint store).
    Tenant(u32),
    /// The asynchronous drain pipeline to durable storage.
    Drain,
}

impl Lane {
    /// Stable track name, e.g. `rank3` or `dev:local:3`.
    pub fn label(&self) -> String {
        match self {
            Lane::Run => "run".to_string(),
            Lane::Rank(r) => format!("rank{r}"),
            Lane::Device(kind, idx) => format!("dev:{}:{idx}", kind.token()),
            Lane::Tenant(t) => format!("tenant{t}"),
            Lane::Drain => "drain".to_string(),
        }
    }

    /// Inverse of [`Lane::label`] — used to rebuild lanes (and
    /// therefore metrics) from a parsed JSONL export.
    pub fn parse(label: &str) -> Option<Lane> {
        match label {
            "run" => return Some(Lane::Run),
            "drain" => return Some(Lane::Drain),
            _ => {}
        }
        if let Some(r) = label.strip_prefix("rank") {
            return r.parse().ok().map(Lane::Rank);
        }
        if let Some(t) = label.strip_prefix("tenant") {
            return t.parse().ok().map(Lane::Tenant);
        }
        if let Some(rest) = label.strip_prefix("dev:") {
            let (kind, idx) = rest.rsplit_once(':')?;
            return Some(Lane::Device(DeviceKind::parse(kind)?, idx.parse().ok()?));
        }
        None
    }

    /// Deterministic Chrome-trace `tid` for this lane. Chosen so the
    /// numeric order matches the `Ord` order above.
    pub fn tid(&self) -> u64 {
        match self {
            Lane::Run => 0,
            Lane::Rank(r) => 1 + *r as u64,
            Lane::Device(kind, idx) => {
                let k = match kind {
                    DeviceKind::Storage => 0,
                    DeviceKind::Local => 1,
                    DeviceKind::Nic => 2,
                    DeviceKind::Array => 3,
                } as u64;
                1_000_000 + k * 100_000 + *idx as u64
            }
            Lane::Tenant(t) => 8_000_000 + *t as u64,
            Lane::Drain => 9_000_000,
        }
    }
}

/// A track is a lane within a group; a group is one simulated run
/// (an experiment exporting several runs gives each its own group, so
/// rank 0 of run A never interleaves with rank 0 of run B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackKey {
    /// Run group (Chrome-trace process).
    pub group: u32,
    /// Timeline within the group (Chrome-trace thread).
    pub lane: Lane,
}

/// Which storage level ultimately served a recovery, mirroring
/// `ickpt::cluster::RecoverySource` without depending on it (the
/// storage crate depends on this crate, not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryTier {
    /// The rank's own node-local tier survived.
    Local,
    /// Rebuilt from partner copies / XOR parity over the interconnect.
    Reconstructed,
    /// Read back from the shared durable array.
    Durable,
    /// No usable checkpoint: restart from initial state.
    ColdRestart,
}

impl RecoveryTier {
    /// Stable lowercase token used in serialized events.
    pub fn token(&self) -> &'static str {
        match self {
            RecoveryTier::Local => "local",
            RecoveryTier::Reconstructed => "reconstructed",
            RecoveryTier::Durable => "durable",
            RecoveryTier::ColdRestart => "cold_restart",
        }
    }

    /// Inverse of [`RecoveryTier::token`].
    pub fn parse(tok: &str) -> Option<Self> {
        match tok {
            "local" => Some(RecoveryTier::Local),
            "reconstructed" => Some(RecoveryTier::Reconstructed),
            "durable" => Some(RecoveryTier::Durable),
            "cold_restart" => Some(RecoveryTier::ColdRestart),
            _ => None,
        }
    }
}

/// Full vs incremental capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CaptureKind {
    /// Base checkpoint of every live page.
    Full,
    /// Dirty pages since the parent generation.
    Incremental,
}

impl CaptureKind {
    /// Stable lowercase token used in serialized events.
    pub fn token(&self) -> &'static str {
        match self {
            CaptureKind::Full => "full",
            CaptureKind::Incremental => "incremental",
        }
    }

    /// Inverse of [`CaptureKind::token`].
    pub fn parse(tok: &str) -> Option<Self> {
        match tok {
            "full" => Some(CaptureKind::Full),
            "incremental" => Some(CaptureKind::Incremental),
            _ => None,
        }
    }
}

/// One recorded occurrence. Duration-less events render as Chrome
/// instants; events recorded with a span render as complete slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A simulated run began on this group.
    RunStart {
        /// Number of ranks in the run.
        ranks: u32,
    },
    /// An application iteration boundary collective completed.
    IterationBoundary {
        /// Iteration index (0-based).
        iteration: u64,
    },
    /// One tracker timeslice window closed (the §4.2 alarm fired).
    TrackerWindow {
        /// Window index since run start.
        index: u64,
        /// Incremental working set of the window, pages.
        iws_pages: u64,
        /// Mapped footprint at window close, pages.
        footprint_pages: u64,
        /// Protection faults taken inside the window.
        faults: u64,
    },
    /// A checkpoint image was captured from the address space.
    Capture {
        /// Full or incremental.
        kind: CaptureKind,
        /// Generation number.
        generation: u64,
        /// Non-zero pages stored in the chunk.
        pages: u64,
        /// Encoded chunk size, bytes.
        payload_bytes: u64,
    },
    /// The content layer dropped dirty pages whose bytes were unchanged
    /// since the baseline (silent same-value writes).
    DedupSkip {
        /// Generation being captured.
        generation: u64,
        /// Dirty pages dropped before storage.
        pages: u64,
        /// Bytes dirty-bit accounting would have shipped for them.
        bytes_saved: u64,
    },
    /// The content layer shipped partially-written pages as sub-page
    /// delta records instead of whole pages.
    DeltaEncode {
        /// Generation being captured.
        generation: u64,
        /// Pages delta-encoded.
        pages: u64,
        /// Changed blocks stored across those pages.
        blocks: u64,
        /// Whole-page bytes avoided, net of stored blocks and headers.
        bytes_saved: u64,
    },
    /// The rank blocked on an in-flight checkpoint (forced wait or
    /// copy-on-write drag); the span covers the blocked interval.
    CheckpointStall {
        /// Generation being waited on.
        generation: u64,
    },
    /// Commit barrier for a generation released on this rank.
    CommitBarrier {
        /// Generation committed.
        generation: u64,
    },
    /// A chunk write reached stable storage.
    ChunkPut {
        /// Generation of the chunk.
        generation: u64,
        /// Encoded bytes written.
        bytes: u64,
        /// Virtual ns spent queued behind earlier transfers.
        queue_wait_ns: u64,
        /// Virtual ns of wire/latency service time.
        service_ns: u64,
    },
    /// A chunk read from stable storage (restore path).
    ChunkGet {
        /// Generation of the chunk.
        generation: u64,
        /// Encoded bytes read.
        bytes: u64,
        /// Virtual ns spent queued behind earlier transfers.
        queue_wait_ns: u64,
        /// Virtual ns of wire/latency service time.
        service_ns: u64,
    },
    /// A manifest write reached stable storage.
    ManifestPut {
        /// Generation of the manifest.
        generation: u64,
        /// Encoded bytes written.
        bytes: u64,
    },
    /// A device serviced one transfer (emitted on the device's lane).
    DeviceTransfer {
        /// Payload bytes moved.
        bytes: u64,
        /// Virtual ns the transfer waited for the device to free up.
        queue_wait_ns: u64,
        /// Virtual ns of service (wire + latency).
        service_ns: u64,
    },
    /// Redundancy data (partner copy or parity) published over the
    /// interconnect at checkpoint time.
    RedundancyPublish {
        /// Generation published.
        generation: u64,
        /// Bytes pushed to peers.
        bytes: u64,
    },
    /// A lost rank's checkpoint was rebuilt from surviving pieces.
    RedundancyReconstruct {
        /// Generation reconstructed.
        generation: u64,
        /// Surviving pieces combined.
        pieces: u32,
        /// Bytes pulled over the interconnect to rebuild.
        bytes: u64,
    },
    /// One drain batch flushed committed generations to the array;
    /// the span covers commit-time → drain-completion.
    DrainBatch {
        /// Committed generations flushed in this batch.
        generations: u64,
        /// Chunks written to the durable array.
        chunks: u64,
        /// Bytes written to the durable array.
        bytes: u64,
    },
    /// Drain queue depth (pending generations) after an enqueue or
    /// flush — sampled, not continuous.
    DrainQueueDepth {
        /// Generations waiting to drain.
        depth: u64,
    },
    /// In-flight drain batches rolled back by a failure: their
    /// generations were partially written ("torn") and must re-drain
    /// after recovery.
    DrainTorn {
        /// Generations whose drain was interrupted.
        generations: u64,
        /// Bytes of partially-written batch data discarded.
        bytes: u64,
    },
    /// A tenant's checkpoint request passed service admission and its
    /// stripe chunks were queued on the scheduler.
    AdmissionGrant {
        /// Tenant id within the service.
        tenant: u32,
        /// Request payload bytes admitted.
        bytes: u64,
        /// Stripe chunks the request was split into.
        chunks: u64,
    },
    /// A tenant's checkpoint request was deferred by admission (token
    /// debt or the global in-flight cap).
    AdmissionReject {
        /// Tenant id within the service.
        tenant: u32,
        /// Request payload bytes that were refused for now.
        bytes: u64,
        /// Virtual ns until the scheduled retry.
        retry_ns: u64,
    },
    /// A tenant job was blocked from its request instant until the
    /// service made the checkpoint durable; the span covers the whole
    /// blocked interval.
    TenantStall {
        /// Tenant id within the service.
        tenant: u32,
        /// Request payload bytes the tenant waited on.
        bytes: u64,
    },
    /// Bytes a recovery read charged against one tier.
    RecoveryRead {
        /// Which tier served the read.
        tier: RecoveryTier,
        /// Bytes read.
        bytes: u64,
    },
    /// The recovery planner chose a source for a rank.
    RecoveryPlan {
        /// Rank being recovered.
        rank: u32,
        /// Chosen source tier.
        tier: RecoveryTier,
        /// Generation targeted (0 for cold restart).
        generation: u64,
    },
    /// A rank's address space was rebuilt from storage; span covers
    /// the virtual time the rollback read+apply took.
    Restore {
        /// Generation restored to.
        generation: u64,
        /// Chunks in the applied chain.
        chain: u64,
        /// Pages written into the space.
        pages: u64,
        /// Bytes read from storage.
        bytes: u64,
    },
    /// A failure was injected.
    Failure {
        /// Rank that failed.
        rank: u32,
        /// 1 if the node's local tier was lost too, else 0.
        node_loss: u32,
    },
    /// A named monotone counter sample.
    Counter {
        /// Counter name (static so events stay `Copy`).
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
    /// A health-monitor SLO rule was violated in one metrics window
    /// (emitted on the run lane at the window's end).
    SloBreach {
        /// Violated rule's name (static so events stay `Copy`).
        rule: &'static str,
        /// Metrics window index (`ts / window_ns`).
        window: u64,
        /// Measured value (unit depends on the rule).
        value: u64,
        /// The rule's limit in the same unit.
        limit: u64,
    },
}

impl Event {
    /// Stable event-type token (the `name` field in exports).
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::IterationBoundary { .. } => "iteration",
            Event::TrackerWindow { .. } => "tracker_window",
            Event::Capture { .. } => "capture",
            Event::DedupSkip { .. } => "dedup_skip",
            Event::DeltaEncode { .. } => "delta_encode",
            Event::CheckpointStall { .. } => "ckpt_stall",
            Event::CommitBarrier { .. } => "commit",
            Event::ChunkPut { .. } => "chunk_put",
            Event::ChunkGet { .. } => "chunk_get",
            Event::ManifestPut { .. } => "manifest_put",
            Event::DeviceTransfer { .. } => "transfer",
            Event::RedundancyPublish { .. } => "publish",
            Event::RedundancyReconstruct { .. } => "reconstruct",
            Event::DrainBatch { .. } => "drain_batch",
            Event::DrainQueueDepth { .. } => "drain_depth",
            Event::DrainTorn { .. } => "drain_torn",
            Event::AdmissionGrant { .. } => "admit",
            Event::AdmissionReject { .. } => "reject",
            Event::TenantStall { .. } => "tenant_stall",
            Event::RecoveryRead { .. } => "recovery_read",
            Event::RecoveryPlan { .. } => "recovery_plan",
            Event::Restore { .. } => "restore",
            Event::Failure { .. } => "failure",
            Event::Counter { .. } => "counter",
            Event::SloBreach { .. } => "slo_breach",
        }
    }

    /// Append the event's argument object (`{"k":v,...}`) as JSON.
    /// Field order is fixed by this function, so serialization is
    /// byte-deterministic.
    pub fn write_args(&self, out: &mut String) {
        use std::fmt::Write;
        out.push('{');
        match *self {
            Event::RunStart { ranks } => {
                let _ = write!(out, "\"ranks\":{ranks}");
            }
            Event::IterationBoundary { iteration } => {
                let _ = write!(out, "\"iteration\":{iteration}");
            }
            Event::TrackerWindow { index, iws_pages, footprint_pages, faults } => {
                let _ = write!(
                    out,
                    "\"index\":{index},\"iws_pages\":{iws_pages},\"footprint_pages\":{footprint_pages},\"faults\":{faults}"
                );
            }
            Event::Capture { kind, generation, pages, payload_bytes } => {
                let _ = write!(
                    out,
                    "\"kind\":\"{}\",\"generation\":{generation},\"pages\":{pages},\"payload_bytes\":{payload_bytes}",
                    kind.token()
                );
            }
            Event::DedupSkip { generation, pages, bytes_saved } => {
                let _ = write!(
                    out,
                    "\"generation\":{generation},\"pages\":{pages},\"bytes_saved\":{bytes_saved}"
                );
            }
            Event::DeltaEncode { generation, pages, blocks, bytes_saved } => {
                let _ = write!(
                    out,
                    "\"generation\":{generation},\"pages\":{pages},\"blocks\":{blocks},\"bytes_saved\":{bytes_saved}"
                );
            }
            Event::CheckpointStall { generation } => {
                let _ = write!(out, "\"generation\":{generation}");
            }
            Event::CommitBarrier { generation } => {
                let _ = write!(out, "\"generation\":{generation}");
            }
            Event::ChunkPut { generation, bytes, queue_wait_ns, service_ns }
            | Event::ChunkGet { generation, bytes, queue_wait_ns, service_ns } => {
                let _ = write!(
                    out,
                    "\"generation\":{generation},\"bytes\":{bytes},\"queue_wait_ns\":{queue_wait_ns},\"service_ns\":{service_ns}"
                );
            }
            Event::ManifestPut { generation, bytes } => {
                let _ = write!(out, "\"generation\":{generation},\"bytes\":{bytes}");
            }
            Event::DeviceTransfer { bytes, queue_wait_ns, service_ns } => {
                let _ = write!(
                    out,
                    "\"bytes\":{bytes},\"queue_wait_ns\":{queue_wait_ns},\"service_ns\":{service_ns}"
                );
            }
            Event::RedundancyPublish { generation, bytes } => {
                let _ = write!(out, "\"generation\":{generation},\"bytes\":{bytes}");
            }
            Event::RedundancyReconstruct { generation, pieces, bytes } => {
                let _ = write!(
                    out,
                    "\"generation\":{generation},\"pieces\":{pieces},\"bytes\":{bytes}"
                );
            }
            Event::DrainBatch { generations, chunks, bytes } => {
                let _ = write!(
                    out,
                    "\"generations\":{generations},\"chunks\":{chunks},\"bytes\":{bytes}"
                );
            }
            Event::DrainQueueDepth { depth } => {
                let _ = write!(out, "\"depth\":{depth}");
            }
            Event::DrainTorn { generations, bytes } => {
                let _ = write!(out, "\"generations\":{generations},\"bytes\":{bytes}");
            }
            Event::AdmissionGrant { tenant, bytes, chunks } => {
                let _ = write!(out, "\"tenant\":{tenant},\"bytes\":{bytes},\"chunks\":{chunks}");
            }
            Event::AdmissionReject { tenant, bytes, retry_ns } => {
                let _ =
                    write!(out, "\"tenant\":{tenant},\"bytes\":{bytes},\"retry_ns\":{retry_ns}");
            }
            Event::TenantStall { tenant, bytes } => {
                let _ = write!(out, "\"tenant\":{tenant},\"bytes\":{bytes}");
            }
            Event::RecoveryRead { tier, bytes } => {
                let _ = write!(out, "\"tier\":\"{}\",\"bytes\":{bytes}", tier.token());
            }
            Event::RecoveryPlan { rank, tier, generation } => {
                let _ = write!(
                    out,
                    "\"rank\":{rank},\"tier\":\"{}\",\"generation\":{generation}",
                    tier.token()
                );
            }
            Event::Restore { generation, chain, pages, bytes } => {
                let _ = write!(
                    out,
                    "\"generation\":{generation},\"chain\":{chain},\"pages\":{pages},\"bytes\":{bytes}"
                );
            }
            Event::Failure { rank, node_loss } => {
                let _ = write!(out, "\"rank\":{rank},\"node_loss\":{node_loss}");
            }
            Event::Counter { name, value } => {
                let _ = write!(out, "\"counter\":\"{name}\",\"value\":{value}");
            }
            Event::SloBreach { rule, window, value, limit } => {
                let _ = write!(
                    out,
                    "\"rule\":\"{rule}\",\"window\":{window},\"value\":{value},\"limit\":{limit}"
                );
            }
        }
        out.push('}');
    }
}

/// An [`Event`] stamped with virtual time. `dur == 0` exports as an
/// instant; `dur > 0` as a complete slice `[ts, ts+dur]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual start instant.
    pub ts: SimTime,
    /// Virtual extent (zero for instants).
    pub dur: SimDuration,
    /// What happened.
    pub event: Event,
}
