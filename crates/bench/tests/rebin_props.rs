//! Property tests: the trace engine's re-binned reports equal the
//! direct per-timeslice simulation.
//!
//! For randomized workloads, cluster sizes and every paper timeslice
//! {1,2,5,10,15,20} s, one fine-grained (1 s) trace recording is
//! re-binned and compared bit-exact against a fresh direct simulation
//! at the coarse timeslice:
//!
//! * per-sample `(window, end_time, iws_pages, footprint_pages,
//!   bytes_received)` — including the trailing partial-window flush;
//! * [`IbStats`] with the standard initialization-burst exclusion
//!   (`skip_until`), down to the bit pattern of every float;
//! * per-rank scalars (`final_time`, `iterations`, `footprint_pages`,
//!   `bytes_received`) and the truncated iteration ground truth.
//!
//! `faults` fields are deliberately NOT compared: a direct run can
//! fault more than once per page per window after unmap–remap–retouch,
//! while derived samples define `faults = iws_pages`; no experiment
//! consumes them.

use ickpt::apps::Workload;
use ickpt::cluster::{characterize, CharacterizationConfig, RunReport};
use ickpt::core::metrics::IbStats;
use ickpt::sim::{SimDuration, SplitMix64};
use ickpt_bench::engine::WorkloadTrace;
use ickpt_bench::skip_until;

const PAPER_TIMESLICES: [u64; 6] = [1, 2, 5, 10, 15, 20];

fn fine_config(
    nranks: usize,
    scale: f64,
    run_for: SimDuration,
    seed: u64,
) -> CharacterizationConfig {
    CharacterizationConfig {
        nranks,
        scale,
        run_for,
        timeslice: SimDuration::from_secs(1),
        seed,
        track_iterations: true,
        trace_ranks: nranks, // trace every rank: tests the full engine
        ..Default::default()
    }
}

/// Compare a derived report against a direct simulation, bit-exact on
/// everything an experiment consumes.
fn assert_reports_match(
    w: Workload,
    derived: &RunReport,
    direct: &RunReport,
    timeslice_s: u64,
    ctx: &str,
) {
    assert_eq!(derived.ranks.len(), direct.ranks.len(), "{ctx}: rank count");
    for (dr, tr) in derived.ranks.iter().zip(&direct.ranks) {
        let r = dr.rank;
        assert_eq!(dr.final_time, tr.final_time, "{ctx}: rank {r} final_time");
        assert_eq!(dr.iterations, tr.iterations, "{ctx}: rank {r} iterations");
        assert_eq!(dr.footprint_pages, tr.footprint_pages, "{ctx}: rank {r} footprint");
        assert_eq!(dr.bytes_received, tr.bytes_received, "{ctx}: rank {r} bytes_received");
        assert_eq!(
            dr.iteration_samples, tr.iteration_samples,
            "{ctx}: rank {r} iteration ground truth"
        );
    }
    // Sample series: the engine derives rank 0 (what experiments read).
    let ds = &derived.ranks[0].samples;
    let ts = &direct.ranks[0].samples;
    assert_eq!(ds.len(), ts.len(), "{ctx}: rank 0 sample count");
    for (a, b) in ds.iter().zip(ts) {
        assert_eq!(
            (a.window, a.end_time, a.iws_pages, a.footprint_pages, a.bytes_received),
            (b.window, b.end_time, b.iws_pages, b.footprint_pages, b.bytes_received),
            "{ctx}: rank 0 window {}",
            b.window
        );
    }
    // And the statistic every table/figure is computed from, bit-exact.
    let timeslice = SimDuration::from_secs(timeslice_s);
    let da = IbStats::from_samples(ds, timeslice, skip_until(w));
    let db = IbStats::from_samples(ts, timeslice, skip_until(w));
    assert_eq!(da.avg_mbps.to_bits(), db.avg_mbps.to_bits(), "{ctx}: avg IB");
    assert_eq!(da.max_mbps.to_bits(), db.max_mbps.to_bits(), "{ctx}: max IB");
    assert_eq!(da.avg_ratio_percent.to_bits(), db.avg_ratio_percent.to_bits(), "{ctx}: IWS ratio");
}

/// One scenario: record once at 1 s, then check every paper timeslice
/// against a direct run.
fn check_scenario(w: Workload, nranks: usize, scale: f64, run_secs: u64, seed: u64) {
    let horizon = SimDuration::from_secs(run_secs.max(PAPER_TIMESLICES.into_iter().max().unwrap()));
    let fine = characterize(w, &fine_config(nranks, scale, horizon, seed));
    // Re-bin every rank's trace directly against the direct run's
    // samples (the engine itself only derives rank 0).
    let traces: Vec<_> = fine.ranks.iter().map(|r| r.trace.clone().expect("traced")).collect();
    let wt = WorkloadTrace::from_report(fine);

    for ts in PAPER_TIMESLICES {
        let run_for = SimDuration::from_secs(run_secs);
        let ctx = format!("{w:?} nranks={nranks} scale={scale} ts={ts}s seed={seed:#x}");
        let derived = wt.report_at(SimDuration::from_secs(ts), run_for, true);
        let direct = characterize(
            w,
            &CharacterizationConfig {
                nranks,
                scale,
                run_for,
                timeslice: SimDuration::from_secs(ts),
                seed,
                track_iterations: true,
                ..Default::default()
            },
        );
        assert_reports_match(w, &derived, &direct, ts, &ctx);
        for (r, trace) in traces.iter().enumerate() {
            let stop = direct.ranks[r].final_time;
            let rebinned = trace.rebin_with_flush(SimDuration::from_secs(ts), stop);
            let direct_samples = &direct.ranks[r].samples;
            assert_eq!(rebinned.len(), direct_samples.len(), "{ctx}: rank {r} rebin count");
            for (a, b) in rebinned.iter().zip(direct_samples) {
                assert_eq!(
                    (a.window, a.end_time, a.iws_pages, a.footprint_pages, a.bytes_received),
                    (b.window, b.end_time, b.iws_pages, b.footprint_pages, b.bytes_received),
                    "{ctx}: rank {r} window {}",
                    b.window
                );
            }
        }
    }
}

#[test]
fn rebin_matches_direct_on_sage_with_unmap_churn() {
    // Sage's workspace free/realloc cycle exercises §4.2 memory
    // exclusion: raw unmap ranges must erase accumulated dirty state
    // mid-window exactly.
    check_scenario(Workload::Sage50, 2, 0.04, 47, 0x5eed_0001);
    check_scenario(Workload::Sage100, 1, 0.02, 61, 0x5eed_0002);
}

#[test]
fn rebin_matches_direct_on_dense_short_period_codes() {
    // NAS codes rewrite most of the footprint every sub-second
    // iteration — maximal overlap between consecutive fine slices.
    check_scenario(Workload::NasLu, 2, 0.05, 33, 0x5eed_0003);
    check_scenario(Workload::NasFt, 2, 0.03, 29, 0x5eed_0004);
}

#[test]
fn rebin_matches_direct_on_sweep3d_pipeline() {
    check_scenario(Workload::Sweep3d, 3, 0.03, 41, 0x5eed_0005);
}

#[test]
fn rebin_matches_direct_across_randomized_scenarios() {
    // Randomized sweep: workload, rank count, scale, run length and
    // seed all drawn from a seeded generator.
    let mut rng = SplitMix64::new(0x1DC4_2004);
    let pool =
        [Workload::Sage50, Workload::NasSp, Workload::NasBt, Workload::Sweep3d, Workload::NasLu];
    for _ in 0..4 {
        let w = pool[rng.next_below(pool.len() as u64) as usize];
        let nranks = 1 + rng.next_below(3) as usize;
        let scale = 0.02 + 0.01 * rng.next_below(3) as f64;
        let run_secs = 25 + rng.next_below(40);
        check_scenario(w, nranks, scale, run_secs, rng.next_u64());
    }
}

#[test]
fn rebin_is_exact_at_the_skip_until_boundary() {
    // A run length near skip_until(w) puts the exclusion boundary in
    // the middle of the sampled windows: IbStats must skip identical
    // sample sets on both paths (exercised inside check_scenario via
    // the bit-exact IbStats comparison).
    let w = Workload::NasBt;
    let skip = skip_until(w).as_secs_f64().ceil() as u64;
    check_scenario(w, 2, 0.04, skip + 13, 0x5eed_0006);
    check_scenario(w, 2, 0.04, skip + 1, 0x5eed_0007);
}
