//! # ickpt-bench — the experiment harness
//!
//! One bench target per table/figure of the paper (all `harness =
//! false`, so `cargo bench` regenerates everything), plus criterion
//! micro-benchmarks and ablation studies. This library holds the shared
//! glue: standard run configurations, IB statistics extraction with the
//! paper's initialization-burst exclusion, and result formatting.
//!
//! ## Environment knobs
//!
//! The defaults reproduce the paper's configuration (64 ranks, full
//! footprints). On small machines override with:
//!
//! * `ICKPT_BENCH_RANKS` — cluster size (default 64).
//! * `ICKPT_BENCH_SCALE` — memory scale factor (default 1.0).
//! * `ICKPT_BENCH_PERIODS` — main-iteration periods to simulate per
//!   run (default 6).

pub mod experiments;

use ickpt::apps::Workload;
use ickpt::cluster::{characterize, CharacterizationConfig, RunReport};
use ickpt::core::metrics::IbStats;
use ickpt::sim::{SimDuration, SimTime};

/// Seed used by every experiment (runs are pure functions of it).
pub const BENCH_SEED: u64 = 0x1DC4_2004;

/// Cluster size for experiments (the paper's largest is 64).
pub fn bench_ranks() -> usize {
    std::env::var("ICKPT_BENCH_RANKS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Memory scale factor (1.0 = the paper's footprints).
pub fn bench_scale() -> f64 {
    std::env::var("ICKPT_BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}

/// Periods per run.
pub fn bench_periods() -> f64 {
    std::env::var("ICKPT_BENCH_PERIODS").ok().and_then(|v| v.parse().ok()).unwrap_or(6.0)
}

/// Virtual run length for a workload at a given timeslice: enough
/// periods for stable statistics and enough windows for long
/// timeslices.
pub fn run_length(w: Workload, timeslice_s: u64) -> SimDuration {
    let by_period = bench_periods() * w.calib().period_s;
    let by_windows = 25.0 * timeslice_s as f64;
    SimDuration::from_secs_f64(by_period.max(by_windows).max(60.0))
}

/// The instant up to which samples are excluded from IB statistics:
/// past the data-initialization burst (§6.3 excludes it) plus one full
/// iteration of warm-up.
pub fn skip_until(w: Workload) -> SimTime {
    // Initialization sweeps the footprint at ~400 MB/s (scale cancels).
    let init_s = w.calib().footprint_avg_mb / 400.0;
    SimTime::from_secs_f64(init_s + w.calib().period_s + 1.0)
}

/// Standard characterization config for a workload/timeslice.
pub fn standard_config(w: Workload, timeslice_s: u64) -> CharacterizationConfig {
    CharacterizationConfig {
        nranks: bench_ranks(),
        scale: bench_scale(),
        run_for: run_length(w, timeslice_s),
        timeslice: SimDuration::from_secs(timeslice_s),
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// Run a workload at a timeslice and return the full report.
pub fn run(w: Workload, timeslice_s: u64) -> RunReport {
    characterize(w, &standard_config(w, timeslice_s))
}

/// Rank-0 IB statistics with the standard exclusion, rescaled back to
/// paper-equivalent MB/s when `ICKPT_BENCH_SCALE` shrinks memory.
pub fn ib_stats(w: Workload, report: &RunReport, timeslice_s: u64) -> IbStats {
    let raw = IbStats::from_samples(
        &report.ranks[0].samples,
        SimDuration::from_secs(timeslice_s),
        skip_until(w),
    );
    let rescale = 1.0 / bench_scale();
    IbStats {
        avg_mbps: raw.avg_mbps * rescale,
        max_mbps: raw.max_mbps * rescale,
        // Ratios are scale-free.
        ..raw
    }
}

/// Footprint (max, avg) in paper-equivalent MB from rank 0's samples.
pub fn footprint_mb(report: &RunReport) -> (f64, f64) {
    let (max, avg) = ickpt::core::metrics::footprint_stats(&report.ranks[0].samples);
    let rescale = 1.0 / bench_scale();
    (max * rescale, avg * rescale)
}

/// Print the standard bench banner.
pub fn banner(what: &str) {
    println!();
    println!("=== {what} ===");
    println!(
        "    config: {} ranks, scale {}, seed {:#x}",
        bench_ranks(),
        bench_scale(),
        BENCH_SEED
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_lengths_cover_periods_and_windows() {
        let sage = run_length(Workload::Sage1000, 1);
        assert!(sage.as_secs_f64() >= 6.0 * 145.0);
        let sp20 = run_length(Workload::NasSp, 20);
        assert!(sp20.as_secs_f64() >= 500.0, "needs 25 windows of 20 s");
    }

    #[test]
    fn skip_clears_init_and_warmup() {
        let s = skip_until(Workload::Sage1000);
        assert!(s.as_secs_f64() > 145.0);
        let s = skip_until(Workload::NasLu);
        assert!(s.as_secs_f64() > 1.0 && s.as_secs_f64() < 10.0);
    }
}
