//! # ickpt-bench — the experiment harness
//!
//! One bench target per table/figure of the paper (all `harness =
//! false`, so `cargo bench` regenerates everything), plus criterion
//! micro-benchmarks and ablation studies. This library holds the shared
//! glue: standard run configurations, IB statistics extraction with the
//! paper's initialization-burst exclusion, and result formatting.
//!
//! ## Environment knobs
//!
//! The defaults reproduce the paper's configuration (64 ranks, full
//! footprints). On small machines override with:
//!
//! * `ICKPT_BENCH_RANKS` — cluster size (default 64).
//! * `ICKPT_BENCH_SCALE` — memory scale factor (default 1.0).
//! * `ICKPT_BENCH_PERIODS` — main-iteration periods to simulate per
//!   run (default 6).
//! * `ICKPT_BENCH_THREADS` — experiment scheduler threads (default:
//!   available parallelism). Results are byte-identical at any value.
//! * `ICKPT_BENCH_NATIVE` — set to `1` to run the real-`mprotect`
//!   native intrusiveness measurement (host-dependent; off by
//!   default so the suite is a pure function of the seed).
//!
//! A malformed knob aborts with a clear message rather than silently
//! running the default configuration (`ICKPT_BENCH_RANKS=6.4` used to
//! quietly simulate 64 ranks).

pub mod engine;
pub mod experiments;
pub mod obs_glue;

pub use obs_glue::{set_trace_enabled, trace_enabled, TraceBuilder};

use ickpt::apps::Workload;
use ickpt::cluster::{CharacterizationConfig, RunReport};
use ickpt::core::metrics::IbStats;
use ickpt::sim::{SimDuration, SimTime};

/// Seed used by every experiment (runs are pure functions of it).
pub const BENCH_SEED: u64 = 0x1DC4_2004;

/// Parse an env-knob value, rejecting garbage instead of swallowing it.
fn parse_knob<T: std::str::FromStr>(
    name: &str,
    raw: &str,
    expect: &str,
    valid: fn(&T) -> bool,
) -> Result<T, String> {
    match raw.trim().parse::<T>() {
        Ok(v) if valid(&v) => Ok(v),
        Ok(_) => Err(format!("{name}={raw:?} is out of range: expected {expect}")),
        Err(_) => Err(format!("{name}={raw:?} is invalid: expected {expect}")),
    }
}

/// Read an env knob strictly: unset → default, malformed → exit(2)
/// with a message naming the variable (never a silent fallback).
// The one sanctioned stderr write in a library crate: this aborts the
// process, so there is no report to return the message through.
#[allow(clippy::disallowed_macros)]
fn knob<T: std::str::FromStr>(name: &str, default: T, expect: &str, valid: fn(&T) -> bool) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => parse_knob(name, &raw, expect, valid).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    }
}

/// Cluster size for experiments (the paper's largest is 64).
pub fn bench_ranks() -> usize {
    knob("ICKPT_BENCH_RANKS", 64, "a whole number of ranks >= 1", |&r: &usize| r >= 1)
}

/// Memory scale factor (1.0 = the paper's footprints).
pub fn bench_scale() -> f64 {
    knob("ICKPT_BENCH_SCALE", 1.0, "a finite scale factor > 0", |&s: &f64| s > 0.0 && s.is_finite())
}

/// Periods per run.
pub fn bench_periods() -> f64 {
    knob("ICKPT_BENCH_PERIODS", 6.0, "a finite period count > 0", |&p: &f64| {
        p > 0.0 && p.is_finite()
    })
}

/// Experiment scheduler threads (default: available parallelism).
pub fn bench_threads() -> usize {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    knob("ICKPT_BENCH_THREADS", default, "a whole number of threads >= 1", |&t: &usize| t >= 1)
}

/// Virtual run length for a workload at a given timeslice: enough
/// periods for stable statistics and enough windows for long
/// timeslices.
pub fn run_length(w: Workload, timeslice_s: u64) -> SimDuration {
    let by_period = bench_periods() * w.calib().period_s;
    let by_windows = 25.0 * timeslice_s as f64;
    SimDuration::from_secs_f64(by_period.max(by_windows).max(60.0))
}

/// The instant up to which samples are excluded from IB statistics:
/// past the data-initialization burst (§6.3 excludes it) plus one full
/// iteration of warm-up.
pub fn skip_until(w: Workload) -> SimTime {
    // Initialization sweeps the footprint at ~400 MB/s (scale cancels).
    let init_s = w.calib().footprint_avg_mb / 400.0;
    SimTime::from_secs_f64(init_s + w.calib().period_s + 1.0)
}

/// Standard characterization config for a workload/timeslice.
pub fn standard_config(w: Workload, timeslice_s: u64) -> CharacterizationConfig {
    CharacterizationConfig {
        nranks: bench_ranks(),
        scale: bench_scale(),
        run_for: run_length(w, timeslice_s),
        timeslice: SimDuration::from_secs(timeslice_s),
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// Run a workload at a timeslice and return the full report. Served
/// from the trace engine: the workload is simulated once at fine
/// resolution and re-binned (property-tested bit-exact against
/// [`engine::run_direct`], the direct per-timeslice simulation).
pub fn run(w: Workload, timeslice_s: u64) -> RunReport {
    engine::run_cached(w, timeslice_s)
}

/// Rank-0 IB statistics with the standard exclusion, rescaled back to
/// paper-equivalent MB/s when `ICKPT_BENCH_SCALE` shrinks memory.
pub fn ib_stats(w: Workload, report: &RunReport, timeslice_s: u64) -> IbStats {
    let raw = IbStats::from_samples(
        &report.ranks[0].samples,
        SimDuration::from_secs(timeslice_s),
        skip_until(w),
    );
    let rescale = 1.0 / bench_scale();
    IbStats {
        avg_mbps: raw.avg_mbps * rescale,
        max_mbps: raw.max_mbps * rescale,
        // Ratios are scale-free.
        ..raw
    }
}

/// Footprint (max, avg) in paper-equivalent MB from rank 0's samples.
pub fn footprint_mb(report: &RunReport) -> (f64, f64) {
    let (max, avg) = ickpt::core::metrics::footprint_stats(&report.ranks[0].samples);
    let rescale = 1.0 / bench_scale();
    (max * rescale, avg * rescale)
}

/// The standard bench banner.
pub fn banner_string(what: &str) -> String {
    format!(
        "\n=== {what} ===\n    config: {} ranks, scale {}, seed {:#x}\n\n",
        bench_ranks(),
        bench_scale(),
        BENCH_SEED
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_lengths_cover_periods_and_windows() {
        let sage = run_length(Workload::Sage1000, 1);
        assert!(sage.as_secs_f64() >= 6.0 * 145.0);
        let sp20 = run_length(Workload::NasSp, 20);
        assert!(sp20.as_secs_f64() >= 500.0, "needs 25 windows of 20 s");
    }

    #[test]
    fn skip_clears_init_and_warmup() {
        let s = skip_until(Workload::Sage1000);
        assert!(s.as_secs_f64() > 145.0);
        let s = skip_until(Workload::NasLu);
        assert!(s.as_secs_f64() > 1.0 && s.as_secs_f64() < 10.0);
    }

    #[test]
    fn knob_parsing_is_strict() {
        let ranks = |raw: &str| {
            parse_knob::<usize>("ICKPT_BENCH_RANKS", raw, "a whole number of ranks >= 1", |&r| {
                r >= 1
            })
        };
        assert_eq!(ranks("64"), Ok(64));
        assert_eq!(ranks(" 8 "), Ok(8));
        // The historical bug: "6.4" must NOT silently become 64 ranks.
        let err = ranks("6.4").unwrap_err();
        assert!(err.contains("ICKPT_BENCH_RANKS") && err.contains("6.4"), "{err}");
        assert!(ranks("0").unwrap_err().contains("out of range"));
        assert!(ranks("").is_err() && ranks("sixty-four").is_err());

        let scale = |raw: &str| {
            parse_knob::<f64>("ICKPT_BENCH_SCALE", raw, "a finite scale factor > 0", |&s| {
                s > 0.0 && s.is_finite()
            })
        };
        assert_eq!(scale("0.05"), Ok(0.05));
        assert!(scale("-1").unwrap_err().contains("out of range"));
        assert!(scale("0").is_err() && scale("inf").is_err() && scale("NaN").is_err());
        assert!(scale("1,5").unwrap_err().contains("invalid"));

        let threads = |raw: &str| {
            parse_knob::<usize>(
                "ICKPT_BENCH_THREADS",
                raw,
                "a whole number of threads >= 1",
                |&t| t >= 1,
            )
        };
        assert_eq!(threads("4"), Ok(4));
        assert!(threads("0").is_err() && threads("auto").is_err());
    }
}
