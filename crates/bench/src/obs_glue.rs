//! Flight-recorder glue for the experiment harness.
//!
//! Experiments are pure functions returning rendered reports; trace
//! capture is opt-in (`repro --trace-out`, `redundancy_smoke
//! --trace-out`) via a process-wide flag checked by [`TraceBuilder`].
//! Each experiment owns one [`FlightRecorder`]; every run inside it
//! gets its own *group* (a Perfetto process), assigned in declaration
//! order so group numbering — and therefore the exported bytes — is
//! independent of which worker thread executes the run.
//!
//! Two capture styles coexist:
//!
//! * **Live** — fault-tolerant runs thread a [`Recorder`] straight into
//!   [`FaultTolerantConfig::obs`], so capture/stall/commit/drain/
//!   recovery events come from the instrumented hot paths.
//! * **Synthesized** — characterization experiments are served from the
//!   memoized trace engine, which predates any recorder; their reports
//!   carry everything the timeline needs (per-window samples, boundary
//!   clock pairs), so [`synthesize_into`] replays them as events. The
//!   result is indistinguishable in format from a live capture.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ickpt::cluster::{FailureKind, RunReport};
use ickpt::sim::SimTime;
use ickpt_analysis::TraceArtifacts;
use ickpt_obs::{
    chrome_trace, jsonl, Event, FlightRecorder, Lane, ObsSummary, Recorder, RecoveryTier,
};

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn trace capture on for every experiment in this process. Call
/// once, before the scheduler starts (the flag is read at
/// [`TraceBuilder::begin`] time).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Release);
}

/// Whether `--trace-out` capture is active.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Acquire)
}

/// Per-experiment trace capture: one flight recorder, one group per
/// run. All methods are no-ops when tracing is disabled, so call sites
/// stay unconditional.
pub struct TraceBuilder {
    fr: Option<Arc<FlightRecorder>>,
    next_group: u32,
}

impl TraceBuilder {
    /// Start a builder; records only if [`set_trace_enabled`] was set.
    pub fn begin() -> Self {
        let fr = trace_enabled().then(FlightRecorder::with_default_capacity);
        Self { fr, next_group: 0 }
    }

    /// Like [`TraceBuilder::begin`], but ring capacity is scaled down
    /// for a run with `nranks` rank tracks
    /// ([`FlightRecorder::for_ranks`]), keeping the recorder and its
    /// exports bounded for the 16k-rank extended experiments.
    pub fn begin_scaled(nranks: usize) -> Self {
        let fr = trace_enabled().then(|| FlightRecorder::for_ranks(nranks));
        Self { fr, next_group: 0 }
    }

    /// True when this builder actually records.
    pub fn enabled(&self) -> bool {
        self.fr.is_some()
    }

    /// A recorder for the next run, its group named `name`. Groups are
    /// handed out in call order, so allocate recorders *before* any
    /// parallel section to keep numbering deterministic. Disabled
    /// builders return a no-op recorder.
    pub fn recorder(&mut self, name: &str) -> Recorder {
        let group = self.next_group;
        self.next_group += 1;
        match &self.fr {
            Some(fr) => {
                fr.name_group(group, name);
                Recorder::new(fr.clone()).with_group(group)
            }
            None => Recorder::disabled(),
        }
    }

    /// Replay a finished run's report as trace events under a new
    /// group named `name` (for trace-engine-derived experiments with
    /// no live instrumentation).
    pub fn synthesize(&mut self, name: &str, report: &RunReport) {
        if !self.enabled() {
            return;
        }
        let rec = self.recorder(name);
        synthesize_into(&rec, report);
    }

    /// Snapshot, export and summarize everything recorded.
    pub fn finish(self) -> Option<TraceArtifacts> {
        let fr = self.fr?;
        let snap = fr.snapshot();
        Some(TraceArtifacts {
            chrome_json: chrome_trace(&snap),
            jsonl: jsonl(&snap),
            summary: ObsSummary::from_snapshot(&snap).render(),
        })
    }
}

/// Replay a [`RunReport`] as flight-recorder events: run start, per-
/// rank tracker windows (as timeslice spans ending at the sample
/// instant) and iteration boundaries, plus any recovery records. Used
/// for runs that executed without live instrumentation.
pub fn synthesize_into(rec: &Recorder, report: &RunReport) {
    if !rec.is_enabled() {
        return;
    }
    rec.emit(Lane::Run, SimTime::ZERO, Event::RunStart { ranks: report.ranks.len() as u32 });
    for rank in &report.ranks {
        let lane = Lane::Rank(rank.rank as u32);
        let mut prev_end = SimTime(rank.started_at.0);
        for s in &rank.samples {
            rec.emit_span(
                lane,
                prev_end,
                s.end_time.saturating_sub(prev_end),
                Event::TrackerWindow {
                    index: s.window,
                    iws_pages: s.iws_pages,
                    footprint_pages: s.footprint_pages,
                    faults: s.faults,
                },
            );
            prev_end = s.end_time;
        }
        for (i, b) in rank.boundaries.iter().enumerate() {
            rec.emit(lane, b.post, Event::IterationBoundary { iteration: i as u64 + 1 });
        }
    }
    for r in &report.recoveries {
        // Recovery timing is attempt-relative in the report; anchor the
        // plan at the failed attempt's index on the run lane.
        let at = SimTime(r.attempt as u64);
        rec.emit(
            Lane::Run,
            at,
            Event::Failure {
                rank: r.rank as u32,
                node_loss: (r.kind == FailureKind::NodeLoss) as u32,
            },
        );
        rec.emit(
            Lane::Run,
            at,
            Event::RecoveryPlan {
                rank: r.rank as u32,
                tier: source_tier(r),
                generation: r.generation.unwrap_or(0),
            },
        );
    }
}

fn source_tier(r: &ickpt::cluster::RecoveryRecord) -> RecoveryTier {
    r.source.obs_tier()
}

/// Slug an experiment display name into a filename stem:
/// `"Table 2 (memory footprints)"` → `"table-2-memory-footprints"`.
pub fn trace_slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Write one experiment's artifacts into `dir` as `<slug>.trace.json`
/// and `<slug>.jsonl`. Returns the two paths.
pub fn write_trace_files(
    dir: &std::path::Path,
    name: &str,
    t: &TraceArtifacts,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let slug = trace_slug(name);
    let chrome = dir.join(format!("{slug}.trace.json"));
    let lines = dir.join(format!("{slug}.jsonl"));
    std::fs::write(&chrome, &t.chrome_json)?;
    std::fs::write(&lines, &t.jsonl)?;
    Ok((chrome, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugging_is_stable() {
        assert_eq!(trace_slug("Table 2 (memory footprints)"), "table-2-memory-footprints");
        assert_eq!(trace_slug("Ablations (checkpoint system)"), "ablations-checkpoint-system");
        assert_eq!(trace_slug("  §6.5 -- intrusiveness  "), "6-5-intrusiveness");
    }
}
