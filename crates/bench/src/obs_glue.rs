//! Flight-recorder glue for the experiment harness.
//!
//! Experiments are pure functions returning rendered reports; trace
//! capture is opt-in (`repro --trace-out`, `redundancy_smoke
//! --trace-out`) via a process-wide flag checked by [`TraceBuilder`].
//! Each experiment owns one [`FlightRecorder`]; every run inside it
//! gets its own *group* (a Perfetto process), assigned in declaration
//! order so group numbering — and therefore the exported bytes — is
//! independent of which worker thread executes the run.
//!
//! Two capture styles coexist:
//!
//! * **Live** — fault-tolerant runs thread a [`Recorder`] straight into
//!   [`FaultTolerantConfig::obs`], so capture/stall/commit/drain/
//!   recovery events come from the instrumented hot paths.
//! * **Synthesized** — characterization experiments are served from the
//!   memoized trace engine, which predates any recorder; their reports
//!   carry everything the timeline needs (per-window samples, boundary
//!   clock pairs), so [`synthesize_into`] replays them as events. The
//!   result is indistinguishable in format from a live capture.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ickpt::cluster::{FailureKind, RunReport};
use ickpt::sim::SimTime;
use ickpt_analysis::TraceArtifacts;
use ickpt_obs::{
    chrome_trace, jsonl, Event, FlightRecorder, HealthMonitor, Lane, MetricsConfig, MetricsPlane,
    ObsSummary, Recorder, RecoveryTier,
};

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn trace capture on for every experiment in this process. Call
/// once, before the scheduler starts (the flag is read at
/// [`TraceBuilder::begin`] time).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Release);
}

/// Whether `--trace-out` capture is active.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Acquire)
}

/// Per-experiment trace capture: one flight recorder, one group per
/// run. All methods are no-ops when tracing is disabled, so call sites
/// stay unconditional.
///
/// When `ICKPT_METRICS` enables the metrics plane, the builder also
/// owns one [`MetricsPlane`] per experiment and tees every recorder it
/// hands out into it; [`TraceBuilder::finish`] then evaluates the
/// standard SLO envelope over each run's windows (emitting
/// `slo_breach` events back into the trace), replays the plane's
/// self-profile as `metrics_*` counters, and attaches the rendered
/// text snapshot to the artifacts. A metrics-only builder (knob on,
/// `--trace-out` absent) aggregates without retaining events.
pub struct TraceBuilder {
    fr: Option<Arc<FlightRecorder>>,
    plane: Option<Arc<MetricsPlane>>,
    next_group: u32,
}

impl TraceBuilder {
    /// Start a builder; records only if [`set_trace_enabled`] was set
    /// or `ICKPT_METRICS` enabled the metrics plane.
    pub fn begin() -> Self {
        let fr = trace_enabled().then(FlightRecorder::with_default_capacity);
        let plane = MetricsPlane::from_config(&MetricsConfig::from_env());
        Self { fr, plane, next_group: 0 }
    }

    /// Like [`TraceBuilder::begin`], but ring capacity is scaled down
    /// for a run with `nranks` rank tracks
    /// ([`FlightRecorder::for_ranks`]), keeping the recorder and its
    /// exports bounded for the 16k-rank extended experiments.
    pub fn begin_scaled(nranks: usize) -> Self {
        let fr = trace_enabled().then(|| FlightRecorder::for_ranks(nranks));
        let plane = MetricsPlane::from_config(&MetricsConfig::from_env());
        Self { fr, plane, next_group: 0 }
    }

    /// True when this builder actually records (trace, metrics, or
    /// both).
    pub fn enabled(&self) -> bool {
        self.fr.is_some() || self.plane.is_some()
    }

    /// A recorder for the next run, its group named `name`. Groups are
    /// handed out in call order, so allocate recorders *before* any
    /// parallel section to keep numbering deterministic. Disabled
    /// builders return a no-op recorder.
    pub fn recorder(&mut self, name: &str) -> Recorder {
        let group = self.next_group;
        self.next_group += 1;
        let mut rec = match &self.fr {
            Some(fr) => {
                fr.name_group(group, name);
                Recorder::new(fr.clone()).with_group(group)
            }
            None => Recorder::disabled().with_group(group),
        };
        if let Some(plane) = &self.plane {
            plane.name_group(group, name);
            rec = rec.with_metrics(plane.clone());
        }
        rec
    }

    /// Replay a finished run's report as trace events under a new
    /// group named `name` (for trace-engine-derived experiments with
    /// no live instrumentation).
    pub fn synthesize(&mut self, name: &str, report: &RunReport) {
        if !self.enabled() {
            return;
        }
        let rec = self.recorder(name);
        synthesize_into(&rec, report);
    }

    /// Snapshot, export and summarize everything recorded. With a
    /// metrics plane attached this first runs the standard
    /// [`HealthMonitor`] over every group (breach events land on each
    /// run lane, in the trace and the `slo_breaches` counter) and
    /// replays the plane's deterministic self-profile as a
    /// `metrics_*` counter track, *then* snapshots — so the exports
    /// include the health verdicts.
    pub fn finish(self) -> Option<TraceArtifacts> {
        if !self.enabled() {
            return None;
        }
        let metrics = self.plane.map(|plane| {
            let monitor = HealthMonitor::standard();
            let recorder_for = |group: u32| {
                let rec = match &self.fr {
                    Some(fr) => Recorder::new(fr.clone()),
                    None => Recorder::disabled(),
                };
                rec.with_group(group).with_metrics(plane.clone())
            };
            let groups = plane.groups();
            for &group in &groups {
                let Some(view) = plane.view(group) else { continue };
                monitor.evaluate_into(&view, &recorder_for(group));
            }
            // Self-profile: account the plane's own work (health
            // evaluation included) as a monotone counter track on the
            // first group's run lane, stamped at the overall horizon.
            if let Some(&first) = groups.first() {
                let meta = plane.meta();
                let at = SimTime(
                    groups
                        .iter()
                        .filter_map(|g| plane.view(*g))
                        .map(|v| v.horizon_ns())
                        .max()
                        .unwrap_or(0),
                );
                let rec = recorder_for(first);
                for (name, value) in [
                    ("metrics_events_ingested", meta.events_ingested),
                    ("metrics_updates", meta.metric_updates),
                    ("metrics_hist_records", meta.hist_records),
                ] {
                    rec.emit(Lane::Run, at, Event::Counter { name, value });
                }
            }
            plane.render_text()
        });
        let (chrome_json, jsonl, summary) = match self.fr {
            Some(fr) => {
                let snap = fr.snapshot();
                (chrome_trace(&snap), jsonl(&snap), ObsSummary::from_snapshot(&snap).render())
            }
            None => (String::new(), String::new(), String::new()),
        };
        Some(TraceArtifacts { chrome_json, jsonl, summary, metrics })
    }
}

/// Replay a [`RunReport`] as flight-recorder events: run start, per-
/// rank tracker windows (as timeslice spans ending at the sample
/// instant) and iteration boundaries, plus any recovery records. Used
/// for runs that executed without live instrumentation.
pub fn synthesize_into(rec: &Recorder, report: &RunReport) {
    if !rec.is_enabled() {
        return;
    }
    rec.emit(Lane::Run, SimTime::ZERO, Event::RunStart { ranks: report.ranks.len() as u32 });
    for rank in &report.ranks {
        let lane = Lane::Rank(rank.rank as u32);
        let mut prev_end = SimTime(rank.started_at.0);
        for s in &rank.samples {
            rec.emit_span(
                lane,
                prev_end,
                s.end_time.saturating_sub(prev_end),
                Event::TrackerWindow {
                    index: s.window,
                    iws_pages: s.iws_pages,
                    footprint_pages: s.footprint_pages,
                    faults: s.faults,
                },
            );
            prev_end = s.end_time;
        }
        for (i, b) in rank.boundaries.iter().enumerate() {
            rec.emit(lane, b.post, Event::IterationBoundary { iteration: i as u64 + 1 });
        }
    }
    for r in &report.recoveries {
        // Recovery timing is attempt-relative in the report; anchor the
        // plan at the failed attempt's index on the run lane.
        let at = SimTime(r.attempt as u64);
        rec.emit(
            Lane::Run,
            at,
            Event::Failure {
                rank: r.rank as u32,
                node_loss: (r.kind == FailureKind::NodeLoss) as u32,
            },
        );
        rec.emit(
            Lane::Run,
            at,
            Event::RecoveryPlan {
                rank: r.rank as u32,
                tier: source_tier(r),
                generation: r.generation.unwrap_or(0),
            },
        );
    }
}

fn source_tier(r: &ickpt::cluster::RecoveryRecord) -> RecoveryTier {
    r.source.obs_tier()
}

/// Slug an experiment display name into a filename stem:
/// `"Table 2 (memory footprints)"` → `"table-2-memory-footprints"`.
pub fn trace_slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Write one experiment's artifacts into `dir` as `<slug>.trace.json`
/// and `<slug>.jsonl`. Returns the two paths.
pub fn write_trace_files(
    dir: &std::path::Path,
    name: &str,
    t: &TraceArtifacts,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let slug = trace_slug(name);
    let chrome = dir.join(format!("{slug}.trace.json"));
    let lines = dir.join(format!("{slug}.jsonl"));
    std::fs::write(&chrome, &t.chrome_json)?;
    std::fs::write(&lines, &t.jsonl)?;
    Ok((chrome, lines))
}

/// Write one experiment's metrics snapshot into `dir` as
/// `<slug>.metrics.txt`, when the artifacts carry one. Returns the
/// path written, or `None` when the metrics plane was off.
pub fn write_metrics_file(
    dir: &std::path::Path,
    name: &str,
    t: &TraceArtifacts,
) -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(metrics) = &t.metrics else { return Ok(None) };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.metrics.txt", trace_slug(name)));
    std::fs::write(&path, metrics)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugging_is_stable() {
        assert_eq!(trace_slug("Table 2 (memory footprints)"), "table-2-memory-footprints");
        assert_eq!(trace_slug("Ablations (checkpoint system)"), "ablations-checkpoint-system");
        assert_eq!(trace_slug("  §6.5 -- intrusiveness  "), "6-5-intrusiveness");
    }
}
