//! `inspect` — operational tooling: examine and verify a checkpoint
//! directory produced by a `FileStore`-backed run.
//!
//! ```text
//! cargo run --release -p ickpt-bench --bin inspect -- <dir> [--rank N]
//! cargo run --release -p ickpt-bench --bin inspect -- --trace <file.jsonl>
//! cargo run --release -p ickpt-bench --bin inspect -- --metrics <file.jsonl> [--windows]
//! ```
//!
//! `--trace` switches to flight-recorder mode: parse a JSONL trace
//! written by `repro --trace-out` / `redundancy_smoke --trace-out` and
//! print per-run, per-track event statistics (event counts, busy span
//! time, virtual extent) plus an event-type histogram and a drain
//! overview (batches, bytes, queue depth, torn rollbacks).
//!
//! `--metrics` replays the same JSONL into a fresh metrics plane
//! ([`ickpt::obs::MetricsPlane`]) and prints each run's end-of-run
//! metric totals, latency quantiles and SLO health verdicts;
//! `--windows` adds the per-window rate series (IB, drain throughput,
//! device busy fraction, stalls). `ICKPT_METRICS=window=<secs>` picks
//! the window size (default 1 s). Output is deterministic for a given
//! trace file.
//!
//! Prints the committed generations (from manifests), each rank's
//! chunk chain with kinds, payload/zero-page sizes and lineage, and
//! verifies every chunk's CRC by decoding it. Broken parent links and
//! incomplete manifests are reported. Exit status is nonzero if any
//! integrity problem is found.
//!
//! **Tiered layouts** are detected automatically: a directory holding
//! `local-<rank>/` subdirectories (node-local tiers) plus `shared/`
//! (the durable array) gets a per-tier overview — own generations,
//! partner copies and XOR parity blocks each node holds — before the
//! shared tier is inspected as usual.

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use ickpt::storage::{
    Chunk, ChunkKey, ChunkKind, FileStore, Manifest, RestorePlan, StableStorage, PARITY_RANK_BASE,
};
use ickpt_analysis::table::fnum;
use ickpt_analysis::TextTable;

/// Per-rank listings above this count are elided (integrity checks
/// still cover every rank; an explicit "… N more" line replaces the
/// tables, never silent truncation). `--rank N` always lists rank N.
const MAX_LISTED_RANKS: usize = 8;

/// If `dir` is a tiered layout, print the node-local tier overview and
/// return the shared tier's path to inspect; otherwise return `dir`.
fn tiered_overview(dir: &str) -> String {
    let mut locals: Vec<(u32, std::path::PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(rank) = name.strip_prefix("local-").and_then(|r| r.parse().ok()) {
                if entry.path().is_dir() {
                    locals.push((rank, entry.path()));
                }
            }
        }
    }
    let shared = std::path::Path::new(dir).join("shared");
    if locals.is_empty() || !shared.is_dir() {
        return dir.to_string();
    }
    locals.sort_unstable_by_key(|(r, _)| *r);
    let nranks = locals.len() as u32;

    println!("tiered layout: {} node-local tiers + shared array", locals.len());
    let mut t = TextTable::new("node-local tiers").header(&[
        "tier",
        "own gens",
        "peer copies",
        "parity blocks",
        "manifests",
        "MB",
    ]);
    for (i, (rank, path)) in locals.iter().enumerate() {
        if i >= MAX_LISTED_RANKS {
            t.row(vec![
                format!("… {} more tiers elided", locals.len() - MAX_LISTED_RANKS),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
            ]);
            break;
        }
        let Ok(local) = FileStore::open(path) else {
            t.row(vec![
                format!("local-{rank}"),
                "?".into(),
                "?".into(),
                "?".into(),
                "?".into(),
                "unreadable".into(),
            ]);
            continue;
        };
        let own = local.list_generations(*rank).map(|g| g.len()).unwrap_or(0);
        let mut peer = 0usize;
        let mut parity = 0usize;
        let mut bytes = 0u64;
        for r in 0..nranks {
            let gens = |rk| local.list_generations(rk).unwrap_or_default();
            if r != *rank {
                peer += gens(r).len();
            }
            parity += gens(PARITY_RANK_BASE | r).len();
            for rk in [r, PARITY_RANK_BASE | r] {
                for g in gens(rk) {
                    bytes +=
                        local.get_chunk(ChunkKey::new(rk, g)).map(|d| d.len() as u64).unwrap_or(0);
                }
            }
        }
        let manifests = local.list_manifests().map(|m| m.len()).unwrap_or(0);
        t.row(vec![
            format!("local-{rank}"),
            own.to_string(),
            peer.to_string(),
            parity.to_string(),
            manifests.to_string(),
            fnum(bytes as f64 / 1e6, 2),
        ]);
    }
    println!("{}", t.render());
    println!("shared durable tier: {}", shared.display());
    shared.to_string_lossy().into_owned()
}

/// `inspect --trace`: summarize a JSONL flight-recorder export.
fn trace_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let events = match ickpt::obs::parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: malformed trace: {e}");
            return 1;
        }
    };
    println!("trace: {path}");
    // Per (run, track): count, busy (sum of span durations), extent.
    let mut tracks: std::collections::BTreeMap<(String, String), (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for ev in &events {
        let e = tracks.entry((ev.run.clone(), ev.track.clone())).or_default();
        e.0 += 1;
        e.1 += ev.dur;
        e.2 = e.2.max(ev.ts + ev.dur);
        *kinds.entry(ev.name.clone()).or_default() += 1;
    }
    let mut t = TextTable::new("tracks").header(&["run", "track", "events", "busy (s)", "end (s)"]);
    for ((run, track), (count, busy, end)) in &tracks {
        t.row(vec![
            run.clone(),
            track.clone(),
            count.to_string(),
            fnum(*busy as f64 / 1e9, 3),
            fnum(*end as f64 / 1e9, 3),
        ]);
    }
    println!("{}", t.render());
    let mut k = TextTable::new("event types").header(&["event", "count"]);
    for (name, count) in &kinds {
        k.row(vec![name.clone(), count.to_string()]);
    }
    println!("{}", k.render());
    // Drain overview per run: batches, bytes, deepest queue and —
    // when failures rolled drained generations back below the durable
    // horizon — the torn totals.
    #[derive(Default)]
    struct DrainAcc {
        batches: u64,
        generations: u64,
        bytes: u64,
        depth_max: u64,
        torn_generations: u64,
        torn_bytes: u64,
    }
    let arg = |ev: &ickpt::obs::ParsedEvent, key: &str| ev.arg_u64(key).unwrap_or(0);
    let mut drains: std::collections::BTreeMap<String, DrainAcc> =
        std::collections::BTreeMap::new();
    for ev in events.iter().filter(|ev| ev.track == "drain") {
        let a = drains.entry(ev.run.clone()).or_default();
        match ev.name.as_str() {
            "drain_batch" => {
                a.batches += 1;
                a.generations += arg(ev, "generations");
                a.bytes += arg(ev, "bytes");
            }
            "drain_depth" => a.depth_max = a.depth_max.max(arg(ev, "depth")),
            "drain_torn" => {
                a.torn_generations += arg(ev, "generations");
                a.torn_bytes += arg(ev, "bytes");
            }
            _ => {}
        }
    }
    if !drains.is_empty() {
        let mut d = TextTable::new("drain overview").header(&[
            "run",
            "batches",
            "gens",
            "MB drained",
            "depth max",
            "torn gens",
            "MB torn",
        ]);
        for (run, a) in &drains {
            d.row(vec![
                run.clone(),
                a.batches.to_string(),
                a.generations.to_string(),
                fnum(a.bytes as f64 / 1e6, 2),
                a.depth_max.to_string(),
                a.torn_generations.to_string(),
                fnum(a.torn_bytes as f64 / 1e6, 2),
            ]);
        }
        println!("{}", d.render());
    }
    println!(
        "total: {} events across {} tracks in {} runs",
        events.len(),
        tracks.len(),
        tracks.keys().map(|(r, _)| r.clone()).collect::<std::collections::BTreeSet<_>>().len()
    );
    0
}

/// Nearest-rank percentile of sorted ns samples.
fn pct_sorted(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct.min(100) * sorted.len() as u64).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// `inspect --metrics`: replay a JSONL trace into a fresh metrics
/// plane and print each run's end-of-run totals, latency quantiles
/// and SLO health verdicts; `--windows` adds the per-window rate
/// series. Groups are assigned by first appearance in line order, so
/// the output is deterministic for a given file.
fn metrics_report(path: &str, show_windows: bool) -> i32 {
    use ickpt::obs::{HealthMonitor, MetricLabel, MetricsConfig, MetricsPlane};

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let events = match ickpt::obs::parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: malformed trace: {e}");
            return 1;
        }
    };
    let plane = MetricsPlane::new(MetricsConfig::from_env().window);
    let mut group_of: Vec<String> = Vec::new(); // index = group id
    let mut skipped = 0usize;
    for ev in &events {
        let Some((lane, timed)) = ev.to_timed() else {
            skipped += 1;
            continue;
        };
        let group = match group_of.iter().position(|r| *r == ev.run) {
            Some(g) => g as u32,
            None => {
                let g = group_of.len() as u32;
                group_of.push(ev.run.clone());
                plane.name_group(g, &ev.run);
                g
            }
        };
        plane.ingest(group, lane, &timed);
    }
    println!(
        "metrics view: {path}  (window {} s, {} events replayed{})",
        plane.window_ns() / 1_000_000_000,
        events.len() - skipped,
        if skipped > 0 { format!(", {skipped} derived lines skipped") } else { String::new() }
    );

    let label_str = |l: &MetricLabel| match l {
        MetricLabel::None => String::new(),
        MetricLabel::Device(kind, idx) => format!(" [{}:{idx}]", kind.token()),
        MetricLabel::Tier(tier) => format!(" [{}]", tier.token()),
    };
    let monitor = HealthMonitor::standard();
    for group in plane.groups() {
        let Some(view) = plane.view(group) else { continue };
        let mut t =
            TextTable::new(format!("run {}: totals", view.name())).header(&["metric", "value"]);
        let mut row = |name: &str, value: String| {
            t.row(vec![name.to_string(), value]);
        };
        let counter_mb =
            |view: &ickpt::obs::MetricsView, n: &str| fnum(view.counter(n) as f64 / 1e6, 2);
        if view.gauge("ranks") > 0 {
            row("ranks", view.gauge("ranks").to_string());
        }
        for name in ["iterations", "captures", "commits", "restores", "failures"] {
            if view.counter(name) > 0 {
                row(name, view.counter(name).to_string());
            }
        }
        let (eff, dirty) = (view.counter("capture_bytes"), view.counter("dirty_bytes"));
        if dirty > 0 {
            row("effective IB (MB)", counter_mb(&view, "capture_bytes"));
            row("dirty-bit IB (MB)", counter_mb(&view, "dirty_bytes"));
            row("content ratio", fnum(eff as f64 / dirty as f64, 3));
        }
        if view.counter("drain_batches") > 0 {
            row("drain batches", view.counter("drain_batches").to_string());
            row("drained (MB)", counter_mb(&view, "drain_bytes"));
            row("drain depth max", view.gauge("drain_depth_max").to_string());
        }
        if view.counter("drain_torn_generations") > 0 {
            row("torn generations", view.counter("drain_torn_generations").to_string());
            row("torn (MB)", counter_mb(&view, "drain_torn_bytes"));
        }
        if view.counter("stall_ns") > 0 {
            row("stall total (s)", fnum(view.counter("stall_ns") as f64 / 1e9, 3));
        }
        for name in ["admits", "rejects", "tenant_checkpoints"] {
            if view.counter(name) > 0 {
                row(name, view.counter(name).to_string());
            }
        }
        for (label, v) in view.counters_labeled("recovery_plans") {
            row(&format!("recovery plans{}", label_str(&label)), v.to_string());
        }
        for (label, v) in view.counters_labeled("device_busy_ns") {
            row(&format!("device busy (s){}", label_str(&label)), fnum(v as f64 / 1e9, 3));
        }
        println!("{}", t.render());

        let mut q = TextTable::new(format!("run {}: latency quantiles", view.name())).header(&[
            "histogram",
            "samples",
            "p50 (ms)",
            "p90 (ms)",
            "p99 (ms)",
            "max (ms)",
        ]);
        let mut any = false;
        for name in [
            "stall_ns",
            "capture_cost_ns",
            "drain_batch_ns",
            "admission_wait_ns",
            "tenant_stall_ns",
        ] {
            let Some(h) = view.histogram(name) else { continue };
            any = true;
            let ms = |v: Option<u64>| fnum(v.unwrap_or(0) as f64 / 1e6, 2);
            q.row(vec![
                name.to_string(),
                h.count().to_string(),
                ms(h.quantile(50)),
                ms(h.quantile(90)),
                ms(h.quantile(99)),
                ms(h.max()),
            ]);
        }
        if any {
            println!("{}", q.render());
        }

        let breaches = monitor.evaluate(&view);
        if breaches.is_empty() {
            println!(
                "  health: all {} SLO rules pass over {} windows",
                monitor.rules().len(),
                view.window_count()
            );
        } else {
            let mut b = TextTable::new(format!("run {}: SLO breaches", view.name()))
                .header(&["rule", "window", "value", "limit"]);
            for r in &breaches {
                b.row(vec![
                    r.rule.to_string(),
                    r.window.to_string(),
                    r.value.to_string(),
                    r.limit.to_string(),
                ]);
            }
            println!("{}", b.render());
        }

        if show_windows {
            let wns = view.window_ns();
            let mut w = TextTable::new(format!("run {}: windows", view.name())).header(&[
                "window",
                "t (s)",
                "captures",
                "eff IB (MB/s)",
                "dirty IB (MB/s)",
                "drain (MB/s)",
                "depth",
                "busy (%)",
                "stall p99 (ms)",
                "rejects",
            ]);
            let per_s = |bytes: u64| fnum(bytes as f64 / 1e6 / (wns as f64 / 1e9), 2);
            for (i, acc) in view.windows() {
                w.row(vec![
                    i.to_string(),
                    fnum(i as f64 * wns as f64 / 1e9, 1),
                    acc.captures.to_string(),
                    per_s(acc.effective_ib_bytes),
                    per_s(acc.dirty_ib_bytes),
                    per_s(acc.drain_bytes),
                    acc.drain_depth_max.to_string(),
                    fnum(acc.busy_bp(wns) as f64 / 100.0, 1),
                    fnum(acc.stall.quantile(99).unwrap_or(0) as f64 / 1e6, 2),
                    acc.rejects.to_string(),
                ]);
            }
            println!("{}", w.render());
        }
    }
    println!("{} runs", group_of.len());
    0
}

/// `inspect --tenants`: the per-tenant service view of a JSONL trace
/// written by `repro --trace-out` — checkpoints, effective IB,
/// admission rejections, stall percentiles and each tenant's share of
/// the drained bytes, per run group.
fn tenants_report(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let events = match ickpt::obs::parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: malformed trace: {e}");
            return 1;
        }
    };
    println!("tenant service view: {path}");
    #[derive(Default)]
    struct Acc {
        checkpoints: u64,
        rejections: u64,
        admitted_bytes: u64,
        drained_bytes: u64,
        stalls_ns: Vec<u64>,
        extent_ns: u64,
    }
    // (run, tenant id) → accumulator, from the tenant-lane events.
    let mut tenants: std::collections::BTreeMap<(String, u32), Acc> =
        std::collections::BTreeMap::new();
    let arg = |ev: &ickpt::obs::ParsedEvent, key: &str| -> u64 {
        ev.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok()).unwrap_or(0)
    };
    for ev in &events {
        let Some(id) = ev.track.strip_prefix("tenant").and_then(|t| t.parse().ok()) else {
            continue;
        };
        let a = tenants.entry((ev.run.clone(), id)).or_default();
        a.extent_ns = a.extent_ns.max(ev.ts + ev.dur);
        match ev.name.as_str() {
            "admit" => a.admitted_bytes += arg(ev, "bytes"),
            "reject" => a.rejections += 1,
            "tenant_stall" => {
                a.checkpoints += 1;
                a.drained_bytes += arg(ev, "bytes");
                a.stalls_ns.push(ev.dur);
            }
            _ => {}
        }
    }
    if tenants.is_empty() {
        println!("no tenant tracks in this trace (was the run multi-tenant?)");
        return 1;
    }
    let runs: std::collections::BTreeSet<String> = tenants.keys().map(|(r, _)| r.clone()).collect();
    for run in &runs {
        let in_run: Vec<(&u32, &Acc)> =
            tenants.iter().filter(|((r, _), _)| r == run).map(|((_, id), a)| (id, a)).collect();
        let fleet_drained: u64 = in_run.iter().map(|(_, a)| a.drained_bytes).sum();
        let mut t = TextTable::new(format!("run {run}: {} tenants", in_run.len())).header(&[
            "tenant",
            "ckpts",
            "eff IB (MB/s)",
            "rejects",
            "p50 stall (ms)",
            "p99 stall (ms)",
            "drained share (%)",
        ]);
        // Listings elide past the threshold like rank tables; the
        // totals line still covers every tenant.
        for (i, (id, a)) in in_run.iter().enumerate() {
            if i >= MAX_LISTED_RANKS {
                t.row(vec![
                    format!("… {} more tenants elided", in_run.len() - MAX_LISTED_RANKS),
                    "".into(),
                    "".into(),
                    "".into(),
                    "".into(),
                    "".into(),
                    "".into(),
                ]);
                break;
            }
            let mut stalls = a.stalls_ns.clone();
            stalls.sort_unstable();
            t.row(vec![
                id.to_string(),
                a.checkpoints.to_string(),
                fnum(a.drained_bytes as f64 / 1e6 / (a.extent_ns.max(1) as f64 / 1e9), 2),
                a.rejections.to_string(),
                fnum(pct_sorted(&stalls, 50) as f64 / 1e6, 1),
                fnum(pct_sorted(&stalls, 99) as f64 / 1e6, 1),
                fnum(a.drained_bytes as f64 * 100.0 / fleet_drained.max(1) as f64, 1),
            ]);
        }
        println!("{}", t.render());
        println!(
            "  totals: {} checkpoints, {} rejections, {} MB drained across {} tenants",
            in_run.iter().map(|(_, a)| a.checkpoints).sum::<u64>(),
            in_run.iter().map(|(_, a)| a.rejections).sum::<u64>(),
            fnum(fleet_drained as f64 / 1e6, 1),
            in_run.len(),
        );
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)) {
        std::process::exit(trace_report(path));
    }
    if let Some(path) = args.iter().position(|a| a == "--tenants").and_then(|i| args.get(i + 1)) {
        std::process::exit(tenants_report(path));
    }
    if let Some(path) = args.iter().position(|a| a == "--metrics").and_then(|i| args.get(i + 1)) {
        let show_windows = args.iter().any(|a| a == "--windows");
        std::process::exit(metrics_report(path, show_windows));
    }
    let Some(dir) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: inspect <checkpoint-dir> [--rank N] | inspect --trace <file.jsonl> | \
             inspect --tenants <file.jsonl> | inspect --metrics <file.jsonl> [--windows]"
        );
        std::process::exit(2);
    };
    let only_rank: Option<u32> = args
        .iter()
        .position(|a| a == "--rank")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let dir = &tiered_overview(dir);

    let store = match FileStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            std::process::exit(2);
        }
    };
    let mut problems = 0usize;

    // ---- Manifests ----
    println!("checkpoint store: {dir}");
    let manifest_gens = store.list_manifests().unwrap_or_default();
    if manifest_gens.is_empty() {
        println!("no committed manifests found");
    }
    let mut mtable = TextTable::new("committed generations").header(&[
        "generation",
        "commit t",
        "ranks",
        "complete",
        "payload",
    ]);
    let mut nranks = 0u32;
    for &g in &manifest_gens {
        match store.get_manifest(g).and_then(|d| Manifest::decode(&d)) {
            Ok(m) => {
                nranks = nranks.max(m.nranks);
                if !m.is_complete() {
                    problems += 1;
                }
                mtable.row(vec![
                    g.to_string(),
                    format!("{:.1}s", m.commit_time_ns as f64 / 1e9),
                    m.nranks.to_string(),
                    if m.is_complete() { "yes".into() } else { "NO".to_string() },
                    format!("{:.2} MB", m.total_payload_bytes() as f64 / 1e6),
                ]);
            }
            Err(e) => {
                problems += 1;
                mtable.row(vec![
                    g.to_string(),
                    "?".into(),
                    "?".into(),
                    format!("CORRUPT: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{}", mtable.render());

    // ---- Per-rank chains ----
    let ranks: Vec<u32> = match only_rank {
        Some(r) => vec![r],
        None => (0..nranks.max(1)).collect(),
    };
    // Every rank is verified (CRC, lineage, chain shape); listings are
    // elided above the threshold so 5-digit rank counts stay readable.
    let mut elided = 0usize;
    for (idx, rank) in ranks.iter().copied().enumerate() {
        let listed = only_rank.is_some() || idx < MAX_LISTED_RANKS;
        if !listed {
            elided += 1;
        }
        let gens = store.list_generations(rank).unwrap_or_default();
        if gens.is_empty() {
            if listed {
                println!("rank {rank}: no chunks");
            }
            continue;
        }
        let mut t = TextTable::new(format!("rank {rank} chunks")).header(&[
            "gen",
            "kind",
            "parent",
            "captured t",
            "stored pages",
            "zero pages",
            "dropped",
            "delta",
            "bytes",
            "crc",
        ]);
        let mut known: std::collections::BTreeSet<u64> = gens.iter().copied().collect();
        let mut decoded: std::collections::BTreeMap<u64, Chunk> = std::collections::BTreeMap::new();
        for &g in &gens {
            match store.get_chunk(ChunkKey::new(rank, g)) {
                Ok(data) => match Chunk::decode(&data) {
                    Ok(c) => {
                        // Lineage check: parents must exist.
                        if let Some(p) = c.parent {
                            if !known.contains(&p) {
                                problems += 1;
                                known.insert(p); // report once
                                println!("  !! rank {rank} gen {g}: missing parent {p}");
                            }
                        }
                        t.row(vec![
                            g.to_string(),
                            match c.kind {
                                ChunkKind::Full => "full".into(),
                                ChunkKind::Incremental => "incr".to_string(),
                            },
                            c.parent.map_or("-".into(), |p| p.to_string()),
                            format!("{:.1}s", c.capture_time_ns as f64 / 1e9),
                            c.payload_pages().to_string(),
                            c.zero_pages().to_string(),
                            c.dropped_pages.to_string(),
                            c.delta_records.len().to_string(),
                            data.len().to_string(),
                            "ok".into(),
                        ]);
                        decoded.insert(g, c);
                    }
                    Err(e) => {
                        problems += 1;
                        t.row(vec![
                            g.to_string(),
                            "?".into(),
                            "?".into(),
                            "?".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            data.len().to_string(),
                            format!("CORRUPT: {e}"),
                        ]);
                    }
                },
                Err(e) => {
                    problems += 1;
                    t.row(vec![
                        g.to_string(),
                        "?".into(),
                        "?".into(),
                        "?".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("UNREADABLE: {e}"),
                    ]);
                }
            }
        }
        if listed {
            println!("{}", t.render());
        }

        // ---- Restore-plan statistics for the newest chain ----
        // Walk parents from the newest decoded generation, then build
        // the latest-wins plan to show where chain bloat lives: dead
        // (superseded) page records a planned restore never decodes
        // and compaction would reclaim.
        let mut chain: Vec<&Chunk> = Vec::new();
        let mut cursor = decoded.keys().next_back().copied();
        while let Some(g) = cursor {
            let Some(c) = decoded.get(&g) else { break };
            chain.push(c);
            cursor = c.parent;
        }
        if chain.last().map(|c| c.kind) == Some(ChunkKind::Full) {
            if !listed {
                continue;
            }
            chain.reverse(); // base first
            let plan = RestorePlan::build(&chain, None);
            let mut pt = TextTable::new(format!(
                "rank {rank} restore plan (newest chain, {} chunks)",
                chain.len()
            ))
            .header(&["gen", "live pages", "live zero", "dead pages", "skipped MB"]);
            for s in &plan.per_chunk {
                pt.row(vec![
                    s.generation.to_string(),
                    s.live_pages.to_string(),
                    s.live_zero_pages.to_string(),
                    (s.superseded_pages + s.excluded_pages).to_string(),
                    fnum(s.skipped_payload_bytes() as f64 / 1e6, 2),
                ]);
            }
            println!("{}", pt.render());
            println!(
                "  planned restore decodes {} MB of page payload, skips {} MB dead \
                 ({} of {} stored pages live)",
                fnum(plan.planned_payload_bytes() as f64 / 1e6, 2),
                fnum(plan.skipped_payload_bytes() as f64 / 1e6, 2),
                plan.applied_pages(),
                plan.per_chunk.iter().map(|s| s.stored_pages + s.stored_zero_pages).sum::<u64>(),
            );
            let dead_bytes = plan.skipped_payload_bytes();
            if dead_bytes > plan.planned_payload_bytes() / 2 {
                println!(
                    "  hint: >33% of stored payload is dead — `gc` compaction would \
                     drop {} MB and cut restore reads",
                    fnum(dead_bytes as f64 / 1e6, 2)
                );
            }
        } else if !decoded.is_empty() {
            problems += 1;
            println!("  !! rank {rank}: newest chain does not reach a full chunk");
        }

        // ---- Content-layer statistics across the rank's chain ----
        // What dedup + delta encoding saved relative to dirty-bit
        // accounting (which would have shipped every one of these
        // pages whole).
        let dropped: u64 = decoded.values().map(|c| c.dropped_pages).sum();
        let delta_pages: u64 = decoded.values().map(|c| c.delta_records.len() as u64).sum();
        if listed && (dropped > 0 || delta_pages > 0) {
            let delta_blocks: u64 = decoded
                .values()
                .flat_map(|c| &c.delta_records)
                .map(|d| u64::from(d.mask.count_ones()))
                .sum();
            let delta_stored = delta_blocks * 256 + delta_pages * 16;
            let saved = dropped * 4096 + (delta_pages * 4096).saturating_sub(delta_stored);
            println!(
                "  content layer: {} silent-same pages dropped, {} pages delta-encoded \
                 (mean delta ratio {}), {} MB saved vs dirty-bit accounting",
                dropped,
                delta_pages,
                fnum(delta_stored as f64 / (delta_pages.max(1) * 4096) as f64, 2),
                fnum(saved as f64 / 1e6, 2),
            );
        }
    }
    if elided > 0 {
        println!("… {elided} more ranks elided (all verified; pass --rank N to list one in full)");
    }

    // ---- Summary ----
    let total_bytes: u64 = (0..nranks.max(1))
        .flat_map(|r| {
            let store = &store;
            store.list_generations(r).unwrap_or_default().into_iter().map(move |g| {
                store.get_chunk(ChunkKey::new(r, g)).map(|d| d.len() as u64).unwrap_or(0)
            })
        })
        .sum();
    println!(
        "total: {} generations committed, {} MB on-disk checkpoint data, {} problem(s)",
        manifest_gens.len(),
        fnum(total_bytes as f64 / 1e6, 2),
        problems
    );
    if problems > 0 {
        std::process::exit(1);
    }
}
