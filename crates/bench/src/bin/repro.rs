//! `repro` — run every experiment and emit an EXPERIMENTS.md-ready
//! report.
//!
//! ```text
//! cargo run --release -p ickpt-bench --bin repro \
//!     [-- --out <path>] [-- --only <substring>] [-- --trace-out <dir>]
//! ```
//!
//! * `--out <path>` — also write the markdown report to `path`.
//! * `--only <substring>` — run only the experiments whose display
//!   name contains `substring` (case-insensitive); e.g. `--only fig`
//!   runs the five figures, `--only "Table 3"` just that table.
//! * `--list` — print every experiment name, one per line, and exit
//!   without running anything (useful for scripting `--only`).
//! * `--trace-out <dir>` — capture a virtual-time flight-recorder
//!   trace per experiment and write `<dir>/<slug>.trace.json` (Chrome
//!   trace-event JSON, loadable in Perfetto / `chrome://tracing`) plus
//!   `<dir>/<slug>.jsonl` (one event per line). Traces are
//!   deterministic: same seed and knobs ⇒ byte-identical files at any
//!   `ICKPT_BENCH_THREADS`.
//!
//! With `ICKPT_METRICS=on` (or `window=<secs>`) each experiment also
//! carries a metrics-plane text snapshot: it is printed after the
//! experiment body and, under `--trace-out`, written to
//! `<dir>/<slug>.metrics.txt`. Snapshots are byte-identical at any
//! worker count, so they diff cleanly in CI.
//!
//! Respects the `ICKPT_BENCH_*` environment knobs documented in
//! `ickpt-bench`. Experiments run concurrently on
//! `ICKPT_BENCH_THREADS` workers, but stdout and the markdown report
//! are assembled strictly in experiment order from pre-rendered
//! bodies, so the output is byte-identical at any thread count (timing
//! lines go to stderr).

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use std::fmt::Write as _;

use ickpt_analysis::compare::{comparison_markdown, comparison_table};
use ickpt_analysis::ExperimentReport;
use ickpt_bench::engine::parallel_map;
use ickpt_bench::experiments;

/// One experiment: display name + runner.
type Experiment = (&'static str, fn() -> ExperimentReport);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    if trace_out.is_some() {
        ickpt_bench::set_trace_enabled(true);
    }
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());

    let experiments: Vec<Experiment> = vec![
        ("Table 2 (memory footprints)", experiments::table2::report),
        ("Table 3 (iteration period, % overwritten)", experiments::table3::report),
        ("Table 4 (bandwidth requirements @1s)", experiments::table4::report),
        ("Figure 1 (Sage-1000MB time series)", experiments::fig1::report),
        ("Figure 2 (IB vs timeslice, 6 apps)", experiments::fig2::report),
        ("Figure 3 (avg IB vs timeslice, Sage sizes)", experiments::fig3::report),
        ("Figure 4 (IWS ratio vs timeslice)", experiments::fig4::report),
        ("Figure 5 (weak scaling 8-64 procs)", experiments::fig5::report),
        ("Figure 5 extended (weak scaling to 16384 ranks)", experiments::fig5_extended::report),
        ("Section 6.5 (intrusiveness)", experiments::intrusive::report),
        ("Ablations (checkpoint system)", experiments::ablation::report),
        ("Availability under failures", experiments::availability::report),
        ("Effective IB vs dirty IB (dedup + delta)", experiments::effective_ib::report),
        ("Multi-tenant service (shared striped array)", experiments::multi_tenant::report),
    ];
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<Experiment> = experiments
        .into_iter()
        .filter(|(name, _)| only.as_ref().is_none_or(|o| name.to_lowercase().contains(o)))
        .collect();
    if selected.is_empty() {
        eprintln!("error: --only {:?} matches no experiment", only.unwrap_or_default());
        std::process::exit(2);
    }

    let mut md = String::new();
    writeln!(md, "## Reproduction results\n").unwrap();
    writeln!(
        md,
        "Configuration: {} ranks, scale {}, seed {:#x}.\n",
        ickpt_bench::bench_ranks(),
        ickpt_bench::bench_scale(),
        ickpt_bench::BENCH_SEED
    )
    .unwrap();

    let t0 = std::time::Instant::now();
    let reports = parallel_map(&selected, |(name, f)| {
        let t = std::time::Instant::now();
        let report = f();
        eprintln!("    [{name} completed in {:?}]", t.elapsed());
        report
    });
    eprintln!("    [all experiments completed in {:?}]", t0.elapsed());

    if let Some(dir) = &trace_out {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }
    let mut all_rows = Vec::new();
    for ((name, _), report) in selected.iter().zip(reports) {
        print!("{}", report.body);
        println!(
            "{}",
            comparison_table(&format!("{name}: paper vs measured"), &report.comparisons)
        );
        writeln!(md, "### {name}\n").unwrap();
        writeln!(md, "{}", comparison_markdown(&report.comparisons)).unwrap();
        if let Some(trace) = &report.trace {
            if let Some(dir) = &trace_out {
                if !trace.chrome_json.is_empty() {
                    let (chrome, jsonl) =
                        ickpt_bench::obs_glue::write_trace_files(dir.as_ref(), name, trace)
                            .expect("write trace files");
                    println!("trace: {} + {}", chrome.display(), jsonl.display());
                    writeln!(md, "Trace: `{}`, `{}`\n", chrome.display(), jsonl.display()).unwrap();
                    writeln!(md, "```text\n{}```\n", trace.summary).unwrap();
                }
                if let Some(path) =
                    ickpt_bench::obs_glue::write_metrics_file(dir.as_ref(), name, trace)
                        .expect("write metrics file")
                {
                    println!("metrics: {}", path.display());
                }
            }
            print!("{}", trace.summary);
            if let Some(metrics) = &trace.metrics {
                print!("{metrics}");
            }
        }
        all_rows.extend(report.comparisons);
    }

    // Summary: how many cells land within 25 % of the paper.
    let within: usize = all_rows.iter().filter(|c| c.within(0.25)).count();
    println!(
        "\nsummary: {}/{} paper-vs-measured cells within 25% relative error",
        within,
        all_rows.len()
    );
    writeln!(
        md,
        "\n**Summary:** {}/{} cells within 25% relative error of the paper.\n",
        within,
        all_rows.len()
    )
    .unwrap();

    if let Some(path) = out_path {
        std::fs::write(&path, md).expect("write report");
        println!("report written to {path}");
    }
}
