//! `repro` — run every experiment and emit an EXPERIMENTS.md-ready
//! report.
//!
//! ```text
//! cargo run --release -p ickpt-bench --bin repro [-- --out <path>]
//! ```
//!
//! Respects the `ICKPT_BENCH_*` environment knobs documented in
//! `ickpt-bench`.

use std::fmt::Write as _;

use ickpt_analysis::compare::{comparison_markdown, comparison_table};
use ickpt_analysis::Comparison;
use ickpt_bench::experiments;

/// One experiment: display name + runner.
type Experiment = (&'static str, fn() -> Vec<Comparison>);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let experiments: Vec<Experiment> = vec![
        ("Table 2 (memory footprints)", experiments::table2::run_and_print),
        ("Table 3 (iteration period, % overwritten)", experiments::table3::run_and_print),
        ("Table 4 (bandwidth requirements @1s)", experiments::table4::run_and_print),
        ("Figure 1 (Sage-1000MB time series)", experiments::fig1::run_and_print),
        ("Figure 2 (IB vs timeslice, 6 apps)", experiments::fig2::run_and_print),
        ("Figure 3 (avg IB vs timeslice, Sage sizes)", experiments::fig3::run_and_print),
        ("Figure 4 (IWS ratio vs timeslice)", experiments::fig4::run_and_print),
        ("Figure 5 (weak scaling 8-64 procs)", experiments::fig5::run_and_print),
        ("Section 6.5 (intrusiveness)", experiments::intrusive::run_and_print),
        ("Ablations (checkpoint system)", experiments::ablation::run_and_print),
        ("Availability under failures", experiments::availability::run_and_print),
    ];

    let mut md = String::new();
    writeln!(md, "## Reproduction results\n").unwrap();
    writeln!(
        md,
        "Configuration: {} ranks, scale {}, seed {:#x}.\n",
        ickpt_bench::bench_ranks(),
        ickpt_bench::bench_scale(),
        ickpt_bench::BENCH_SEED
    )
    .unwrap();

    let mut all_rows = Vec::new();
    for (name, f) in experiments {
        let t0 = std::time::Instant::now();
        let rows = f();
        println!("{}", comparison_table(&format!("{name}: paper vs measured"), &rows));
        println!("    [{name} completed in {:?}]", t0.elapsed());
        writeln!(md, "### {name}\n").unwrap();
        writeln!(md, "{}", comparison_markdown(&rows)).unwrap();
        all_rows.extend(rows);
    }

    // Summary: how many cells land within 25 % of the paper.
    let within: usize = all_rows.iter().filter(|c| c.within(0.25)).count();
    println!(
        "\nsummary: {}/{} paper-vs-measured cells within 25% relative error",
        within,
        all_rows.len()
    );
    writeln!(
        md,
        "\n**Summary:** {}/{} cells within 25% relative error of the paper.\n",
        within,
        all_rows.len()
    )
    .unwrap();

    if let Some(path) = out_path {
        std::fs::write(&path, md).expect("write report");
        println!("report written to {path}");
    }
}
