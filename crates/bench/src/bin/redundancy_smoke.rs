//! `redundancy_smoke` — end-to-end check of the multilevel redundancy
//! subsystem, small enough for the verification gate.
//!
//! Runs the synthetic workload twice on tiered storage (node-local
//! tier + partner replication + drained shared array): once failure
//! free, once with a **node loss** injected mid-run that wipes the
//! failed rank's node-local tier. The wiped rank must recover by
//! partner reconstruction over the interconnect, and the final
//! application state of every rank must be byte-identical to the
//! failure-free run. Exits non-zero on any mismatch.
//!
//! `--trace-out <dir>` additionally captures a flight-recorder trace
//! of both runs (groups `failure-free` and `node-loss`) and writes
//! `redundancy-smoke.trace.json` + `redundancy-smoke.jsonl` there.

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use std::process::ExitCode;
use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, RedundancyConfig,
    RunOutcome, RunReport, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::core::metrics::TierSummary;
use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime};
use ickpt::storage::{DrainTopology, MemStore, RecoverySource, SchemeSpec};

const NRANKS: usize = 4;

fn run(failures: Vec<FailureSpec>, obs: ickpt::obs::Recorder) -> RunReport {
    let cfg = FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: 15,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::Shared,
        failures,
        net: NetConfig::qsnet(),
        redundancy: Some(RedundancyConfig {
            scheme: SchemeSpec::Partner { offset: 1 },
            local_device: DevicePreset::NodeLocal,
            drain_every: 4,
            drain_topology: DrainTopology::Flat,
        }),
        max_attempts: 4,
        obs,
        dedup: None,
        write_profile: Default::default(),
    };
    let layout = LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build();
    run_fault_tolerant(&cfg, layout, |rank| {
        Box::new(SyntheticApp::new(SyntheticConfig {
            exchange_bytes: 8192,
            rank,
            nranks: NRANKS,
            ..Default::default()
        }))
    })
    .expect("simulated run completes")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    if trace_out.is_some() {
        ickpt_bench::set_trace_enabled(true);
    }
    let mut tb = ickpt_bench::TraceBuilder::begin();
    let reference = run(vec![], tb.recorder("failure-free"));
    let recovered =
        run(vec![FailureSpec::node_loss(1, SimTime::from_secs(8))], tb.recorder("node-loss"));
    let mut ok = true;
    let mut check = |label: &str, pass: bool| {
        println!("{} {label}", if pass { "ok  " } else { "FAIL" });
        ok &= pass;
    };

    check("failure-free run completed", reference.outcome == RunOutcome::Completed);
    check("node-loss run completed", recovered.outcome == RunOutcome::Completed);
    check("exactly one recovery", recovered.recoveries.len() == 1);
    let source = recovered.recoveries.first().map(|r| r.source);
    check(
        "wiped rank recovered by partner reconstruction",
        source == Some(RecoverySource::Reconstructed),
    );
    for (a, b) in reference.ranks.iter().zip(&recovered.ranks) {
        check(
            &format!("rank {} final state byte-identical to failure-free run", a.rank),
            a.content_digest.is_some() && a.content_digest == b.content_digest,
        );
    }
    let usage: Vec<_> = recovered.ranks.iter().filter_map(|r| r.tier).collect();
    let summary = TierSummary::from_usage(&usage);
    check("all ranks report tier usage", usage.len() == NRANKS);
    check("checkpoints landed on the node-local tier", summary.local_mb > 0.0);
    check("partner copies crossed the interconnect", summary.redundancy_mb > 0.0);
    check("recovery pulled bytes over the network", summary.recovery_net_mb > 0.0);
    println!(
        "tier accounting: local {:.2} MB ({:.3} s busy), redundancy {:.2} MB \
         ({:.3} s NIC), recovery {:.2} MB net in {:.3} s, overhead {:.0}%",
        summary.local_mb,
        summary.local_busy_s,
        summary.redundancy_mb,
        summary.nic_busy_s,
        summary.recovery_net_mb,
        summary.recovery_s,
        summary.redundancy_overhead_percent()
    );

    if let Some(trace) = tb.finish() {
        if let Some(dir) = &trace_out {
            let dir = std::path::Path::new(dir);
            if !trace.chrome_json.is_empty() {
                let (chrome, jsonl) =
                    ickpt_bench::obs_glue::write_trace_files(dir, "redundancy smoke", &trace)
                        .expect("write trace files");
                println!("trace: {} + {}", chrome.display(), jsonl.display());
            }
            if let Some(path) =
                ickpt_bench::obs_glue::write_metrics_file(dir, "redundancy smoke", &trace)
                    .expect("write metrics file")
            {
                println!("metrics: {}", path.display());
            }
        }
        print!("{}", trace.summary);
        if let Some(metrics) = &trace.metrics {
            print!("{metrics}");
        }
    }

    if ok {
        println!("redundancy smoke: OK");
        ExitCode::SUCCESS
    } else {
        println!("redundancy smoke: FAILED");
        ExitCode::FAILURE
    }
}
