//! The trace-once / re-bin-many experiment engine and the
//! deterministic parallel scheduler.
//!
//! ## Trace-once, analyze many (the paper's own methodology)
//!
//! IWS/IB at a timeslice is a pure function of *which pages are
//! written when* (§6.1), so one characterization run per workload —
//! recorded as a fine-grained write trace — serves every timeslice
//! that is a multiple of the trace resolution. [`workload_trace`]
//! memoizes these recordings behind a key of
//! `(workload, ranks, scale, seed, resolution)`; [`WorkloadTrace::report_at`]
//! derives the report a direct run at `(timeslice, run_for)` would
//! have produced:
//!
//! * **Samples** come from [`RankTrace::rebin_with_flush`]: fine
//!   dirty-range slices are replayed in order (`acc := (acc \ U_j) ∪
//!   D_j`), emitting a sample at every coarse boundary, plus the
//!   bit-exact trailing partial flush reconstructed from the stop
//!   boundary's residue.
//! * **Stop time** comes from the recorded iteration boundaries: the
//!   STOP vote is a global OR of per-rank `pre-clock ≥ run_for`
//!   predicates, so the first boundary where *any* rank's pre-clock
//!   reaches `run_for` is where the shorter run would have stopped,
//!   and every rank's final clock is that boundary's post-allreduce
//!   clock.
//! * **Scalars** (footprint, bytes received, final time) come from the
//!   [`BoundaryRecord`] snapshot at the stop boundary.
//!
//! This is exact because the virtual-time trajectory of a
//! characterization run is independent of the tracker configuration
//! when faults are free (`fault_cost = 0`, no clock stretching): the
//! same touches happen at the same instants whatever the timeslice,
//! and every coarse window boundary is also a fine boundary. The two
//! deliberate approximations — per-window `faults` (set to the window
//! IWS) and cumulative `total_faults` (the fine run's count) — touch
//! fields no experiment consumes; everything else is property-tested
//! bit-exact against the direct simulation in `tests/rebin_props.rs`.
//!
//! The direct per-timeslice simulation remains the executable
//! reference (repo convention): [`run_direct`] takes the old path.
//!
//! ## Deterministic parallel scheduling
//!
//! [`parallel_map`] fans work out on scoped threads behind a global
//! permit gate of [`crate::bench_threads`] slots, and collects results
//! *by input index*, so output assembly is independent of completion
//! order. Experiment code renders into strings and never prints from
//! workers; with `ICKPT_BENCH_THREADS=1` (or a single item) the map
//! degenerates to a strictly serial inline loop. Nested maps release
//! the caller's permit while joining children, so the gate can never
//! deadlock; the trace cache's builders run under the caller's permit
//! and concurrent requesters of the same key block until the first
//! build completes.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use ickpt::apps::Workload;
use ickpt::cluster::{
    characterize, BoundaryRecord, CharacterizationConfig, RankReport, RunOutcome, RunReport,
};
use ickpt::core::trace::RankTrace;
use ickpt::core::tracker::IterationSample;
use ickpt::sim::{SimDuration, SimTime};

use crate::{bench_ranks, bench_scale, bench_threads, run_length, skip_until, BENCH_SEED};

/// The paper's checkpoint-timeslice sweep (Figures 2-5).
pub const PAPER_TIMESLICES: [u64; 6] = [1, 2, 5, 10, 15, 20];

/// Figure 1's virtual run length (Sage-1000MB time series).
pub const FIG1_RUN_FOR: SimDuration = SimDuration::from_secs(500);

/// Timeslice fine enough to resolve an app's period for Table 3:
/// ~1/10 of it, clamped to [20 ms, 1 s].
pub fn detection_timeslice(w: Workload) -> SimDuration {
    let s = (w.calib().period_s / 10.0).clamp(0.02, 1.0);
    SimDuration::from_secs_f64(s)
}

/// Table 3's cluster size (period structure is per-process).
pub fn table3_ranks() -> usize {
    bench_ranks().min(16)
}

/// Table 3's run length: past initialization + warm-up, at least ~8
/// periods and ~200 windows for the autocorrelation.
pub fn table3_run_for(w: Workload) -> SimDuration {
    let ts = detection_timeslice(w);
    SimDuration::from_secs_f64(
        skip_until(w).as_secs_f64() + (8.0 * w.calib().period_s).max(200.0 * ts.as_secs_f64()),
    )
}

/// A memoized trace recording: the union of everything any experiment
/// derives from this key must be recoverable, so the recording runs to
/// [`trace_horizon`] — the maximum run length over all known uses —
/// with iteration tracking on (harmless to the trajectory).
pub struct WorkloadTrace {
    nranks: usize,
    /// Rank 0's recorded write trace (the paper's workloads are
    /// bulk-synchronous and rank-symmetric; every experiment reads
    /// rank 0).
    trace: RankTrace,
    /// Iteration-boundary snapshots for *every* rank (the STOP vote is
    /// a global OR, so the stop index needs all ranks' pre-clocks).
    boundaries: Vec<Vec<BoundaryRecord>>,
    /// Per-rank iteration ground truth, truncated on demand.
    iteration_samples: Vec<Vec<IterationSample>>,
}

impl WorkloadTrace {
    /// Build from a finished characterization report whose rank 0 was
    /// run with `trace_ranks >= 1` and `track_iterations = true`.
    pub fn from_report(mut report: RunReport) -> Self {
        WorkloadTrace {
            nranks: report.ranks.len(),
            trace: report.ranks[0].trace.take().expect("rank 0 recorded a trace"),
            boundaries: report.ranks.iter().map(|r| r.boundaries.clone()).collect(),
            iteration_samples: report
                .ranks
                .iter_mut()
                .map(|r| std::mem::take(&mut r.iteration_samples))
                .collect(),
        }
    }

    /// Derive the report of a direct run at `(timeslice, run_for)`.
    /// `track_iterations` mirrors the direct config: when false the
    /// derived reports carry no iteration samples, exactly like a
    /// direct run that never enabled them.
    pub fn report_at(
        &self,
        timeslice: SimDuration,
        run_for: SimDuration,
        track_iterations: bool,
    ) -> RunReport {
        let n = self.boundaries[0].len();
        let stop_i = (0..n)
            .find(|&i| {
                self.boundaries.iter().any(|b| b[i].pre.saturating_sub(SimTime::ZERO) >= run_for)
            })
            .expect("trace horizon shorter than the requested run length (engine bug)");
        let ranks = (0..self.nranks)
            .map(|r| {
                let b = self.boundaries[r][stop_i];
                let samples = if r == 0 {
                    self.trace.rebin_with_flush(timeslice, b.post)
                } else {
                    Vec::new()
                };
                let iteration_samples = if track_iterations {
                    self.iteration_samples[r][..=stop_i].to_vec()
                } else {
                    Vec::new()
                };
                RankReport {
                    rank: r,
                    samples,
                    epoch_samples: Vec::new(),
                    iteration_samples,
                    total_faults: b.total_faults,
                    overhead: b.overhead,
                    started_at: SimTime::ZERO,
                    final_time: b.post,
                    iterations: (stop_i + 1) as u64,
                    bytes_received: b.bytes_received,
                    footprint_pages: b.footprint_pages,
                    content_digest: None,
                    checkpoint_bytes: 0,
                    checkpoints: 0,
                    checkpoint_stall: SimDuration::ZERO,
                    commit_lag: SimDuration::ZERO,
                    excluded_pages: 0,
                    content: Default::default(),
                    summary: Default::default(),
                    last_committed: None,
                    boundaries: self.boundaries[r][..=stop_i].to_vec(),
                    trace: None,
                    tier: None,
                }
            })
            .collect();
        RunReport {
            outcome: RunOutcome::Completed,
            ranks,
            attempts: 1,
            wasted: SimDuration::ZERO,
            recoveries: Vec::new(),
            drain: None,
            obs: None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    workload: Workload,
    nranks: usize,
    scale_bits: u64,
    seed: u64,
    resolution_ns: u64,
}

/// The canonical recording horizon for a trace key: the maximum run
/// length any experiment derives from it. A pure function of the key
/// (and the env knobs), so the recording is identical no matter which
/// experiment asks first — the memoized cache stays order-independent.
fn trace_horizon(w: Workload, nranks: usize, resolution: SimDuration) -> SimDuration {
    let mut h = SimDuration::ZERO;
    if resolution == SimDuration::from_secs(1) {
        // The timeslice sweeps (fig2/3/4, tables 2/4 at the default
        // cluster size; fig5 at its explicit rank counts).
        for ts in PAPER_TIMESLICES {
            h = h.max(run_length(w, ts));
        }
        if w == Workload::Sage1000 && nranks == bench_ranks() {
            h = h.max(FIG1_RUN_FOR);
        }
    }
    if nranks == table3_ranks() && resolution == detection_timeslice(w) {
        h = h.max(table3_run_for(w));
    }
    assert!(
        !h.is_zero(),
        "no experiment is known to derive from trace key ({w:?}, {nranks} ranks, {resolution})"
    );
    h
}

type SharedTrace = Arc<WorkloadTrace>;

static CACHE: OnceLock<Mutex<HashMap<TraceKey, Arc<OnceLock<SharedTrace>>>>> = OnceLock::new();

/// The memoized write trace for `(workload, nranks, resolution)` under
/// the current env knobs (scale) and [`BENCH_SEED`]. The first caller
/// records it (running the cluster once to the canonical horizon);
/// concurrent callers for the same key block until it is ready.
pub fn workload_trace(w: Workload, nranks: usize, resolution: SimDuration) -> SharedTrace {
    let key = TraceKey {
        workload: w,
        nranks,
        scale_bits: bench_scale().to_bits(),
        seed: BENCH_SEED,
        resolution_ns: resolution.0,
    };
    let cell = {
        let mut map = CACHE.get_or_init(Default::default).lock().unwrap();
        map.entry(key).or_default().clone()
    };
    cell.get_or_init(|| Arc::new(record_trace(w, nranks, resolution))).clone()
}

fn record_trace(w: Workload, nranks: usize, resolution: SimDuration) -> WorkloadTrace {
    let cfg = CharacterizationConfig {
        nranks,
        scale: bench_scale(),
        run_for: trace_horizon(w, nranks, resolution),
        timeslice: resolution,
        seed: BENCH_SEED,
        track_iterations: true,
        trace_ranks: 1,
        ..Default::default()
    };
    WorkloadTrace::from_report(characterize(w, &cfg))
}

// ---------------------------------------------------------------------
// Engine-backed experiment entry points
// ---------------------------------------------------------------------

/// Engine-backed replacement for `characterize(w, standard_config)` at
/// an explicit cluster size (Figure 5's scaling study).
pub fn run_cached_at(nranks: usize, w: Workload, timeslice_s: u64) -> RunReport {
    workload_trace(w, nranks, SimDuration::from_secs(1)).report_at(
        SimDuration::from_secs(timeslice_s),
        run_length(w, timeslice_s),
        false,
    )
}

/// Engine-backed replacement for `characterize(w, standard_config)`.
pub fn run_cached(w: Workload, timeslice_s: u64) -> RunReport {
    run_cached_at(bench_ranks(), w, timeslice_s)
}

/// Engine-backed Figure 1 run (Sage-1000MB, 1 s timeslice, 500 s).
pub fn run_fig1() -> RunReport {
    workload_trace(Workload::Sage1000, bench_ranks(), SimDuration::from_secs(1)).report_at(
        SimDuration::from_secs(1),
        FIG1_RUN_FOR,
        false,
    )
}

/// Engine-backed Table 3 run (fine detection timeslice, iteration
/// tracking).
pub fn run_table3(w: Workload) -> RunReport {
    let ts = detection_timeslice(w);
    workload_trace(w, table3_ranks(), ts).report_at(ts, table3_run_for(w), true)
}

/// The direct per-timeslice simulation of the standard configuration —
/// the executable reference the engine is property-tested against.
pub fn run_direct(w: Workload, timeslice_s: u64) -> RunReport {
    characterize(w, &crate::standard_config(w, timeslice_s))
}

// ---------------------------------------------------------------------
// Deterministic parallel scheduler
// ---------------------------------------------------------------------

struct Gate {
    free: Mutex<usize>,
    cv: Condvar,
}

static GATE: OnceLock<Gate> = OnceLock::new();

thread_local! {
    static HELD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn gate() -> &'static Gate {
    GATE.get_or_init(|| Gate { free: Mutex::new(bench_threads()), cv: Condvar::new() })
}

fn acquire_permit() {
    let g = gate();
    let mut free = g.free.lock().unwrap();
    while *free == 0 {
        free = g.cv.wait(free).unwrap();
    }
    *free -= 1;
    HELD.with(|h| h.set(true));
}

fn release_permit() {
    let g = gate();
    *g.free.lock().unwrap() += 1;
    g.cv.notify_one();
    HELD.with(|h| h.set(false));
}

/// Apply `f` to every item, running up to [`crate::bench_threads`]
/// items concurrently, and return the results **in input order**. With
/// one thread (or one item) this is an inline serial loop. Safe to
/// nest: a worker calling `parallel_map` parks its own permit while
/// its children run.
pub fn parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    if items.len() <= 1 || bench_threads() == 1 {
        return items.iter().map(&f).collect();
    }
    let was_held = HELD.with(|h| h.get());
    if was_held {
        release_permit();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (i, item) in items.iter().enumerate() {
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                acquire_permit();
                let r = f(item);
                release_permit();
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    if was_held {
        acquire_permit();
    }
    slots.into_iter().map(|s| s.into_inner().unwrap().expect("worker completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_nests_without_deadlock() {
        let outer: Vec<usize> = (0..4).collect();
        let out = parallel_map(&outer, |&i| {
            let inner: Vec<usize> = (0..5).collect();
            parallel_map(&inner, |&j| i * 10 + j)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row.len(), 5);
            assert_eq!(row[3], i * 10 + 3);
        }
    }

    #[test]
    fn horizon_covers_every_standard_run_length() {
        for w in Workload::ALL {
            let h = trace_horizon(w, bench_ranks(), SimDuration::from_secs(1));
            for ts in PAPER_TIMESLICES {
                assert!(h >= run_length(w, ts), "{w:?} @{ts}s");
            }
        }
        assert!(
            trace_horizon(Workload::Sage1000, bench_ranks(), SimDuration::from_secs(1))
                >= FIG1_RUN_FOR
        );
        let t3 =
            trace_horizon(Workload::NasSp, table3_ranks(), detection_timeslice(Workload::NasSp));
        assert!(t3 >= table3_run_for(Workload::NasSp));
    }
}
