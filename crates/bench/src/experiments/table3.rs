//! Table 3: characteristics of the main iteration — average period and
//! percentage of the memory footprint overwritten per iteration.
//!
//! The period is detected **automatically at run time** from the IWS
//! series by autocorrelation (§6.2 argues this identification is
//! possible; `ickpt_core::policy` implements it). The overwrite
//! fraction comes from the tracker's per-iteration unique-page
//! accumulation, cross-checked against the application's own iteration
//! marks.
//!
//! Paper values: Sage-1000MB 145 s / 53 %, Sage-500MB 80 / 54,
//! Sage-100MB 38 / 56, Sage-50MB 20 / 57, Sweep3D 7 / 52,
//! SP 0.16 / 72, LU 0.7 / 72, BT 0.4 / 92, FT 1.2 / 57.

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt::core::policy::detect_period;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use ickpt::cluster::RunReport;

use crate::engine::{detection_timeslice, parallel_map, run_table3};
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, skip_until};

/// Run one workload with fine sampling + iteration tracking.
fn measure(w: Workload) -> (RunReport, Option<f64>, f64) {
    let ts = detection_timeslice(w);
    let report = run_table3(w);
    let r0 = &report.ranks[0];
    // Automatic period detection from the IWS series.
    let skip_windows = (skip_until(w).as_secs_f64() / ts.as_secs_f64()).ceil() as usize;
    let series: Vec<u64> = r0.samples.iter().map(|s| s.iws_pages).collect();
    let period = detect_period(&series, ts, skip_windows).map(|d| d.as_secs_f64());
    // Ground truth: unique pages per application iteration vs
    // footprint (skip the first iteration, which includes warm-up).
    let its = &r0.iteration_samples;
    let tail = &its[its.len().min(1)..];
    let overwrite = if tail.is_empty() {
        0.0
    } else {
        let fracs: Vec<f64> = tail
            .iter()
            .filter(|s| s.footprint_pages > 0)
            .map(|s| 100.0 * s.unique_pages as f64 / s.footprint_pages as f64)
            .collect();
        ickpt_analysis::stats::mean(&fracs)
    };
    (report, period, overwrite)
}

/// Regenerate Table 3.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Table 3: Characteristics of the Main Iteration");
    let mut table = TextTable::new("").header(&[
        "Application",
        "Period (s)",
        "Overwritten",
        "paper period",
        "paper overwr.",
    ]);
    let mut comparisons = Vec::new();
    let mut tb = TraceBuilder::begin();
    let rows = parallel_map(&Workload::ALL, |&w| (w, measure(w)));
    for (w, (report, period, overwrite)) in rows {
        tb.synthesize(w.name(), &report);
        let c = w.calib();
        let period_str = period.map_or("n/a".to_string(), |p| fnum(p, 2));
        table.row(vec![
            w.name().to_string(),
            period_str,
            format!("{}%", fnum(overwrite, 0)),
            fnum(c.period_s, 2),
            format!("{}%", fnum(c.overwrite_frac * 100.0, 0)),
        ]);
        if let Some(p) = period {
            comparisons.push(Comparison::new(
                format!("Table 3 / {} period (auto-detected)", w.name()),
                c.period_s,
                p,
                "s",
            ));
        }
        comparisons.push(Comparison::new(
            format!("Table 3 / {} % overwritten", w.name()),
            c.overwrite_frac * 100.0,
            overwrite,
            "%",
        ));
    }
    writeln!(body, "{}", table.render()).unwrap();
    writeln!(body, "(periods detected at run time by IWS autocorrelation, §6.2)").unwrap();
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated table and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
