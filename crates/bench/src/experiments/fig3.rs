//! Figure 3: average IB vs timeslice for the four Sage memory
//! footprints (50/100/500/1000 MB).
//!
//! Paper shape: IB grows with the footprint but **sublinearly** — at a
//! 1 s timeslice Sage-1000MB needs ~80 MB/s, not the ~100 MB/s a linear
//! extrapolation from Sage-500MB (~50 MB/s) would give (§6.4.1).

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, ExperimentReport, TextTable};

use crate::engine::{parallel_map, PAPER_TIMESLICES as TIMESLICES};
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, ib_stats, run};

/// Regenerate Figure 3.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Figure 3: average IB vs timeslice for the Sage footprints");
    let all_rows: Vec<(Workload, Vec<(u64, f64)>)> = parallel_map(&Workload::SAGE, |&w| {
        let rows = parallel_map(&TIMESLICES, |&ts| {
            let report = run(w, ts);
            (ts, ib_stats(w, &report, ts).avg_mbps)
        });
        (w, rows)
    });
    let mut tb = TraceBuilder::begin();
    if tb.enabled() {
        for (w, _) in &all_rows {
            tb.synthesize(&format!("{}/ts=1s", w.name()), &run(*w, 1));
        }
    }
    let series: Vec<(&str, Vec<(f64, f64)>)> = all_rows
        .iter()
        .map(|(w, rows)| (w.name(), rows.iter().map(|&(ts, v)| (ts as f64, v)).collect::<Vec<_>>()))
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        series.iter().map(|(n, s)| (*n, s.as_slice())).collect();
    writeln!(body, "{}", ascii_multi_plot("avg IB (MB/s) vs timeslice (s)", &series_refs, 60, 14))
        .unwrap();

    let mut t = TextTable::new("").header(&["timeslice (s)", "1000MB", "500MB", "100MB", "50MB"]);
    for (i, &ts) in TIMESLICES.iter().enumerate() {
        t.row(vec![
            ts.to_string(),
            fnum(all_rows[0].1[i].1, 1),
            fnum(all_rows[1].1[i].1, 1),
            fnum(all_rows[2].1[i].1, 1),
            fnum(all_rows[3].1[i].1, 1),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();

    // Sublinearity check at 1 s: IB(1000) / IB(500) < footprint ratio.
    let ib_1000 = all_rows[0].1[0].1;
    let ib_500 = all_rows[1].1[0].1;
    let growth = ib_1000 / ib_500.max(1e-9);
    writeln!(
        body,
        "sublinearity (§6.4.1): doubling the footprint 500→1000 MB grows avg IB by \
         {growth:.2}x (< 2.0x: {})",
        if growth < 2.0 { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();
    let comparisons = vec![
        Comparison::new("Fig 3 / Sage-1000MB avg IB @1s", 78.8, ib_1000, "MB/s"),
        Comparison::new("Fig 3 / Sage-500MB avg IB @1s", 49.9, ib_500, "MB/s"),
        Comparison::new("Fig 3 / IB growth for 2x footprint", 78.8 / 49.9, growth, "x"),
    ];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
