//! Figure 4: ratio of IWS size to memory-image size (%) per timeslice,
//! for the four Sage footprints.
//!
//! Paper shape: the ratio grows with the timeslice toward the ~55 %
//! per-iteration overwrite fraction, and at short timeslices the
//! *larger* footprints have the *smaller* ratio — which is exactly why
//! IB grows sublinearly with memory (§6.4.1).

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, TextTable};

use crate::experiments::fig2::TIMESLICES;
use crate::{banner, ib_stats, run};

/// Regenerate Figure 4.
pub fn run_and_print() -> Vec<Comparison> {
    banner("Figure 4: IWS size / memory image size (%) vs timeslice");
    let mut all_rows: Vec<(Workload, Vec<(u64, f64)>)> = Vec::new();
    for w in Workload::SAGE {
        let rows: Vec<(u64, f64)> = TIMESLICES
            .iter()
            .map(|&ts| {
                let report = run(w, ts);
                (ts, ib_stats(w, &report, ts).avg_ratio_percent)
            })
            .collect();
        all_rows.push((w, rows));
    }
    let series: Vec<(&str, Vec<(f64, f64)>)> = all_rows
        .iter()
        .map(|(w, rows)| (w.name(), rows.iter().map(|&(ts, v)| (ts as f64, v)).collect::<Vec<_>>()))
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        series.iter().map(|(n, s)| (*n, s.as_slice())).collect();
    println!(
        "{}",
        ascii_multi_plot("IWS : footprint ratio (%) vs timeslice (s)", &series_refs, 60, 14)
    );

    let mut t = TextTable::new("").header(&["timeslice (s)", "1000MB", "500MB", "100MB", "50MB"]);
    for (i, &ts) in TIMESLICES.iter().enumerate() {
        t.row(vec![
            ts.to_string(),
            fnum(all_rows[0].1[i].1, 1),
            fnum(all_rows[1].1[i].1, 1),
            fnum(all_rows[2].1[i].1, 1),
            fnum(all_rows[3].1[i].1, 1),
        ]);
    }
    println!("{}", t.render());

    let r1000_1s = all_rows[0].1[0].1;
    let r50_1s = all_rows[3].1[0].1;
    let r1000_20s = all_rows[0].1.last().unwrap().1;
    println!(
        "shape: at 1 s the 1000MB ratio ({r1000_1s:.1}%) is below the 50MB ratio \
         ({r50_1s:.1}%): {}; by 20 s the 1000MB ratio reaches {r1000_20s:.1}% \
         (→ ~53% overwrite per iteration)",
        if r1000_1s < r50_1s { "CONFIRMED" } else { "VIOLATED" },
    );
    vec![
        Comparison::new("Fig 4 / Sage-1000MB ratio @1s", 10.0, r1000_1s, "%"),
        Comparison::new("Fig 4 / Sage-50MB ratio @1s", 21.0, r50_1s, "%"),
        Comparison::new("Fig 4 / Sage-1000MB ratio @20s", 31.0, r1000_20s, "%"),
    ]
}
