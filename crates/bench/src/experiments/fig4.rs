//! Figure 4: ratio of IWS size to memory-image size (%) per timeslice,
//! for the four Sage footprints.
//!
//! Paper shape: the ratio grows with the timeslice toward the ~55 %
//! per-iteration overwrite fraction, and at short timeslices the
//! *larger* footprints have the *smaller* ratio — which is exactly why
//! IB grows sublinearly with memory (§6.4.1).

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, ExperimentReport, TextTable};

use crate::engine::{parallel_map, PAPER_TIMESLICES as TIMESLICES};
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, ib_stats, run};

/// Regenerate Figure 4.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Figure 4: IWS size / memory image size (%) vs timeslice");
    let all_rows: Vec<(Workload, Vec<(u64, f64)>)> = parallel_map(&Workload::SAGE, |&w| {
        let rows = parallel_map(&TIMESLICES, |&ts| {
            let report = run(w, ts);
            (ts, ib_stats(w, &report, ts).avg_ratio_percent)
        });
        (w, rows)
    });
    let mut tb = TraceBuilder::begin();
    if tb.enabled() {
        for (w, _) in &all_rows {
            tb.synthesize(&format!("{}/ts=1s", w.name()), &run(*w, 1));
        }
    }
    let series: Vec<(&str, Vec<(f64, f64)>)> = all_rows
        .iter()
        .map(|(w, rows)| (w.name(), rows.iter().map(|&(ts, v)| (ts as f64, v)).collect::<Vec<_>>()))
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        series.iter().map(|(n, s)| (*n, s.as_slice())).collect();
    writeln!(
        body,
        "{}",
        ascii_multi_plot("IWS : footprint ratio (%) vs timeslice (s)", &series_refs, 60, 14)
    )
    .unwrap();

    let mut t = TextTable::new("").header(&["timeslice (s)", "1000MB", "500MB", "100MB", "50MB"]);
    for (i, &ts) in TIMESLICES.iter().enumerate() {
        t.row(vec![
            ts.to_string(),
            fnum(all_rows[0].1[i].1, 1),
            fnum(all_rows[1].1[i].1, 1),
            fnum(all_rows[2].1[i].1, 1),
            fnum(all_rows[3].1[i].1, 1),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();

    let r1000_1s = all_rows[0].1[0].1;
    let r50_1s = all_rows[3].1[0].1;
    let r1000_20s = all_rows[0].1.last().unwrap().1;
    writeln!(
        body,
        "shape: at 1 s the 1000MB ratio ({r1000_1s:.1}%) is below the 50MB ratio \
         ({r50_1s:.1}%): {}; by 20 s the 1000MB ratio reaches {r1000_20s:.1}% \
         (→ ~53% overwrite per iteration)",
        if r1000_1s < r50_1s { "CONFIRMED" } else { "VIOLATED" },
    )
    .unwrap();
    let comparisons = vec![
        Comparison::new("Fig 4 / Sage-1000MB ratio @1s", 10.0, r1000_1s, "%"),
        Comparison::new("Fig 4 / Sage-50MB ratio @1s", 21.0, r50_1s, "%"),
        Comparison::new("Fig 4 / Sage-1000MB ratio @20s", 31.0, r1000_20s, "%"),
    ];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
