//! Figure 2: maximum and average IB vs checkpoint timeslice (1–20 s)
//! for Sage-1000MB, Sweep3D, BT, SP, FT and LU.
//!
//! Paper shape: average IB decays as the timeslice grows (page reuse);
//! for the short-period codes (the NAS suite, Sweep3D) maximum and
//! average are "practically equivalent" because the timeslices exceed
//! the burst durations; for Sage the maximum at 1 s is ~3.5× the
//! average.

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, ExperimentReport, TextTable};

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, ib_stats, run};

/// The timeslices swept (seconds), matching the paper's x-axis.
pub use crate::engine::PAPER_TIMESLICES as TIMESLICES;

/// The six panels of Figure 2.
pub const PANELS: [Workload; 6] = [
    Workload::Sage1000,
    Workload::Sweep3d,
    Workload::NasBt,
    Workload::NasSp,
    Workload::NasFt,
    Workload::NasLu,
];

/// Sweep one workload; returns (avg, max) per timeslice.
pub fn sweep(w: Workload) -> Vec<(u64, f64, f64)> {
    parallel_map(&TIMESLICES, |&ts| {
        let report = run(w, ts);
        let stats = ib_stats(w, &report, ts);
        (ts, stats.avg_mbps, stats.max_mbps)
    })
}

/// Regenerate Figure 2 (all six panels).
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Figure 2: max and avg IB vs timeslice (1-20 s)");
    let mut comparisons = Vec::new();
    let mut tb = TraceBuilder::begin();
    for (w, rows) in parallel_map(&PANELS, |&w| (w, sweep(w))) {
        // One trace group per panel at the 1 s endpoint (served from
        // the memoized trace engine, so this re-run is a cache hit).
        if tb.enabled() {
            tb.synthesize(&format!("{}/ts=1s", w.name()), &run(w, 1));
        }
        let avg_series: Vec<(f64, f64)> =
            rows.iter().map(|&(ts, avg, _)| (ts as f64, avg)).collect();
        let max_series: Vec<(f64, f64)> =
            rows.iter().map(|&(ts, _, max)| (ts as f64, max)).collect();
        writeln!(
            body,
            "{}",
            ascii_multi_plot(
                &format!("IB vs timeslice: {} (MB/s)", w.name()),
                &[("average", &avg_series), ("maximum", &max_series)],
                60,
                12
            )
        )
        .unwrap();
        let mut t = TextTable::new("").header(&["timeslice (s)", "avg IB", "max IB"]);
        for &(ts, avg, max) in &rows {
            t.row(vec![ts.to_string(), fnum(avg, 1), fnum(max, 1)]);
        }
        writeln!(body, "{}", t.render()).unwrap();
        // Shape metric the paper calls out: the decay factor from 1 s
        // to 20 s of the average IB.
        let decay = rows[0].1 / rows.last().unwrap().1.max(1e-9);
        writeln!(body, "    avg-IB decay 1s→20s: {decay:.1}x\n").unwrap();
        comparisons.push(Comparison::new(
            format!("Fig 2 / {} avg IB @1s", w.name()),
            w.calib().avg_ib_mbps,
            rows[0].1,
            "MB/s",
        ));
        if w == Workload::Sage1000 {
            // The paper quotes 78.8 → 12.1 MB/s across the sweep.
            comparisons.push(Comparison::new(
                "Fig 2a / Sage-1000MB avg IB @20s",
                12.1,
                rows.last().unwrap().1,
                "MB/s",
            ));
        }
    }
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
