//! Figure 2: maximum and average IB vs checkpoint timeslice (1–20 s)
//! for Sage-1000MB, Sweep3D, BT, SP, FT and LU.
//!
//! Paper shape: average IB decays as the timeslice grows (page reuse);
//! for the short-period codes (the NAS suite, Sweep3D) maximum and
//! average are "practically equivalent" because the timeslices exceed
//! the burst durations; for Sage the maximum at 1 s is ~3.5× the
//! average.

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, TextTable};

use crate::{banner, ib_stats, run};

/// The timeslices swept (seconds), matching the paper's x-axis.
pub const TIMESLICES: [u64; 6] = [1, 2, 5, 10, 15, 20];

/// The six panels of Figure 2.
pub const PANELS: [Workload; 6] = [
    Workload::Sage1000,
    Workload::Sweep3d,
    Workload::NasBt,
    Workload::NasSp,
    Workload::NasFt,
    Workload::NasLu,
];

/// Sweep one workload; returns (avg, max) per timeslice.
pub fn sweep(w: Workload) -> Vec<(u64, f64, f64)> {
    TIMESLICES
        .iter()
        .map(|&ts| {
            let report = run(w, ts);
            let stats = ib_stats(w, &report, ts);
            (ts, stats.avg_mbps, stats.max_mbps)
        })
        .collect()
}

/// Regenerate Figure 2 (all six panels).
pub fn run_and_print() -> Vec<Comparison> {
    banner("Figure 2: max and avg IB vs timeslice (1-20 s)");
    let mut comparisons = Vec::new();
    for w in PANELS {
        let rows = sweep(w);
        let avg_series: Vec<(f64, f64)> =
            rows.iter().map(|&(ts, avg, _)| (ts as f64, avg)).collect();
        let max_series: Vec<(f64, f64)> =
            rows.iter().map(|&(ts, _, max)| (ts as f64, max)).collect();
        println!(
            "{}",
            ascii_multi_plot(
                &format!("IB vs timeslice: {} (MB/s)", w.name()),
                &[("average", &avg_series), ("maximum", &max_series)],
                60,
                12
            )
        );
        let mut t = TextTable::new("").header(&["timeslice (s)", "avg IB", "max IB"]);
        for &(ts, avg, max) in &rows {
            t.row(vec![ts.to_string(), fnum(avg, 1), fnum(max, 1)]);
        }
        println!("{}", t.render());
        // Shape metric the paper calls out: the decay factor from 1 s
        // to 20 s of the average IB.
        let decay = rows[0].1 / rows.last().unwrap().1.max(1e-9);
        println!("    avg-IB decay 1s→20s: {decay:.1}x\n");
        comparisons.push(Comparison::new(
            format!("Fig 2 / {} avg IB @1s", w.name()),
            w.calib().avg_ib_mbps,
            rows[0].1,
            "MB/s",
        ));
        if w == Workload::Sage1000 {
            // The paper quotes 78.8 → 12.1 MB/s across the sweep.
            comparisons.push(Comparison::new(
                "Fig 2a / Sage-1000MB avg IB @20s",
                12.1,
                rows.last().unwrap().1,
                "MB/s",
            ));
        }
    }
    comparisons
}
