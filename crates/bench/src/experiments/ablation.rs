//! Ablation studies on the checkpointing system itself.
//!
//! The paper quantifies *requirements*; these ablations quantify the
//! design choices of the checkpointer built on its findings:
//!
//! 1. **Incremental vs full** — bytes moved to stable storage per unit
//!    of virtual time (the paper's core premise: the delta is small).
//! 2. **Checkpoint interval** — longer intervals amortize page reuse,
//!    the actual-traffic analogue of Figure 2's IB decay.
//! 3. **Re-base frequency / chain length** — lineage length against
//!    restore cost (bytes read, chunks applied), plus the effect of
//!    explicit chain compaction (gc).
//! 4. **Stop-and-copy vs forked** — application stall per checkpoint
//!    when the write is synchronous vs streamed in the background with
//!    a deferred commit.
//! 5. **Memory exclusion (§4.2)** — checkpoint bytes Sage's freed
//!    workspace would have cost an exclusion-unaware checkpointer.
//! 6. **Per-rank vs shared storage** — with one shared array the
//!    coordinated checkpoint's synchronized writes serialize, so the
//!    stall grows with the rank count; per-rank paths keep it flat.
//! 7. **Multilevel redundancy under node loss** — single-tier
//!    (node-local cache only) vs partner replication vs XOR parity
//!    when a node dies mid-run: the redundant schemes reconstruct the
//!    last committed generation over the network and resume there,
//!    while the single-tier baseline is forced back to the last
//!    generation fully drained to the shared array. All configurations
//!    must finish byte-identical to the failure-free run.

use std::fmt::Write as _;
use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::AppModel;
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, RedundancyConfig,
    RunOutcome, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::core::restore::{restore_rank, restore_rank_sequential};
use ickpt::mem::{BackedSpace, DataLayout, LayoutBuilder, PAGE_SIZE};
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime};
use ickpt::storage::{gc, Chunk, ChunkKey, DrainTopology, MemStore, RecoverySource, SchemeSpec};
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use ickpt::obs::Recorder;

use crate::banner_string;
use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;

const NRANKS: usize = 4;

type Section = (String, Vec<Comparison>);
/// A section runner: takes its pre-allocated trace recorder.
type SectionFn = fn(Recorder) -> Section;

fn layout() -> DataLayout {
    LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build()
}

fn build(rank: usize) -> Box<dyn AppModel> {
    Box::new(SyntheticApp::new(SyntheticConfig {
        footprint_pages: 1024,
        writes_per_iter: 256,
        exchange_bytes: 8192,
        rank,
        nranks: NRANKS,
        ..Default::default()
    }))
}

fn ft_config(policy: CheckpointPolicy, iters: u64) -> FaultTolerantConfig {
    FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: iters,
        timeslice: SimDuration::from_secs(1),
        policy,
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures: vec![],
        net: NetConfig::qsnet(),
        max_attempts: 1,
        redundancy: None,
        obs: ickpt_obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
    }
}

/// Ablation 4: synchronous vs forked checkpointing stall.
///
/// Each section receives a pre-allocated recorder (one trace group per
/// section) and attaches it to its most representative run, so the
/// flight-recorder groups stay deterministic under the parallel
/// scheduler.
fn mode_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 4: stop-and-copy vs forked (background write, deferred commit)")
        .unwrap();
    let policy = CheckpointPolicy::incremental(SimDuration::from_secs(3), 0);
    let stop = run_fault_tolerant(&ft_config(policy, 30), layout(), build).unwrap();
    let mut fork_cfg = ft_config(policy, 30);
    fork_cfg.mode = CheckpointMode::Forked { fork_cost_per_page_ns: 200, cow_copy_ns: 2_000 };
    fork_cfg.obs = obs;
    let fork = run_fault_tolerant(&fork_cfg, layout(), build).unwrap();
    let s0 = &stop.ranks[0];
    let f0 = &fork.ranks[0];
    let mut t = TextTable::new("").header(&[
        "mode",
        "checkpoints",
        "total stall",
        "stall/ckpt",
        "commit lag/ckpt",
    ]);
    for (name, r) in [("stop-and-copy", s0), ("forked", f0)] {
        t.row(vec![
            name.to_string(),
            r.checkpoints.to_string(),
            format!("{}", r.checkpoint_stall),
            format!("{}", r.checkpoint_stall / r.checkpoints.max(1)),
            format!("{}", r.commit_lag / r.checkpoints.max(1)),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();
    let speedup = s0.checkpoint_stall.as_secs_f64() / f0.checkpoint_stall.as_secs_f64().max(1e-9);
    writeln!(
        body,
        "forked mode reduces the application stall {speedup:.1}x (at the cost of deferred commits)"
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "Ablation / forked stall reduction (expect >2x)",
        2.0,
        speedup.min(99.0),
        "x",
    ));
    (body, comparisons)
}

/// Ablation 5: the §4.2 memory-exclusion saving on Sage.
fn exclusion_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 5: memory exclusion (§4.2) on Sage's dynamic memory").unwrap();
    let w = ickpt::apps::Workload::Sage50;
    let scale = 0.05;
    let nranks = NRANKS;
    let cfg = FaultTolerantConfig {
        nranks,
        max_iterations: 6,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(20), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures: vec![],
        net: NetConfig::qsnet(),
        max_attempts: 1,
        redundancy: None,
        obs,
        dedup: None,
        write_profile: Default::default(),
    };
    let report = run_fault_tolerant(&cfg, w.layout(scale), move |rank| {
        Box::new(w.build(rank, nranks, scale, 11))
    })
    .unwrap();
    let r0 = &report.ranks[0];
    let excluded_bytes = r0.excluded_pages * 4096;
    let saving = excluded_bytes as f64 / (excluded_bytes + r0.checkpoint_bytes) as f64;
    writeln!(
        body,
        "rank 0 wrote {} checkpoint bytes; exclusion dropped {} dirty pages ({} bytes)          of freed workspace — a {:.0}% traffic saving vs an exclusion-unaware checkpointer",
        r0.checkpoint_bytes,
        r0.excluded_pages,
        excluded_bytes,
        saving * 100.0
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "Ablation / exclusion saving on Sage (expect >20%)",
        20.0,
        saving * 100.0,
        "%",
    ));
    (body, comparisons)
}

/// Ablation 1+2: checkpoint traffic, incremental vs full, across
/// intervals.
fn traffic_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 1+2: checkpoint traffic (rank-0 bytes) over 40 virtual seconds")
        .unwrap();
    writeln!(body, "  synthetic: 4 MiB footprint, 1 MiB working set per 1 s iteration").unwrap();
    let mut t =
        TextTable::new("").header(&["interval (s)", "full bytes", "incremental bytes", "saving"]);
    let mut saving_at_2 = 0.0;
    for interval in [2u64, 5, 10] {
        let full_cfg =
            ft_config(CheckpointPolicy::always_full(SimDuration::from_secs(interval)), 40);
        let full = run_fault_tolerant(&full_cfg, layout(), build).unwrap();
        let mut incr_cfg =
            ft_config(CheckpointPolicy::incremental(SimDuration::from_secs(interval), 0), 40);
        if interval == 2 {
            incr_cfg.obs = obs.clone();
        }
        let incr = run_fault_tolerant(&incr_cfg, layout(), build).unwrap();
        let fb = full.ranks[0].checkpoint_bytes;
        let ib = incr.ranks[0].checkpoint_bytes;
        let saving = 1.0 - ib as f64 / fb as f64;
        if interval == 2 {
            saving_at_2 = saving;
        }
        t.row(vec![
            interval.to_string(),
            fb.to_string(),
            ib.to_string(),
            format!("{}%", fnum(saving * 100.0, 0)),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();
    // The synthetic app overwrites 1/4 of its image per iteration, so
    // increments approach a 75 % saving over full checkpoints.
    comparisons.push(Comparison::new(
        "Ablation / incremental saving @2s interval (expected ~72%)",
        72.0,
        saving_at_2 * 100.0,
        "%",
    ));
    (body, comparisons)
}

/// Ablation 3: chain length vs restore cost, and gc compaction.
fn chain_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 3: re-base frequency vs restore cost (rank 0)").unwrap();
    writeln!(body, "  planned = latest-wins plan (each page decoded once); seq = chain replay")
        .unwrap();
    let mut t = TextTable::new("").header(&[
        "full_every",
        "generations",
        "chain length",
        "restore bytes",
        "planned pages",
        "seq pages",
        "dead skipped",
    ]);
    let mut longest_chain = 0usize;
    let mut longest_planned = 0u64;
    let mut longest_seq = 0u64;
    for full_every in [0u64, 4, 2, 1] {
        let cfg =
            ft_config(CheckpointPolicy::incremental(SimDuration::from_secs(2), full_every), 30);
        let result = run_fault_tolerant(&cfg, layout(), build).unwrap();
        let gen = result.ranks[0].last_committed.expect("checkpoints taken");
        let mut space = BackedSpace::new(layout());
        let report = restore_rank(cfg.store.as_ref(), 0, gen, &mut space).unwrap();
        let mut seq_space = BackedSpace::new(layout());
        let seq = restore_rank_sequential(cfg.store.as_ref(), 0, gen, &mut seq_space).unwrap();
        assert_eq!(
            space.content_digest(),
            seq_space.content_digest(),
            "planned and sequential restores must agree"
        );
        if report.chain_length > longest_chain {
            longest_chain = report.chain_length;
            longest_planned = report.pages_applied;
            longest_seq = seq.pages_applied;
        }
        t.row(vec![
            full_every.to_string(),
            (gen + 1).to_string(),
            report.chain_length.to_string(),
            report.bytes_read.to_string(),
            report.pages_applied.to_string(),
            seq.pages_applied.to_string(),
            report.pages_superseded.to_string(),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();
    writeln!(
        body,
        "longest chain ({longest_chain} chunks): planned restore applies {longest_planned} pages \
         where sequential replay writes {longest_seq}"
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "Ablation / planned restore page writes vs replay (expect <1x)",
        1.0,
        longest_planned as f64 / longest_seq.max(1) as f64,
        "x",
    ));

    // Compaction: merge the unbounded chain and restore again.
    let mut cfg = ft_config(CheckpointPolicy::incremental(SimDuration::from_secs(2), 0), 30);
    cfg.obs = obs;
    let result = run_fault_tolerant(&cfg, layout(), build).unwrap();
    let gen = result.ranks[0].last_committed.unwrap();
    let mut space = BackedSpace::new(layout());
    let before = restore_rank(cfg.store.as_ref(), 0, gen, &mut space).unwrap();
    // Discover the chain by walking parents, then compact it.
    let mut chain = Vec::new();
    let mut g = gen;
    loop {
        let chunk = Chunk::decode(&cfg.store.get_chunk(ChunkKey::new(0, g)).unwrap()).unwrap();
        chain.push(g);
        match chunk.parent {
            Some(p) => g = p,
            None => break,
        }
    }
    chain.reverse();
    gc::compact_rank_chain(cfg.store.as_ref(), 0, &chain, None).unwrap();
    let digest_before = space.content_digest();
    let mut space2 = BackedSpace::new(layout());
    let after = restore_rank(cfg.store.as_ref(), 0, gen, &mut space2).unwrap();
    writeln!(
        body,
        "gc compaction: chain {} → {} chunks, restore bytes {} → {}, image identical: {}",
        before.chain_length,
        after.chain_length,
        before.bytes_read,
        after.bytes_read,
        space2.content_digest() == digest_before
    )
    .unwrap();
    assert_eq!(space2.content_digest(), digest_before, "compaction must not change the image");
    comparisons.push(Comparison::new(
        "Ablation / compacted chain length",
        1.0,
        after.chain_length as f64,
        "chunks",
    ));
    (body, comparisons)
}

/// Ablation 6: storage-path topology — per-rank devices vs one shared
/// array.
fn storage_path_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 6: per-rank disks vs one shared storage array").unwrap();
    let mut t = TextTable::new("").header(&["ranks", "per-rank stall/ckpt", "shared stall/ckpt"]);
    let mut shared_growth = Vec::new();
    for nranks in [2usize, 4, 8] {
        let mut stalls = Vec::new();
        for path in [StoragePath::PerRank, StoragePath::Shared] {
            let cfg = FaultTolerantConfig {
                nranks,
                max_iterations: 20,
                timeslice: SimDuration::from_secs(1),
                policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
                store: Arc::new(MemStore::new()),
                device: DevicePreset::ScsiDisk,
                mode: CheckpointMode::StopAndCopy,
                storage_path: path,
                failures: vec![],
                net: NetConfig::qsnet(),
                max_attempts: 1,
                redundancy: None,
                // Per-rank device lanes are the interesting view here;
                // the Shared-flat path stays uninstrumented (see
                // cluster.rs) so only the largest PerRank run records.
                obs: if nranks == 8 && path == StoragePath::PerRank {
                    obs.clone()
                } else {
                    Recorder::disabled()
                },
                dedup: None,
                write_profile: Default::default(),
            };
            let build = move |rank: usize| -> Box<dyn AppModel> {
                Box::new(SyntheticApp::new(SyntheticConfig {
                    footprint_pages: 2048,
                    writes_per_iter: 512,
                    exchange_bytes: 4096,
                    rank,
                    nranks,
                    ..Default::default()
                }))
            };
            let report = run_fault_tolerant(&cfg, layout(), build).unwrap();
            // The coordinated release barrier makes the *max* stall the
            // relevant figure; report the slowest rank.
            let worst = report
                .ranks
                .iter()
                .map(|r| r.checkpoint_stall.as_secs_f64() / r.checkpoints.max(1) as f64)
                .fold(0.0f64, f64::max);
            stalls.push(worst);
        }
        shared_growth.push(stalls[1]);
        t.row(vec![
            nranks.to_string(),
            format!("{:.1} ms", stalls[0] * 1e3),
            format!("{:.1} ms", stalls[1] * 1e3),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();
    let growth = shared_growth[2] / shared_growth[0].max(1e-9);
    writeln!(
        body,
        "shared-array stall grows {growth:.1}x from 2 to 8 ranks (per-rank paths stay flat)"
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "Ablation / shared-array stall growth 2→8 ranks (expect ~4x)",
        4.0,
        growth,
        "x",
    ));
    (body, comparisons)
}

/// Ablation 7: multilevel redundancy under node loss — single-tier vs
/// partner replication vs XOR parity.
fn redundancy_ablation(obs: Recorder) -> Section {
    let mut body = String::new();
    let mut comparisons = Vec::new();
    writeln!(body, "ablation 7: multilevel redundancy under node loss (rank 1 dies at t=15 s)")
        .unwrap();
    writeln!(
        body,
        "  node-local tier + scheme over the NIC, every 4th generation drained to the array"
    )
    .unwrap();
    let iters = 30u64;
    let policy = CheckpointPolicy::incremental(SimDuration::from_secs(2), 4);
    // Failure-free reference: the byte-exact application state every
    // recovered run must reproduce.
    let reference = run_fault_tolerant(&ft_config(policy, iters), layout(), build).unwrap();
    let ref_digest = reference.ranks[0].content_digest.expect("backed run has digest");

    let schemes = [
        SchemeSpec::LocalOnly,
        SchemeSpec::Partner { offset: 1 },
        SchemeSpec::XorParity { group_size: 2 },
    ];
    let mut t = TextTable::new("").header(&[
        "scheme",
        "recovery",
        "resume gen",
        "wasted (s)",
        "local MB",
        "redund MB",
        "drained MB",
        "digest ok",
    ]);
    let mut digests_ok = 0u32;
    let mut resume_gens = Vec::new();
    let outcomes = parallel_map(&schemes, |&scheme| {
        let mut cfg = ft_config(policy, iters);
        cfg.failures = vec![FailureSpec::node_loss(1, SimTime::from_secs(15))];
        cfg.max_attempts = 4;
        // Only the partner run records, so the section's single trace
        // group is written by exactly one run regardless of how the
        // scheme closures are scheduled.
        if matches!(scheme, SchemeSpec::Partner { .. }) {
            cfg.obs = obs.clone();
        }
        cfg.redundancy = Some(RedundancyConfig {
            scheme,
            local_device: DevicePreset::NodeLocal,
            drain_every: 4,
            drain_topology: DrainTopology::Flat,
        });
        run_fault_tolerant(&cfg, layout(), build).unwrap()
    });
    for (scheme, report) in schemes.iter().zip(outcomes) {
        assert_eq!(report.outcome, RunOutcome::Completed, "{scheme:?} must recover");
        let rec = report.recoveries.first().expect("one failure injected");
        let digest_ok = report.ranks[0].content_digest == Some(ref_digest);
        digests_ok += digest_ok as u32;
        resume_gens.push(rec.generation);
        let tier = report.ranks[1].tier.expect("tiered run reports usage");
        let drain = report.drain.expect("tiered run reports drain stats");
        t.row(vec![
            scheme.name().to_string(),
            rec.source.name().to_string(),
            rec.generation.map_or("-".into(), |g| g.to_string()),
            fnum(report.wasted.as_secs_f64(), 2),
            fnum(tier.local_bytes as f64 / 1e6, 2),
            fnum(tier.redundancy_bytes as f64 / 1e6, 2),
            fnum(drain.drained_bytes as f64 / 1e6, 2),
            digest_ok.to_string(),
        ]);
        // The redundant schemes must come back over the network at the
        // last committed generation; the single-tier baseline is forced
        // back to the durable tier.
        let expect = match scheme {
            SchemeSpec::LocalOnly => RecoverySource::Durable,
            _ => RecoverySource::Reconstructed,
        };
        assert_eq!(rec.source, expect, "{scheme:?} recovery source");
    }
    writeln!(body, "{}", t.render()).unwrap();
    let baseline_gen = resume_gens[0].expect("a drained generation exists");
    let partner_gen = resume_gens[1].expect("partner resumes at a committed generation");
    writeln!(
        body,
        "partner/XOR reconstruct generation {partner_gen} over the interconnect; the \
         single-tier baseline loses {} generations falling back to the drained generation \
         {baseline_gen}",
        partner_gen - baseline_gen
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "Ablation / node-loss recoveries byte-identical to failure-free (expect 3)",
        3.0,
        digests_ok as f64,
        "runs",
    ));
    comparisons.push(Comparison::new(
        "Ablation / generations saved by redundancy vs single-tier (expect >0)",
        3.0,
        (partner_gen - baseline_gen) as f64,
        "gens",
    ));
    (body, comparisons)
}

/// Run all ablations (independent sections, scheduled in parallel,
/// rendered in the fixed order below).
pub fn report() -> ExperimentReport {
    let mut body =
        banner_string("Ablations: incremental vs full, interval sweep, chain length & gc");
    let sections: [(&str, SectionFn); 6] = [
        ("ablation1+2-traffic", traffic_ablation),
        ("ablation3-chain", chain_ablation),
        ("ablation4-mode", mode_ablation),
        ("ablation5-exclusion", exclusion_ablation),
        ("ablation6-storage-path", storage_path_ablation),
        ("ablation7-redundancy", redundancy_ablation),
    ];
    // One trace group per section, allocated here in render order so
    // group numbering is independent of the parallel schedule.
    let mut tb = TraceBuilder::begin();
    let jobs: Vec<(SectionFn, Recorder)> =
        sections.iter().map(|&(name, f)| (f, tb.recorder(name))).collect();
    let mut comparisons = Vec::new();
    for (i, (text, rows)) in parallel_map(&jobs, |(f, rec)| f(rec.clone())).into_iter().enumerate()
    {
        if i > 0 {
            body.push('\n');
        }
        body.push_str(&text);
        comparisons.extend(rows);
    }
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the ablations and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
