//! Figure 5 extended: per-process IB vs rank count pushed past the
//! paper's 64-processor ceiling — 64 → 4096 → 16384 ranks under weak
//! scaling, on the event-driven cluster engine.
//!
//! The paper's §6.4.2 claim ("the number of processors doesn't have a
//! significant influence on the IB") was measured up to 64 processors
//! and argued to generalize; this experiment actually runs the model
//! at BlueGene-class rank counts. Runs go through [`characterize`]
//! directly (the trace-once cache only memoizes the paper's
//! configurations) with [`ReportDetail::compact`], so per-rank state
//! stays bounded at 16k ranks.
//!
//! ## Knobs
//!
//! * `ICKPT_BENCH_EXT_RANKS` — comma-separated rank counts
//!   (default `64,1024,4096,16384`).
//! * `ICKPT_BENCH_EXT_SCALE` — memory scale factor (default `0.1`:
//!   ~100 MB/process Sage, keeping 16k ranks in laptop memory).
//! * `ICKPT_BENCH_EXT_SECONDS` — virtual run length (default 120 s).
//! * `ICKPT_SIM_WORKERS` — engine worker threads; stdout is
//!   byte-identical at any value (host timings go to stderr).

use std::fmt::Write as _;
use std::time::Instant;

use ickpt::apps::Workload;
use ickpt::cluster::{
    characterize, reduce_reports, CharacterizationConfig, ReportDetail, RunReport,
    DEFAULT_REDUCE_ARITY,
};
use ickpt::core::metrics::IbStats;
use ickpt::sim::{SimDuration, SimTime};
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use crate::obs_glue::TraceBuilder;
use crate::{knob, BENCH_SEED};

/// The default extended sweep: the paper's largest configuration, then
/// three orders past it.
pub const DEFAULT_EXT_RANKS: [usize; 4] = [64, 1024, 4096, 16384];

/// Rank counts for the extended sweep (`ICKPT_BENCH_EXT_RANKS`).
// Mirrors `knob`: aborting with a message is the sanctioned use of
// stderr in this library.
#[allow(clippy::disallowed_macros)]
pub fn ext_ranks() -> Vec<usize> {
    let Ok(raw) = std::env::var("ICKPT_BENCH_EXT_RANKS") else {
        return DEFAULT_EXT_RANKS.to_vec();
    };
    let parsed: Result<Vec<usize>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    match parsed {
        Ok(v) if !v.is_empty() && v.iter().all(|&r| r >= 1) => v,
        _ => {
            eprintln!(
                "error: ICKPT_BENCH_EXT_RANKS={raw:?} is invalid: expected a comma-separated \
                 list of rank counts >= 1"
            );
            std::process::exit(2);
        }
    }
}

/// Memory scale of the extended sweep (`ICKPT_BENCH_EXT_SCALE`).
pub fn ext_scale() -> f64 {
    knob("ICKPT_BENCH_EXT_SCALE", 0.1, "a finite scale factor > 0", |&s: &f64| {
        s > 0.0 && s.is_finite()
    })
}

/// Virtual run length of the extended sweep (`ICKPT_BENCH_EXT_SECONDS`).
pub fn ext_seconds() -> u64 {
    knob("ICKPT_BENCH_EXT_SECONDS", 120, "a whole number of seconds >= 10", |&s: &u64| s >= 10)
}

/// One extended run: Sage under weak scaling at `nranks`.
pub fn ext_run(nranks: usize) -> RunReport {
    let cfg = CharacterizationConfig {
        nranks,
        scale: ext_scale(),
        run_for: SimDuration::from_secs(ext_seconds()),
        timeslice: SimDuration::from_secs(1),
        seed: BENCH_SEED,
        detail: ReportDetail::compact(),
        ..Default::default()
    };
    let w = Workload::Sage1000;
    characterize(w, &cfg)
}

/// Rank-0 IB with only the data-initialization burst excluded (the
/// 120 s default is shorter than a full Sage period, so Figure 5's
/// full-period warm-up exclusion would skip everything).
fn ext_ib(report: &RunReport) -> IbStats {
    let init_s = Workload::Sage1000.calib().footprint_avg_mb / 400.0;
    let raw = IbStats::from_samples(
        &report.ranks[0].samples,
        SimDuration::from_secs(1),
        SimTime::from_secs_f64(init_s + 1.0),
    );
    let rescale = 1.0 / ext_scale();
    IbStats { avg_mbps: raw.avg_mbps * rescale, max_mbps: raw.max_mbps * rescale, ..raw }
}

/// Regenerate the extended figure.
pub fn report() -> ExperimentReport {
    let ranks = ext_ranks();
    let mut body = format!(
        "\n=== Figure 5 extended: per-process IB, {} ranks (Sage, weak scaling) ===\n    \
         config: scale {}, {} virtual s, seed {:#x}, compact reports\n\n",
        ranks.iter().map(|r| r.to_string()).collect::<Vec<_>>().join("/"),
        ext_scale(),
        ext_seconds(),
        BENCH_SEED,
    );
    let mut t = TextTable::new("").header(&[
        "ranks",
        "rank0 avg IB (MB/s)",
        "rank0 max IB (MB/s)",
        "cluster avg IWS (MB/rank/slice)",
        "iterations",
    ]);
    let mut rows: Vec<(usize, f64)> = Vec::new();
    // Ring capacity scaled for the largest run keeps a 16k-rank trace
    // export loadable (`--trace-out`).
    let mut tb = TraceBuilder::begin_scaled(ranks.iter().copied().max().unwrap_or(64));
    for &n in &ranks {
        let host_t0 = Instant::now();
        let report = ext_run(n);
        let elapsed = host_t0.elapsed().as_secs_f64();
        host_timing(n, elapsed);
        tb.synthesize(&format!("{n}ranks"), &report);
        let agg = reduce_reports(&report.ranks, DEFAULT_REDUCE_ARITY);
        let ib = ext_ib(&report);
        t.row(vec![
            n.to_string(),
            fnum(ib.avg_mbps, 1),
            fnum(ib.max_mbps, 1),
            fnum(agg.summary.avg_iws_mb() / ext_scale(), 1),
            agg.max_iterations.to_string(),
        ]);
        rows.push((n, ib.avg_mbps));
    }
    writeln!(body, "{}", t.render()).unwrap();

    let (r0, ib0) = rows[0];
    let (r_max, ib_max) = *rows.last().unwrap();
    writeln!(
        body,
        "weak scaling past the paper (§6.4.2): per-process IB at {r_max} ranks ({:.1}) vs \
         {r0} ranks ({:.1}): {:+.1}% — flat-or-lower past the paper's cluster: {}",
        ib_max,
        ib0,
        100.0 * (ib_max - ib0) / ib0,
        if ib_max <= ib0 * 1.05 { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();
    let comparisons = vec![Comparison::new(
        format!("Fig 5 ext / avg IB ratio {r_max}:{r0} ranks"),
        1.0,
        ib_max / ib0,
        "x",
    )];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Host wall-clock per sweep point — stderr only, so stdout stays
/// byte-identical across `ICKPT_SIM_WORKERS` values.
// Sanctioned stderr write: timing is host-dependent by nature and must
// never reach the deterministic report body.
#[allow(clippy::disallowed_macros)]
fn host_timing(nranks: usize, elapsed_s: f64) {
    eprintln!(
        "fig5_extended: {nranks} ranks in {elapsed_s:.1}s host time ({:.0} ranks/s)",
        nranks as f64 / elapsed_s.max(1e-9)
    );
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_extend_the_paper() {
        // Anchor at the paper's 64-processor ceiling, end 256x past it.
        assert_eq!(DEFAULT_EXT_RANKS[0], 64);
        assert_eq!(*DEFAULT_EXT_RANKS.last().unwrap(), 16384);
        assert!(DEFAULT_EXT_RANKS.windows(2).all(|w| w[0] < w[1]));
    }
}
