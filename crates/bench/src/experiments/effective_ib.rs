//! Effective IB vs dirty IB: content dedup + delta encoding below the
//! dirty-page floor.
//!
//! The paper measures incremental checkpoint traffic at dirty-*page*
//! granularity: a page is shipped whole the moment its dirty bit fires.
//! Real codes rewrite many pages with unchanged values (silent stores)
//! or touch only a few cache lines of them, so the bytes that *must*
//! reach storage — the effective IB — sit below that floor. This
//! experiment runs the modelled applications on content-backed spaces
//! under the [`WriteProfile::Scientific`] content model, captures the
//! identical run twice (content layer off, then on), verifies the two
//! runs stay byte-identical end to end, and measures how far dedup +
//! delta encoding push checkpoint traffic below dirty-page accounting.
//!
//! The self-check row compares the byte saving the content layer
//! *accounted* (silent-same drops + delta compression from
//! [`ContentStats`]) against the saving *measured* as the difference of
//! encoded checkpoint bytes between the two runs — the two must agree
//! up to per-record framing overhead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use ickpt::apps::{AppModel, Workload};
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FaultTolerantConfig, RunOutcome, RunReport, StoragePath,
};
use ickpt::core::checkpoint::ContentStats;
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::mem::WriteProfile;
use ickpt::net::NetConfig;
use ickpt::obs::{CaptureKind, Event, FlightRecorder, Recorder};
use ickpt::sim::{DevicePreset, SimDuration};
use ickpt::storage::MemStore;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, ExperimentReport, TextTable};

use crate::banner_string;
use crate::engine::parallel_map;

const NRANKS: usize = 2;
const ITERATIONS: u64 = 24;
const SCALE: f64 = 0.05;
const APPS: [Workload; 3] = [Workload::Sage50, Workload::Sweep3d, Workload::NasSp];

/// One run of `workload` with the content layer forced on or off;
/// returns the run report plus encoded checkpoint bytes per generation
/// (summed over ranks, incrementals only).
fn run(workload: Workload, dedup: bool) -> (RunReport, BTreeMap<u64, u64>) {
    let fr = FlightRecorder::with_default_capacity();
    // Interval ~1.5 iteration periods, so a checkpoint fires every
    // couple of boundaries regardless of the app's clock (SP iterates
    // in 0.16 s, Sage-50MB in 20 s).
    let interval = SimDuration::from_secs_f64((1.5 * workload.calib().period_s).max(0.1));
    let cfg = FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: ITERATIONS,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(interval, 4),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures: vec![],
        net: NetConfig::qsnet(),
        max_attempts: 1,
        redundancy: None,
        obs: Recorder::new(fr.clone()),
        dedup: Some(dedup),
        write_profile: WriteProfile::Scientific,
    };
    let build = move |rank: usize| -> Box<dyn AppModel> {
        Box::new(workload.build(rank, NRANKS, SCALE, 11))
    };
    let report = run_fault_tolerant(&cfg, workload.layout(SCALE), build).expect("run completes");
    assert_eq!(report.outcome, RunOutcome::Completed);

    let mut per_gen: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, events, _) in &fr.snapshot().tracks {
        for ev in events {
            if let Event::Capture {
                kind: CaptureKind::Incremental,
                generation,
                payload_bytes,
                ..
            } = ev.event
            {
                *per_gen.entry(generation).or_insert(0) += payload_bytes;
            }
        }
    }
    (report, per_gen)
}

/// Run the effective-IB study.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Effective IB vs dirty IB: content dedup + delta encoding");
    writeln!(
        body,
        "{NRANKS} ranks, {ITERATIONS} iterations, scale {SCALE}, Scientific write profile \
         (3/8 full rewrites, 3/8 sub-page updates, 2/8 silent stores); \
         incremental checkpoints every ~1.5 iteration periods, re-base every 4"
    )
    .unwrap();

    let mut t = TextTable::new("").header(&[
        "application",
        "dirty IB (MB)",
        "effective IB (MB)",
        "reduction",
        "silent pages",
        "delta pages",
        "delta blocks/page",
    ]);
    let mut rows = Vec::new();
    let outcomes = parallel_map(&APPS, |&w| (w, run(w, false), run(w, true)));
    let mut plots = String::new();
    for (w, (off, gen_off), (on, gen_on)) in outcomes {
        // End-to-end safety: forcing the content layer on must not
        // change a single byte of the application's memory image.
        for (a, b) in off.ranks.iter().zip(&on.ranks) {
            assert_eq!(a.content_digest, b.content_digest, "{}: dedup changed content", w.name());
            assert_eq!(a.iterations, b.iterations);
        }

        let dirty: u64 = off.ranks.iter().map(|r| r.checkpoint_bytes).sum();
        let effective: u64 = on.ranks.iter().map(|r| r.checkpoint_bytes).sum();
        let mut stats = ContentStats::default();
        for r in &on.ranks {
            stats.merge(r.content);
        }
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        let reduction = 100.0 * (1.0 - effective as f64 / dirty.max(1) as f64);
        t.row(vec![
            w.name().to_string(),
            fnum(mb(dirty), 2),
            fnum(mb(effective), 2),
            fnum(reduction, 1) + "%",
            stats.dropped_pages.to_string(),
            stats.delta_pages.to_string(),
            fnum(stats.delta_blocks as f64 / stats.delta_pages.max(1) as f64, 1),
        ]);

        // Per-generation figure: the incremental chunks' encoded bytes
        // with dirty-page accounting vs with the content layer on.
        let series = |m: &BTreeMap<u64, u64>| -> Vec<(f64, f64)> {
            m.iter().map(|(&g, &b)| (g as f64, b as f64 / 1024.0)).collect()
        };
        let (s_off, s_on) = (series(&gen_off), series(&gen_on));
        writeln!(
            plots,
            "{}",
            ascii_multi_plot(
                &format!("incremental chunk bytes per generation: {} (KB)", w.name()),
                &[("dirty", &s_off), ("effective", &s_on)],
                60,
                10
            )
        )
        .unwrap();

        // Self-check: the saving the content layer accounted must match
        // the saving measured between the two runs (up to per-record
        // framing).
        let accounted = stats.dropped_bytes() + stats.delta_saved_bytes();
        let measured = dirty.saturating_sub(effective);
        rows.push(Comparison::new(
            format!("Effective-IB / {} bytes saved (accounted vs measured)", w.name()),
            mb(accounted),
            mb(measured),
            "MB",
        ));
        rows.push(Comparison::new(
            format!("Effective-IB / {} effective below dirty floor", w.name()),
            100.0,
            if effective < dirty { 100.0 } else { 0.0 },
            "%",
        ));
    }
    writeln!(body, "{}", t.render()).unwrap();
    writeln!(body, "{plots}").unwrap();
    writeln!(
        body,
        "dirty IB ships every dirty-flagged page whole; effective IB is what remains after \
         silent-same pages are dropped and partially-written pages are delta-encoded \
         (sub-page blocks of 256 B)."
    )
    .unwrap();
    ExperimentReport::new(body, rows)
}

/// Print the effective-IB study and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
