//! Experiment implementations, one module per paper table/figure.
//!
//! Each module exposes `report()`, which executes the experiment and
//! returns the rendered output plus paper-vs-measured
//! [`ickpt_analysis::Comparison`] rows as an
//! [`ickpt_analysis::ExperimentReport`] — experiments never print, so
//! the scheduler can run them concurrently and emit output in a fixed
//! order. `run_and_print()` is the print-immediately convenience the
//! bench targets under `benches/` call; the `repro` binary runs
//! everything.

pub mod ablation;
pub mod availability;
pub mod effective_ib;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig5_extended;
pub mod intrusive;
pub mod multi_tenant;
pub mod table2;
pub mod table3;
pub mod table4;
