//! Experiment implementations, one module per paper table/figure.
//!
//! Each module exposes `run_and_print()` which executes the experiment,
//! prints the regenerated table/figure, and returns paper-vs-measured
//! [`ickpt_analysis::Comparison`] rows for `EXPERIMENTS.md`. The bench
//! targets under `benches/` are thin wrappers; the `repro` binary runs
//! everything.

pub mod ablation;
pub mod availability;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod intrusive;
pub mod table2;
pub mod table3;
pub mod table4;
