//! §6.5 — Intrusiveness: the slowdown the instrumentation itself
//! causes.
//!
//! Paper: "a slowdown lower than 10% for a timeslice of 1 s. Most of
//! the overhead is caused by the page fault handler [...] when we
//! increase the timeslice the impact of the page fault handler is
//! mitigated by the data reuse."
//!
//! Two measurements:
//!
//! 1. **Simulated**: Sage-1000MB with a per-fault cost of 4 µs and
//!    clock stretching, across timeslices — the fleet-level view. The
//!    paper's own numbers imply this cost: ~78.8 MB/s of faulting
//!    pages (19.2k faults/s) at "< 10%" slowdown bounds the
//!    fault+handler+`mprotect` path at ~5 µs on the Itanium-II.
//! 2. **Native**: the real `mprotect`/`SIGSEGV` tracker from
//!    `ickpt-native` sweeping a region on this machine, tracked vs
//!    untracked wall time. Host wall-clock is not a function of the
//!    seed, so this half only runs when `ICKPT_BENCH_NATIVE=1` —
//!    keeping the default suite byte-reproducible run to run.

use std::fmt::Write as _;
use std::time::Duration;

use ickpt::apps::Workload;
use ickpt::cluster::{characterize, CharacterizationConfig};
use ickpt::native::intrusiveness::measure;
use ickpt::sim::SimDuration;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use ickpt::obs::Recorder;

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, bench_ranks, bench_scale, run_length, BENCH_SEED};

/// Simulated slowdown of Sage-1000MB at a given timeslice. Stays on
/// the direct simulation: a nonzero fault cost couples the clock to
/// the timeslice, which is exactly what the trace engine's exactness
/// argument excludes. These runs are live (not trace-derived), so the
/// flight recorder instruments them directly when tracing is on.
fn simulated_slowdown(ts: u64, obs: Recorder) -> f64 {
    let w = Workload::Sage1000;
    let cfg = CharacterizationConfig {
        nranks: bench_ranks().min(8),
        scale: bench_scale(),
        run_for: run_length(w, ts).min(SimDuration::from_secs(500)),
        timeslice: SimDuration::from_secs(ts),
        fault_cost: SimDuration::from_micros(4),
        stretch_overhead: true,
        seed: BENCH_SEED,
        obs,
        ..Default::default()
    };
    let report = characterize(w, &cfg);
    let r0 = &report.ranks[0];
    r0.overhead.as_secs_f64() / (r0.final_time.as_secs_f64() - r0.overhead.as_secs_f64())
}

/// Regenerate the §6.5 intrusiveness experiment.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Section 6.5: Intrusiveness");
    let mut comparisons = Vec::new();

    writeln!(body, "simulated: Sage-1000MB, 4 us per page fault, clocks stretched").unwrap();
    let mut t = TextTable::new("").header(&["timeslice (s)", "slowdown"]);
    let mut slow_1s = 0.0;
    let mut prev = f64::MAX;
    let mut monotone = true;
    // Recorders are allocated up front, in timeslice order, so group
    // numbering stays deterministic under the parallel scheduler.
    let mut tb = TraceBuilder::begin();
    let runs: Vec<(u64, Recorder)> =
        [1u64, 2, 5, 10, 20].iter().map(|&ts| (ts, tb.recorder(&format!("ts={ts}s")))).collect();
    let slowdowns = parallel_map(&runs, |(ts, rec)| (*ts, simulated_slowdown(*ts, rec.clone())));
    for (ts, s) in slowdowns {
        if ts == 1 {
            slow_1s = s;
        }
        monotone &= s <= prev + 1e-9;
        prev = s;
        t.row(vec![ts.to_string(), format!("{}%", fnum(s * 100.0, 2))]);
    }
    writeln!(body, "{}", t.render()).unwrap();
    writeln!(
        body,
        "paper: < 10% at 1 s, shrinking with the timeslice — measured {}% at 1 s, \
         monotone decrease: {}",
        fnum(slow_1s * 100.0, 2),
        if monotone { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();
    comparisons.push(Comparison::new(
        "§6.5 / simulated slowdown @1s (paper bound 10%)",
        10.0,
        slow_1s * 100.0,
        "%",
    ));

    writeln!(body).unwrap();
    if std::env::var("ICKPT_BENCH_NATIVE").map(|v| v == "1").unwrap_or(false) {
        writeln!(body, "native: real mprotect/SIGSEGV tracker on this machine").unwrap();
        let mut t =
            TextTable::new("").header(&["timeslice", "baseline", "tracked", "slowdown", "faults"]);
        // The sweep must span many timeslices for re-protection to bite:
        // 2048 pages x 60 passes is tens of milliseconds of wall time.
        for ms in [2u64, 20, 1000] {
            let r = measure(2048, 60, Duration::from_millis(ms));
            t.row(vec![
                format!("{ms} ms"),
                format!("{:?}", r.baseline),
                format!("{:?}", r.tracked),
                format!("{:.2}x", r.slowdown()),
                r.faults.to_string(),
            ]);
        }
        writeln!(body, "{}", t.render()).unwrap();
        writeln!(body, "(native numbers are machine-dependent; the shape — fewer faults and")
            .unwrap();
        writeln!(body, " lower slowdown at longer timeslices — is the reproduced claim)").unwrap();
    } else {
        writeln!(
            body,
            "native: skipped (host wall-clock, not seed-reproducible); \
             set ICKPT_BENCH_NATIVE=1 to run the real mprotect/SIGSEGV tracker"
        )
        .unwrap();
    }
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated experiment and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
